/root/repo/target/debug/deps/hhh_experiments-937795adf431456f.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

/root/repo/target/debug/deps/hhh_experiments-937795adf431456f: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/compare.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/workloads.rs:
