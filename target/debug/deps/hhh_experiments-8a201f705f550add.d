/root/repo/target/debug/deps/hhh_experiments-8a201f705f550add.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_experiments-8a201f705f550add.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/compare.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
