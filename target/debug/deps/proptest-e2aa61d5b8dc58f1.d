/root/repo/target/debug/deps/proptest-e2aa61d5b8dc58f1.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e2aa61d5b8dc58f1.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
