/root/repo/target/debug/deps/hhh_bench-fd379eb4a5576017.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_bench-fd379eb4a5576017.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
