/root/repo/target/debug/deps/hhh_trace-1bb54d2b63e5dce4.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

/root/repo/target/debug/deps/hhh_trace-1bb54d2b63e5dce4: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/model.rs:
crates/trace/src/rng.rs:
crates/trace/src/scenarios.rs:
crates/trace/src/stats.rs:
