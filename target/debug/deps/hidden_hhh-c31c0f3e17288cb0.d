/root/repo/target/debug/deps/hidden_hhh-c31c0f3e17288cb0.d: src/lib.rs

/root/repo/target/debug/deps/libhidden_hhh-c31c0f3e17288cb0.rmeta: src/lib.rs

src/lib.rs:
