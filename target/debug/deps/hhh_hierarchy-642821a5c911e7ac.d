/root/repo/target/debug/deps/hhh_hierarchy-642821a5c911e7ac.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_hierarchy-642821a5c911e7ac.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs Cargo.toml

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/chain.rs:
crates/hierarchy/src/ipv4.rs:
crates/hierarchy/src/ipv6.rs:
crates/hierarchy/src/twodim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
