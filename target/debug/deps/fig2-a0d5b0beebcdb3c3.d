/root/repo/target/debug/deps/fig2-a0d5b0beebcdb3c3.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-a0d5b0beebcdb3c3: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
