/root/repo/target/debug/deps/hhh_pcap-44c07b27474f3f37.d: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

/root/repo/target/debug/deps/hhh_pcap-44c07b27474f3f37: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

crates/pcap/src/lib.rs:
crates/pcap/src/error.rs:
crates/pcap/src/native.rs:
crates/pcap/src/parse.rs:
crates/pcap/src/reader.rs:
crates/pcap/src/writer.rs:
