/root/repo/target/debug/deps/invariants-a0f16c50f7fb152d.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-a0f16c50f7fb152d: tests/invariants.rs

tests/invariants.rs:
