/root/repo/target/debug/deps/hhh_nettypes-09583ba0171d2bd6.d: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

/root/repo/target/debug/deps/libhhh_nettypes-09583ba0171d2bd6.rmeta: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

crates/nettypes/src/lib.rs:
crates/nettypes/src/count.rs:
crates/nettypes/src/packet.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/time.rs:
