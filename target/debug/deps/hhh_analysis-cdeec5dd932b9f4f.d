/root/repo/target/debug/deps/hhh_analysis-cdeec5dd932b9f4f.d: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/debug/deps/libhhh_analysis-cdeec5dd932b9f4f.rlib: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/debug/deps/libhhh_analysis-cdeec5dd932b9f4f.rmeta: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/accuracy.rs:
crates/analysis/src/csv.rs:
crates/analysis/src/ecdf.rs:
crates/analysis/src/hidden.rs:
crates/analysis/src/jaccard.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
