/root/repo/target/debug/deps/hhh_dataplane-70bc0463af615ca8.d: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/debug/deps/hhh_dataplane-70bc0463af615ca8: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/model.rs:
crates/dataplane/src/programs.rs:
crates/dataplane/src/resources.rs:
