/root/repo/target/debug/deps/ablations-ddeba4e4e6f313eb.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-ddeba4e4e6f313eb.rmeta: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
