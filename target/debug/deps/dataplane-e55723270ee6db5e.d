/root/repo/target/debug/deps/dataplane-e55723270ee6db5e.d: crates/bench/benches/dataplane.rs

/root/repo/target/debug/deps/libdataplane-e55723270ee6db5e.rmeta: crates/bench/benches/dataplane.rs

crates/bench/benches/dataplane.rs:
