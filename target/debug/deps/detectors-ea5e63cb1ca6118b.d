/root/repo/target/debug/deps/detectors-ea5e63cb1ca6118b.d: crates/bench/benches/detectors.rs

/root/repo/target/debug/deps/libdetectors-ea5e63cb1ca6118b.rmeta: crates/bench/benches/detectors.rs

crates/bench/benches/detectors.rs:
