/root/repo/target/debug/deps/hhh_nettypes-a7f2b2ac2a4d121f.d: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

/root/repo/target/debug/deps/libhhh_nettypes-a7f2b2ac2a4d121f.rlib: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

/root/repo/target/debug/deps/libhhh_nettypes-a7f2b2ac2a4d121f.rmeta: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

crates/nettypes/src/lib.rs:
crates/nettypes/src/count.rs:
crates/nettypes/src/packet.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/time.rs:
