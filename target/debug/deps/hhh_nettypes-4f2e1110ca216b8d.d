/root/repo/target/debug/deps/hhh_nettypes-4f2e1110ca216b8d.d: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

/root/repo/target/debug/deps/hhh_nettypes-4f2e1110ca216b8d: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

crates/nettypes/src/lib.rs:
crates/nettypes/src/count.rs:
crates/nettypes/src/packet.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/time.rs:
