/root/repo/target/debug/deps/hidden_hhh-993c80448914a38c.d: src/lib.rs

/root/repo/target/debug/deps/libhidden_hhh-993c80448914a38c.rmeta: src/lib.rs

src/lib.rs:
