/root/repo/target/debug/deps/hhh_dataplane-0a3d3e541e86088f.d: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/debug/deps/hhh_dataplane-0a3d3e541e86088f: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/model.rs:
crates/dataplane/src/programs.rs:
crates/dataplane/src/resources.rs:
