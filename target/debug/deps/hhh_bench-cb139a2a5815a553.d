/root/repo/target/debug/deps/hhh_bench-cb139a2a5815a553.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hhh_bench-cb139a2a5815a553: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
