/root/repo/target/debug/deps/sketches-bf2179d361fc79fc.d: crates/bench/benches/sketches.rs

/root/repo/target/debug/deps/libsketches-bf2179d361fc79fc.rmeta: crates/bench/benches/sketches.rs

crates/bench/benches/sketches.rs:
