/root/repo/target/debug/deps/ablations-67abb6c2d6296c48.d: crates/experiments/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-67abb6c2d6296c48.rmeta: crates/experiments/src/bin/ablations.rs Cargo.toml

crates/experiments/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
