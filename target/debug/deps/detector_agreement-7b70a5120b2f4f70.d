/root/repo/target/debug/deps/detector_agreement-7b70a5120b2f4f70.d: tests/detector_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libdetector_agreement-7b70a5120b2f4f70.rmeta: tests/detector_agreement.rs Cargo.toml

tests/detector_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
