/root/repo/target/debug/deps/fig2-631d5e19d283ecf9.d: crates/bench/benches/fig2.rs

/root/repo/target/debug/deps/libfig2-631d5e19d283ecf9.rmeta: crates/bench/benches/fig2.rs

crates/bench/benches/fig2.rs:
