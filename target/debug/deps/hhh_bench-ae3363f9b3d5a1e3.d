/root/repo/target/debug/deps/hhh_bench-ae3363f9b3d5a1e3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhhh_bench-ae3363f9b3d5a1e3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
