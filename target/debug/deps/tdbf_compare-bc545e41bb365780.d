/root/repo/target/debug/deps/tdbf_compare-bc545e41bb365780.d: crates/experiments/src/bin/tdbf_compare.rs

/root/repo/target/debug/deps/tdbf_compare-bc545e41bb365780: crates/experiments/src/bin/tdbf_compare.rs

crates/experiments/src/bin/tdbf_compare.rs:
