/root/repo/target/debug/deps/fig2-09a8b70c1258fed9.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-09a8b70c1258fed9.rmeta: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
