/root/repo/target/debug/deps/windows-26ff15e00a2bc6ff.d: crates/bench/benches/windows.rs Cargo.toml

/root/repo/target/debug/deps/libwindows-26ff15e00a2bc6ff.rmeta: crates/bench/benches/windows.rs Cargo.toml

crates/bench/benches/windows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
