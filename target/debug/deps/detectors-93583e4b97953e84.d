/root/repo/target/debug/deps/detectors-93583e4b97953e84.d: crates/bench/benches/detectors.rs Cargo.toml

/root/repo/target/debug/deps/libdetectors-93583e4b97953e84.rmeta: crates/bench/benches/detectors.rs Cargo.toml

crates/bench/benches/detectors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
