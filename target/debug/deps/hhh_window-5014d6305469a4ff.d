/root/repo/target/debug/deps/hhh_window-5014d6305469a4ff.d: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

/root/repo/target/debug/deps/libhhh_window-5014d6305469a4ff.rlib: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

/root/repo/target/debug/deps/libhhh_window-5014d6305469a4ff.rmeta: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

crates/window/src/lib.rs:
crates/window/src/driver.rs:
crates/window/src/geometry.rs:
crates/window/src/report.rs:
crates/window/src/sharded.rs:
