/root/repo/target/debug/deps/fig3-7b340113e302cc3a.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-7b340113e302cc3a.rmeta: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
