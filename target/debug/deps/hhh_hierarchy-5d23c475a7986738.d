/root/repo/target/debug/deps/hhh_hierarchy-5d23c475a7986738.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

/root/repo/target/debug/deps/hhh_hierarchy-5d23c475a7986738: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/chain.rs:
crates/hierarchy/src/ipv4.rs:
crates/hierarchy/src/ipv6.rs:
crates/hierarchy/src/twodim.rs:
