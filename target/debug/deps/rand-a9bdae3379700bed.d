/root/repo/target/debug/deps/rand-a9bdae3379700bed.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a9bdae3379700bed.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
