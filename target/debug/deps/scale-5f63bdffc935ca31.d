/root/repo/target/debug/deps/scale-5f63bdffc935ca31.d: crates/experiments/src/bin/scale.rs

/root/repo/target/debug/deps/scale-5f63bdffc935ca31: crates/experiments/src/bin/scale.rs

crates/experiments/src/bin/scale.rs:
