/root/repo/target/debug/deps/invariants-b2112c6bf0e5d33e.d: tests/invariants.rs

/root/repo/target/debug/deps/libinvariants-b2112c6bf0e5d33e.rmeta: tests/invariants.rs

tests/invariants.rs:
