/root/repo/target/debug/deps/hhh_dataplane-f3f4af078b94f656.d: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_dataplane-f3f4af078b94f656.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs Cargo.toml

crates/dataplane/src/lib.rs:
crates/dataplane/src/model.rs:
crates/dataplane/src/programs.rs:
crates/dataplane/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
