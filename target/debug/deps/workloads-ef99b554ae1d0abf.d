/root/repo/target/debug/deps/workloads-ef99b554ae1d0abf.d: crates/experiments/src/bin/workloads.rs

/root/repo/target/debug/deps/libworkloads-ef99b554ae1d0abf.rmeta: crates/experiments/src/bin/workloads.rs

crates/experiments/src/bin/workloads.rs:
