/root/repo/target/debug/deps/hhh_core-57ef1b31facdc91f.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs

/root/repo/target/debug/deps/libhhh_core-57ef1b31facdc91f.rmeta: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/exact.rs:
crates/core/src/hashpipe.rs:
crates/core/src/report.rs:
crates/core/src/rhhh.rs:
crates/core/src/ss_hhh.rs:
crates/core/src/tdbf_hhh.rs:
crates/core/src/twodim.rs:
crates/core/src/univmon.rs:
