/root/repo/target/debug/deps/hhh_bench-a88233b7cb1f3043.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_bench-a88233b7cb1f3043.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
