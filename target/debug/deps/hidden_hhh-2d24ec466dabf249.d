/root/repo/target/debug/deps/hidden_hhh-2d24ec466dabf249.d: src/lib.rs

/root/repo/target/debug/deps/hidden_hhh-2d24ec466dabf249: src/lib.rs

src/lib.rs:
