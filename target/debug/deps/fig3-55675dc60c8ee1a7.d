/root/repo/target/debug/deps/fig3-55675dc60c8ee1a7.d: crates/experiments/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-55675dc60c8ee1a7.rmeta: crates/experiments/src/bin/fig3.rs Cargo.toml

crates/experiments/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
