/root/repo/target/debug/deps/hhh_experiments-4a48088e2e41e16e.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

/root/repo/target/debug/deps/libhhh_experiments-4a48088e2e41e16e.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/compare.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/workloads.rs:
