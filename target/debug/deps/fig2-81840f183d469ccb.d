/root/repo/target/debug/deps/fig2-81840f183d469ccb.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-81840f183d469ccb: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
