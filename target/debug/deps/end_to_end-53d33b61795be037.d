/root/repo/target/debug/deps/end_to_end-53d33b61795be037.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-53d33b61795be037: tests/end_to_end.rs

tests/end_to_end.rs:
