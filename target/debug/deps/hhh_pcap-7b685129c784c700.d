/root/repo/target/debug/deps/hhh_pcap-7b685129c784c700.d: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

/root/repo/target/debug/deps/libhhh_pcap-7b685129c784c700.rmeta: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

crates/pcap/src/lib.rs:
crates/pcap/src/error.rs:
crates/pcap/src/native.rs:
crates/pcap/src/parse.rs:
crates/pcap/src/reader.rs:
crates/pcap/src/writer.rs:
