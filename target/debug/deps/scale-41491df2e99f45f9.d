/root/repo/target/debug/deps/scale-41491df2e99f45f9.d: crates/experiments/src/bin/scale.rs

/root/repo/target/debug/deps/scale-41491df2e99f45f9: crates/experiments/src/bin/scale.rs

crates/experiments/src/bin/scale.rs:
