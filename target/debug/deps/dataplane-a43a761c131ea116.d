/root/repo/target/debug/deps/dataplane-a43a761c131ea116.d: crates/bench/benches/dataplane.rs Cargo.toml

/root/repo/target/debug/deps/libdataplane-a43a761c131ea116.rmeta: crates/bench/benches/dataplane.rs Cargo.toml

crates/bench/benches/dataplane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
