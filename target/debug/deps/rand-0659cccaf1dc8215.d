/root/repo/target/debug/deps/rand-0659cccaf1dc8215.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-0659cccaf1dc8215.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
