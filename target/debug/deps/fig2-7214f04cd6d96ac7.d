/root/repo/target/debug/deps/fig2-7214f04cd6d96ac7.d: crates/bench/benches/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-7214f04cd6d96ac7.rmeta: crates/bench/benches/fig2.rs Cargo.toml

crates/bench/benches/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
