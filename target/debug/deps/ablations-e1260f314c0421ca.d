/root/repo/target/debug/deps/ablations-e1260f314c0421ca.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-e1260f314c0421ca: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
