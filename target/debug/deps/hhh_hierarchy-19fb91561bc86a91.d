/root/repo/target/debug/deps/hhh_hierarchy-19fb91561bc86a91.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

/root/repo/target/debug/deps/libhhh_hierarchy-19fb91561bc86a91.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/chain.rs:
crates/hierarchy/src/ipv4.rs:
crates/hierarchy/src/ipv6.rs:
crates/hierarchy/src/twodim.rs:
