/root/repo/target/debug/deps/scale-0e81911e4813f313.d: crates/experiments/src/bin/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-0e81911e4813f313.rmeta: crates/experiments/src/bin/scale.rs Cargo.toml

crates/experiments/src/bin/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
