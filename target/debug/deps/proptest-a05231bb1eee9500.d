/root/repo/target/debug/deps/proptest-a05231bb1eee9500.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a05231bb1eee9500.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
