/root/repo/target/debug/deps/proptest-39c31e03b07e44f9.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-39c31e03b07e44f9.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-39c31e03b07e44f9.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
