/root/repo/target/debug/deps/ablations-aa8f892504c76eec.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-aa8f892504c76eec.rmeta: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
