/root/repo/target/debug/deps/sharded_merge-c1ebfb1e252840e6.d: tests/sharded_merge.rs Cargo.toml

/root/repo/target/debug/deps/libsharded_merge-c1ebfb1e252840e6.rmeta: tests/sharded_merge.rs Cargo.toml

tests/sharded_merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
