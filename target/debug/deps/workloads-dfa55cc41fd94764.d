/root/repo/target/debug/deps/workloads-dfa55cc41fd94764.d: crates/experiments/src/bin/workloads.rs

/root/repo/target/debug/deps/workloads-dfa55cc41fd94764: crates/experiments/src/bin/workloads.rs

crates/experiments/src/bin/workloads.rs:
