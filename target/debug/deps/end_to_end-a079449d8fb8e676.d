/root/repo/target/debug/deps/end_to_end-a079449d8fb8e676.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-a079449d8fb8e676.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
