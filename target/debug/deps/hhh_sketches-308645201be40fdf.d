/root/repo/target/debug/deps/hhh_sketches-308645201be40fdf.d: crates/sketches/src/lib.rs crates/sketches/src/hash.rs crates/sketches/src/bloom.rs crates/sketches/src/count_min.rs crates/sketches/src/count_sketch.rs crates/sketches/src/decay.rs crates/sketches/src/exp_histogram.rs crates/sketches/src/lossy_counting.rs crates/sketches/src/misra_gries.rs crates/sketches/src/space_saving.rs crates/sketches/src/tdbf.rs crates/sketches/src/window_summary.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_sketches-308645201be40fdf.rmeta: crates/sketches/src/lib.rs crates/sketches/src/hash.rs crates/sketches/src/bloom.rs crates/sketches/src/count_min.rs crates/sketches/src/count_sketch.rs crates/sketches/src/decay.rs crates/sketches/src/exp_histogram.rs crates/sketches/src/lossy_counting.rs crates/sketches/src/misra_gries.rs crates/sketches/src/space_saving.rs crates/sketches/src/tdbf.rs crates/sketches/src/window_summary.rs Cargo.toml

crates/sketches/src/lib.rs:
crates/sketches/src/hash.rs:
crates/sketches/src/bloom.rs:
crates/sketches/src/count_min.rs:
crates/sketches/src/count_sketch.rs:
crates/sketches/src/decay.rs:
crates/sketches/src/exp_histogram.rs:
crates/sketches/src/lossy_counting.rs:
crates/sketches/src/misra_gries.rs:
crates/sketches/src/space_saving.rs:
crates/sketches/src/tdbf.rs:
crates/sketches/src/window_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
