/root/repo/target/debug/deps/scale-7f6511e3e12c94ab.d: crates/experiments/src/bin/scale.rs

/root/repo/target/debug/deps/libscale-7f6511e3e12c94ab.rmeta: crates/experiments/src/bin/scale.rs

crates/experiments/src/bin/scale.rs:
