/root/repo/target/debug/deps/fig3-825333f9b63451da.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-825333f9b63451da.rmeta: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
