/root/repo/target/debug/deps/hidden_hhh-c464ba3c3e7b5628.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhidden_hhh-c464ba3c3e7b5628.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
