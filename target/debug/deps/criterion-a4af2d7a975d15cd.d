/root/repo/target/debug/deps/criterion-a4af2d7a975d15cd.d: shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-a4af2d7a975d15cd.rmeta: shims/criterion/src/lib.rs Cargo.toml

shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
