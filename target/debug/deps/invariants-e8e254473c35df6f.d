/root/repo/target/debug/deps/invariants-e8e254473c35df6f.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-e8e254473c35df6f.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
