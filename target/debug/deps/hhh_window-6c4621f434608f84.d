/root/repo/target/debug/deps/hhh_window-6c4621f434608f84.d: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

/root/repo/target/debug/deps/libhhh_window-6c4621f434608f84.rmeta: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

crates/window/src/lib.rs:
crates/window/src/driver.rs:
crates/window/src/geometry.rs:
crates/window/src/report.rs:
crates/window/src/sharded.rs:
