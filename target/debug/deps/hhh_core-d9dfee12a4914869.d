/root/repo/target/debug/deps/hhh_core-d9dfee12a4914869.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs

/root/repo/target/debug/deps/hhh_core-d9dfee12a4914869: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/exact.rs:
crates/core/src/hashpipe.rs:
crates/core/src/report.rs:
crates/core/src/rhhh.rs:
crates/core/src/ss_hhh.rs:
crates/core/src/tdbf_hhh.rs:
crates/core/src/twodim.rs:
crates/core/src/univmon.rs:
