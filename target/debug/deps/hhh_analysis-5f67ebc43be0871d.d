/root/repo/target/debug/deps/hhh_analysis-5f67ebc43be0871d.d: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/debug/deps/libhhh_analysis-5f67ebc43be0871d.rmeta: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/accuracy.rs:
crates/analysis/src/csv.rs:
crates/analysis/src/ecdf.rs:
crates/analysis/src/hidden.rs:
crates/analysis/src/jaccard.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
