/root/repo/target/debug/deps/fig3-58220895b1ce866c.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-58220895b1ce866c: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
