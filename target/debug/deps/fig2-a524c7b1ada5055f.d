/root/repo/target/debug/deps/fig2-a524c7b1ada5055f.d: crates/experiments/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-a524c7b1ada5055f.rmeta: crates/experiments/src/bin/fig2.rs Cargo.toml

crates/experiments/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
