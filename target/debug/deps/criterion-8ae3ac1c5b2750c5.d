/root/repo/target/debug/deps/criterion-8ae3ac1c5b2750c5.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8ae3ac1c5b2750c5.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
