/root/repo/target/debug/deps/sharded_merge-12f5481814526010.d: tests/sharded_merge.rs

/root/repo/target/debug/deps/libsharded_merge-12f5481814526010.rmeta: tests/sharded_merge.rs

tests/sharded_merge.rs:
