/root/repo/target/debug/deps/ablations-0b457e57dd21a695.d: crates/experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-0b457e57dd21a695: crates/experiments/src/bin/ablations.rs

crates/experiments/src/bin/ablations.rs:
