/root/repo/target/debug/deps/hhh_experiments-03ee9db511dcaaaa.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

/root/repo/target/debug/deps/libhhh_experiments-03ee9db511dcaaaa.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

/root/repo/target/debug/deps/libhhh_experiments-03ee9db511dcaaaa.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/compare.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/workloads.rs:
