/root/repo/target/debug/deps/hhh_dataplane-e42ecdb1acc81361.d: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/debug/deps/libhhh_dataplane-e42ecdb1acc81361.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/model.rs:
crates/dataplane/src/programs.rs:
crates/dataplane/src/resources.rs:
