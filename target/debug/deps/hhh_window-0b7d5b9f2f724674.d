/root/repo/target/debug/deps/hhh_window-0b7d5b9f2f724674.d: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

/root/repo/target/debug/deps/hhh_window-0b7d5b9f2f724674: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

crates/window/src/lib.rs:
crates/window/src/driver.rs:
crates/window/src/geometry.rs:
crates/window/src/report.rs:
crates/window/src/sharded.rs:
