/root/repo/target/debug/deps/scale-e5e782a2c0b9a044.d: crates/experiments/src/bin/scale.rs

/root/repo/target/debug/deps/libscale-e5e782a2c0b9a044.rmeta: crates/experiments/src/bin/scale.rs

crates/experiments/src/bin/scale.rs:
