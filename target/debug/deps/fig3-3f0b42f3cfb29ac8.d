/root/repo/target/debug/deps/fig3-3f0b42f3cfb29ac8.d: crates/bench/benches/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-3f0b42f3cfb29ac8.rmeta: crates/bench/benches/fig3.rs Cargo.toml

crates/bench/benches/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
