/root/repo/target/debug/deps/tdbf_compare-b3aa95b8ef854c4f.d: crates/experiments/src/bin/tdbf_compare.rs

/root/repo/target/debug/deps/libtdbf_compare-b3aa95b8ef854c4f.rmeta: crates/experiments/src/bin/tdbf_compare.rs

crates/experiments/src/bin/tdbf_compare.rs:
