/root/repo/target/debug/deps/rand-d9920ffb2a113def.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d9920ffb2a113def.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d9920ffb2a113def.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
