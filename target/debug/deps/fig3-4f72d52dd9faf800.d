/root/repo/target/debug/deps/fig3-4f72d52dd9faf800.d: crates/bench/benches/fig3.rs

/root/repo/target/debug/deps/libfig3-4f72d52dd9faf800.rmeta: crates/bench/benches/fig3.rs

crates/bench/benches/fig3.rs:
