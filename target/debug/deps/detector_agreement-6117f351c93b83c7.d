/root/repo/target/debug/deps/detector_agreement-6117f351c93b83c7.d: tests/detector_agreement.rs

/root/repo/target/debug/deps/detector_agreement-6117f351c93b83c7: tests/detector_agreement.rs

tests/detector_agreement.rs:
