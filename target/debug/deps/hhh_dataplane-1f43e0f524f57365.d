/root/repo/target/debug/deps/hhh_dataplane-1f43e0f524f57365.d: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/debug/deps/libhhh_dataplane-1f43e0f524f57365.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/debug/deps/libhhh_dataplane-1f43e0f524f57365.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/model.rs:
crates/dataplane/src/programs.rs:
crates/dataplane/src/resources.rs:
