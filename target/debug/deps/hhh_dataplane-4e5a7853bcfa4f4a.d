/root/repo/target/debug/deps/hhh_dataplane-4e5a7853bcfa4f4a.d: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/debug/deps/libhhh_dataplane-4e5a7853bcfa4f4a.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/model.rs:
crates/dataplane/src/programs.rs:
crates/dataplane/src/resources.rs:
