/root/repo/target/debug/deps/ablations-9546e8ac97400d61.d: crates/experiments/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-9546e8ac97400d61.rmeta: crates/experiments/src/bin/ablations.rs Cargo.toml

crates/experiments/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
