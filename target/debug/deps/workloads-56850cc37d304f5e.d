/root/repo/target/debug/deps/workloads-56850cc37d304f5e.d: crates/experiments/src/bin/workloads.rs

/root/repo/target/debug/deps/libworkloads-56850cc37d304f5e.rmeta: crates/experiments/src/bin/workloads.rs

crates/experiments/src/bin/workloads.rs:
