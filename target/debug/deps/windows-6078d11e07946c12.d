/root/repo/target/debug/deps/windows-6078d11e07946c12.d: crates/bench/benches/windows.rs

/root/repo/target/debug/deps/libwindows-6078d11e07946c12.rmeta: crates/bench/benches/windows.rs

crates/bench/benches/windows.rs:
