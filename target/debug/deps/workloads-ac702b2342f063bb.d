/root/repo/target/debug/deps/workloads-ac702b2342f063bb.d: crates/experiments/src/bin/workloads.rs

/root/repo/target/debug/deps/workloads-ac702b2342f063bb: crates/experiments/src/bin/workloads.rs

crates/experiments/src/bin/workloads.rs:
