/root/repo/target/debug/deps/dataplane_equivalence-a33e2824c0802037.d: tests/dataplane_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libdataplane_equivalence-a33e2824c0802037.rmeta: tests/dataplane_equivalence.rs Cargo.toml

tests/dataplane_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
