/root/repo/target/debug/deps/workloads-351781c6fc83c927.d: crates/experiments/src/bin/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-351781c6fc83c927.rmeta: crates/experiments/src/bin/workloads.rs Cargo.toml

crates/experiments/src/bin/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
