/root/repo/target/debug/deps/hhh_pcap-2c4a3f58d28dc670.d: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_pcap-2c4a3f58d28dc670.rmeta: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs Cargo.toml

crates/pcap/src/lib.rs:
crates/pcap/src/error.rs:
crates/pcap/src/native.rs:
crates/pcap/src/parse.rs:
crates/pcap/src/reader.rs:
crates/pcap/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
