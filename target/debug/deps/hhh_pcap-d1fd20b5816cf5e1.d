/root/repo/target/debug/deps/hhh_pcap-d1fd20b5816cf5e1.d: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

/root/repo/target/debug/deps/libhhh_pcap-d1fd20b5816cf5e1.rlib: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

/root/repo/target/debug/deps/libhhh_pcap-d1fd20b5816cf5e1.rmeta: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

crates/pcap/src/lib.rs:
crates/pcap/src/error.rs:
crates/pcap/src/native.rs:
crates/pcap/src/parse.rs:
crates/pcap/src/reader.rs:
crates/pcap/src/writer.rs:
