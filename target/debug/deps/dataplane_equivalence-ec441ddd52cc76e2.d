/root/repo/target/debug/deps/dataplane_equivalence-ec441ddd52cc76e2.d: tests/dataplane_equivalence.rs

/root/repo/target/debug/deps/libdataplane_equivalence-ec441ddd52cc76e2.rmeta: tests/dataplane_equivalence.rs

tests/dataplane_equivalence.rs:
