/root/repo/target/debug/deps/hhh_trace-510f0d52c4f807e8.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_trace-510f0d52c4f807e8.rmeta: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/model.rs:
crates/trace/src/rng.rs:
crates/trace/src/scenarios.rs:
crates/trace/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
