/root/repo/target/debug/deps/hhh_core-0046b207bd56b863.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_core-0046b207bd56b863.rmeta: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/exact.rs:
crates/core/src/hashpipe.rs:
crates/core/src/report.rs:
crates/core/src/rhhh.rs:
crates/core/src/ss_hhh.rs:
crates/core/src/tdbf_hhh.rs:
crates/core/src/twodim.rs:
crates/core/src/univmon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
