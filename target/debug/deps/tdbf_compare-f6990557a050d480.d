/root/repo/target/debug/deps/tdbf_compare-f6990557a050d480.d: crates/experiments/src/bin/tdbf_compare.rs Cargo.toml

/root/repo/target/debug/deps/libtdbf_compare-f6990557a050d480.rmeta: crates/experiments/src/bin/tdbf_compare.rs Cargo.toml

crates/experiments/src/bin/tdbf_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
