/root/repo/target/debug/deps/proptest-c2013d0afc6ecdb3.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-c2013d0afc6ecdb3: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
