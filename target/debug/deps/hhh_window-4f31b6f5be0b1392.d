/root/repo/target/debug/deps/hhh_window-4f31b6f5be0b1392.d: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_window-4f31b6f5be0b1392.rmeta: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs Cargo.toml

crates/window/src/lib.rs:
crates/window/src/driver.rs:
crates/window/src/geometry.rs:
crates/window/src/report.rs:
crates/window/src/sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
