/root/repo/target/debug/deps/hidden_hhh-c11f93b8ad7d72ea.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhidden_hhh-c11f93b8ad7d72ea.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
