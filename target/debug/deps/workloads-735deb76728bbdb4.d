/root/repo/target/debug/deps/workloads-735deb76728bbdb4.d: crates/experiments/src/bin/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-735deb76728bbdb4.rmeta: crates/experiments/src/bin/workloads.rs Cargo.toml

crates/experiments/src/bin/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
