/root/repo/target/debug/deps/tdbf_compare-af5e329c28a59a04.d: crates/experiments/src/bin/tdbf_compare.rs

/root/repo/target/debug/deps/tdbf_compare-af5e329c28a59a04: crates/experiments/src/bin/tdbf_compare.rs

crates/experiments/src/bin/tdbf_compare.rs:
