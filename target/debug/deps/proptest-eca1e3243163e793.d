/root/repo/target/debug/deps/proptest-eca1e3243163e793.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eca1e3243163e793.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
