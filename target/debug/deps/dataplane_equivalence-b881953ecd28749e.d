/root/repo/target/debug/deps/dataplane_equivalence-b881953ecd28749e.d: tests/dataplane_equivalence.rs

/root/repo/target/debug/deps/dataplane_equivalence-b881953ecd28749e: tests/dataplane_equivalence.rs

tests/dataplane_equivalence.rs:
