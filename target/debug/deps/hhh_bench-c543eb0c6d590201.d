/root/repo/target/debug/deps/hhh_bench-c543eb0c6d590201.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhhh_bench-c543eb0c6d590201.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhhh_bench-c543eb0c6d590201.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
