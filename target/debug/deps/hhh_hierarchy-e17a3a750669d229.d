/root/repo/target/debug/deps/hhh_hierarchy-e17a3a750669d229.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

/root/repo/target/debug/deps/libhhh_hierarchy-e17a3a750669d229.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/chain.rs:
crates/hierarchy/src/ipv4.rs:
crates/hierarchy/src/ipv6.rs:
crates/hierarchy/src/twodim.rs:
