/root/repo/target/debug/deps/fig2-4758d0941bb4d980.d: crates/experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-4758d0941bb4d980.rmeta: crates/experiments/src/bin/fig2.rs

crates/experiments/src/bin/fig2.rs:
