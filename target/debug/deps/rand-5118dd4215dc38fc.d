/root/repo/target/debug/deps/rand-5118dd4215dc38fc.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5118dd4215dc38fc.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
