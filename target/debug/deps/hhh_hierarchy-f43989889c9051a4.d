/root/repo/target/debug/deps/hhh_hierarchy-f43989889c9051a4.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

/root/repo/target/debug/deps/libhhh_hierarchy-f43989889c9051a4.rlib: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

/root/repo/target/debug/deps/libhhh_hierarchy-f43989889c9051a4.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/chain.rs:
crates/hierarchy/src/ipv4.rs:
crates/hierarchy/src/ipv6.rs:
crates/hierarchy/src/twodim.rs:
