/root/repo/target/debug/deps/hhh_analysis-da5cf2a6187aa54b.d: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_analysis-da5cf2a6187aa54b.rmeta: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/accuracy.rs:
crates/analysis/src/csv.rs:
crates/analysis/src/ecdf.rs:
crates/analysis/src/hidden.rs:
crates/analysis/src/jaccard.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
