/root/repo/target/debug/deps/proptest-5c74fc080c3959cd.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-5c74fc080c3959cd.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
