/root/repo/target/debug/deps/hhh_trace-b10446e68c37afc1.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

/root/repo/target/debug/deps/libhhh_trace-b10446e68c37afc1.rlib: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

/root/repo/target/debug/deps/libhhh_trace-b10446e68c37afc1.rmeta: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/model.rs:
crates/trace/src/rng.rs:
crates/trace/src/scenarios.rs:
crates/trace/src/stats.rs:
