/root/repo/target/debug/deps/hhh_sketches-d4e2190949f15ada.d: crates/sketches/src/lib.rs crates/sketches/src/hash.rs crates/sketches/src/bloom.rs crates/sketches/src/count_min.rs crates/sketches/src/count_sketch.rs crates/sketches/src/decay.rs crates/sketches/src/exp_histogram.rs crates/sketches/src/lossy_counting.rs crates/sketches/src/misra_gries.rs crates/sketches/src/space_saving.rs crates/sketches/src/tdbf.rs crates/sketches/src/window_summary.rs

/root/repo/target/debug/deps/hhh_sketches-d4e2190949f15ada: crates/sketches/src/lib.rs crates/sketches/src/hash.rs crates/sketches/src/bloom.rs crates/sketches/src/count_min.rs crates/sketches/src/count_sketch.rs crates/sketches/src/decay.rs crates/sketches/src/exp_histogram.rs crates/sketches/src/lossy_counting.rs crates/sketches/src/misra_gries.rs crates/sketches/src/space_saving.rs crates/sketches/src/tdbf.rs crates/sketches/src/window_summary.rs

crates/sketches/src/lib.rs:
crates/sketches/src/hash.rs:
crates/sketches/src/bloom.rs:
crates/sketches/src/count_min.rs:
crates/sketches/src/count_sketch.rs:
crates/sketches/src/decay.rs:
crates/sketches/src/exp_histogram.rs:
crates/sketches/src/lossy_counting.rs:
crates/sketches/src/misra_gries.rs:
crates/sketches/src/space_saving.rs:
crates/sketches/src/tdbf.rs:
crates/sketches/src/window_summary.rs:
