/root/repo/target/debug/deps/scale-7780525ef42d3c4c.d: crates/experiments/src/bin/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-7780525ef42d3c4c.rmeta: crates/experiments/src/bin/scale.rs Cargo.toml

crates/experiments/src/bin/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
