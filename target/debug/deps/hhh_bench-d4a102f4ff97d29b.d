/root/repo/target/debug/deps/hhh_bench-d4a102f4ff97d29b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhhh_bench-d4a102f4ff97d29b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
