/root/repo/target/debug/deps/hidden_hhh-d2d49ef5957359b7.d: src/lib.rs

/root/repo/target/debug/deps/libhidden_hhh-d2d49ef5957359b7.rlib: src/lib.rs

/root/repo/target/debug/deps/libhidden_hhh-d2d49ef5957359b7.rmeta: src/lib.rs

src/lib.rs:
