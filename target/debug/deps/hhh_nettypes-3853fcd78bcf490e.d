/root/repo/target/debug/deps/hhh_nettypes-3853fcd78bcf490e.d: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libhhh_nettypes-3853fcd78bcf490e.rmeta: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs Cargo.toml

crates/nettypes/src/lib.rs:
crates/nettypes/src/count.rs:
crates/nettypes/src/packet.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
