/root/repo/target/debug/deps/tdbf_compare-c10e75733a70c0e6.d: crates/experiments/src/bin/tdbf_compare.rs

/root/repo/target/debug/deps/libtdbf_compare-c10e75733a70c0e6.rmeta: crates/experiments/src/bin/tdbf_compare.rs

crates/experiments/src/bin/tdbf_compare.rs:
