/root/repo/target/debug/deps/sketches-780e2f901e2cdad3.d: crates/bench/benches/sketches.rs Cargo.toml

/root/repo/target/debug/deps/libsketches-780e2f901e2cdad3.rmeta: crates/bench/benches/sketches.rs Cargo.toml

crates/bench/benches/sketches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
