/root/repo/target/debug/deps/detector_agreement-fc074a160ea88d9a.d: tests/detector_agreement.rs

/root/repo/target/debug/deps/libdetector_agreement-fc074a160ea88d9a.rmeta: tests/detector_agreement.rs

tests/detector_agreement.rs:
