/root/repo/target/debug/deps/fig3-3b15bf782877db84.d: crates/experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-3b15bf782877db84: crates/experiments/src/bin/fig3.rs

crates/experiments/src/bin/fig3.rs:
