/root/repo/target/debug/deps/criterion-913eee281609841b.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-913eee281609841b.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
