/root/repo/target/debug/deps/criterion-f1c73b77ddb61bf1.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f1c73b77ddb61bf1.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f1c73b77ddb61bf1.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
