/root/repo/target/debug/deps/sharded_merge-7965afc35b39a996.d: tests/sharded_merge.rs

/root/repo/target/debug/deps/sharded_merge-7965afc35b39a996: tests/sharded_merge.rs

tests/sharded_merge.rs:
