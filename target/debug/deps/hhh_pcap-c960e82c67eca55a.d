/root/repo/target/debug/deps/hhh_pcap-c960e82c67eca55a.d: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

/root/repo/target/debug/deps/libhhh_pcap-c960e82c67eca55a.rmeta: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

crates/pcap/src/lib.rs:
crates/pcap/src/error.rs:
crates/pcap/src/native.rs:
crates/pcap/src/parse.rs:
crates/pcap/src/reader.rs:
crates/pcap/src/writer.rs:
