/root/repo/target/debug/examples/hidden_hhh-06190391652b63a3.d: examples/hidden_hhh.rs Cargo.toml

/root/repo/target/debug/examples/libhidden_hhh-06190391652b63a3.rmeta: examples/hidden_hhh.rs Cargo.toml

examples/hidden_hhh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
