/root/repo/target/debug/examples/hidden_hhh-f4f7fa21dfeab1a8.d: examples/hidden_hhh.rs

/root/repo/target/debug/examples/hidden_hhh-f4f7fa21dfeab1a8: examples/hidden_hhh.rs

examples/hidden_hhh.rs:
