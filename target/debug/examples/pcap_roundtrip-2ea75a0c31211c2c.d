/root/repo/target/debug/examples/pcap_roundtrip-2ea75a0c31211c2c.d: examples/pcap_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libpcap_roundtrip-2ea75a0c31211c2c.rmeta: examples/pcap_roundtrip.rs Cargo.toml

examples/pcap_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
