/root/repo/target/debug/examples/quickstart-2800d25f31fa3e97.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2800d25f31fa3e97: examples/quickstart.rs

examples/quickstart.rs:
