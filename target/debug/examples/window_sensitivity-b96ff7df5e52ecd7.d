/root/repo/target/debug/examples/window_sensitivity-b96ff7df5e52ecd7.d: examples/window_sensitivity.rs

/root/repo/target/debug/examples/window_sensitivity-b96ff7df5e52ecd7: examples/window_sensitivity.rs

examples/window_sensitivity.rs:
