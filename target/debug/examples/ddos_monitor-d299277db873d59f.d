/root/repo/target/debug/examples/ddos_monitor-d299277db873d59f.d: examples/ddos_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libddos_monitor-d299277db873d59f.rmeta: examples/ddos_monitor.rs Cargo.toml

examples/ddos_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
