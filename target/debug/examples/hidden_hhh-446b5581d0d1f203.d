/root/repo/target/debug/examples/hidden_hhh-446b5581d0d1f203.d: examples/hidden_hhh.rs

/root/repo/target/debug/examples/libhidden_hhh-446b5581d0d1f203.rmeta: examples/hidden_hhh.rs

examples/hidden_hhh.rs:
