/root/repo/target/debug/examples/window_sensitivity-3c8badbdbf1551f0.d: examples/window_sensitivity.rs Cargo.toml

/root/repo/target/debug/examples/libwindow_sensitivity-3c8badbdbf1551f0.rmeta: examples/window_sensitivity.rs Cargo.toml

examples/window_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
