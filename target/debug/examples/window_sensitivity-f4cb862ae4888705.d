/root/repo/target/debug/examples/window_sensitivity-f4cb862ae4888705.d: examples/window_sensitivity.rs

/root/repo/target/debug/examples/libwindow_sensitivity-f4cb862ae4888705.rmeta: examples/window_sensitivity.rs

examples/window_sensitivity.rs:
