/root/repo/target/debug/examples/ddos_monitor-357a37b3c44f4aac.d: examples/ddos_monitor.rs

/root/repo/target/debug/examples/libddos_monitor-357a37b3c44f4aac.rmeta: examples/ddos_monitor.rs

examples/ddos_monitor.rs:
