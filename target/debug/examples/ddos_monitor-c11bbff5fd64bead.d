/root/repo/target/debug/examples/ddos_monitor-c11bbff5fd64bead.d: examples/ddos_monitor.rs

/root/repo/target/debug/examples/ddos_monitor-c11bbff5fd64bead: examples/ddos_monitor.rs

examples/ddos_monitor.rs:
