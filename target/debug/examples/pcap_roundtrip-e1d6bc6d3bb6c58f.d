/root/repo/target/debug/examples/pcap_roundtrip-e1d6bc6d3bb6c58f.d: examples/pcap_roundtrip.rs

/root/repo/target/debug/examples/libpcap_roundtrip-e1d6bc6d3bb6c58f.rmeta: examples/pcap_roundtrip.rs

examples/pcap_roundtrip.rs:
