/root/repo/target/debug/examples/quickstart-0fa88cddfcdcce5d.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-0fa88cddfcdcce5d.rmeta: examples/quickstart.rs

examples/quickstart.rs:
