/root/repo/target/debug/examples/pcap_roundtrip-1159d087cb909899.d: examples/pcap_roundtrip.rs

/root/repo/target/debug/examples/pcap_roundtrip-1159d087cb909899: examples/pcap_roundtrip.rs

examples/pcap_roundtrip.rs:
