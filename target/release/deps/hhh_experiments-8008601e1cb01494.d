/root/repo/target/release/deps/hhh_experiments-8008601e1cb01494.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

/root/repo/target/release/deps/libhhh_experiments-8008601e1cb01494.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

/root/repo/target/release/deps/libhhh_experiments-8008601e1cb01494.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/compare.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/scale.rs crates/experiments/src/workloads.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/compare.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/workloads.rs:
