/root/repo/target/release/deps/proptest-befcfe520f86d3a5.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-befcfe520f86d3a5.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-befcfe520f86d3a5.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
