/root/repo/target/release/deps/hhh_pcap-660884cd41a8df37.d: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

/root/repo/target/release/deps/libhhh_pcap-660884cd41a8df37.rlib: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

/root/repo/target/release/deps/libhhh_pcap-660884cd41a8df37.rmeta: crates/pcap/src/lib.rs crates/pcap/src/error.rs crates/pcap/src/native.rs crates/pcap/src/parse.rs crates/pcap/src/reader.rs crates/pcap/src/writer.rs

crates/pcap/src/lib.rs:
crates/pcap/src/error.rs:
crates/pcap/src/native.rs:
crates/pcap/src/parse.rs:
crates/pcap/src/reader.rs:
crates/pcap/src/writer.rs:
