/root/repo/target/release/deps/hhh_dataplane-10ad35fb9f85aea5.d: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/release/deps/libhhh_dataplane-10ad35fb9f85aea5.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

/root/repo/target/release/deps/libhhh_dataplane-10ad35fb9f85aea5.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/model.rs crates/dataplane/src/programs.rs crates/dataplane/src/resources.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/model.rs:
crates/dataplane/src/programs.rs:
crates/dataplane/src/resources.rs:
