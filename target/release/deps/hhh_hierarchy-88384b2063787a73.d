/root/repo/target/release/deps/hhh_hierarchy-88384b2063787a73.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

/root/repo/target/release/deps/libhhh_hierarchy-88384b2063787a73.rlib: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

/root/repo/target/release/deps/libhhh_hierarchy-88384b2063787a73.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/chain.rs crates/hierarchy/src/ipv4.rs crates/hierarchy/src/ipv6.rs crates/hierarchy/src/twodim.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/chain.rs:
crates/hierarchy/src/ipv4.rs:
crates/hierarchy/src/ipv6.rs:
crates/hierarchy/src/twodim.rs:
