/root/repo/target/release/deps/hhh_window-4302e18ed0a0481d.d: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

/root/repo/target/release/deps/libhhh_window-4302e18ed0a0481d.rlib: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

/root/repo/target/release/deps/libhhh_window-4302e18ed0a0481d.rmeta: crates/window/src/lib.rs crates/window/src/driver.rs crates/window/src/geometry.rs crates/window/src/report.rs crates/window/src/sharded.rs

crates/window/src/lib.rs:
crates/window/src/driver.rs:
crates/window/src/geometry.rs:
crates/window/src/report.rs:
crates/window/src/sharded.rs:
