/root/repo/target/release/deps/rand-3883ebc76db88344.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3883ebc76db88344.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-3883ebc76db88344.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
