/root/repo/target/release/deps/hhh_bench-3eb0870fc96cee00.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhhh_bench-3eb0870fc96cee00.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhhh_bench-3eb0870fc96cee00.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
