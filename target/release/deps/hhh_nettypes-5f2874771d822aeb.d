/root/repo/target/release/deps/hhh_nettypes-5f2874771d822aeb.d: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

/root/repo/target/release/deps/libhhh_nettypes-5f2874771d822aeb.rlib: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

/root/repo/target/release/deps/libhhh_nettypes-5f2874771d822aeb.rmeta: crates/nettypes/src/lib.rs crates/nettypes/src/count.rs crates/nettypes/src/packet.rs crates/nettypes/src/prefix.rs crates/nettypes/src/time.rs

crates/nettypes/src/lib.rs:
crates/nettypes/src/count.rs:
crates/nettypes/src/packet.rs:
crates/nettypes/src/prefix.rs:
crates/nettypes/src/time.rs:
