/root/repo/target/release/deps/hidden_hhh-fc453ea1f9e57340.d: src/lib.rs

/root/repo/target/release/deps/libhidden_hhh-fc453ea1f9e57340.rlib: src/lib.rs

/root/repo/target/release/deps/libhidden_hhh-fc453ea1f9e57340.rmeta: src/lib.rs

src/lib.rs:
