/root/repo/target/release/deps/hhh_analysis-6d11f5c9918d14a2.d: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/release/deps/libhhh_analysis-6d11f5c9918d14a2.rlib: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/release/deps/libhhh_analysis-6d11f5c9918d14a2.rmeta: crates/analysis/src/lib.rs crates/analysis/src/accuracy.rs crates/analysis/src/csv.rs crates/analysis/src/ecdf.rs crates/analysis/src/hidden.rs crates/analysis/src/jaccard.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/accuracy.rs:
crates/analysis/src/csv.rs:
crates/analysis/src/ecdf.rs:
crates/analysis/src/hidden.rs:
crates/analysis/src/jaccard.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
