/root/repo/target/release/deps/hhh_trace-e798f22690aab50b.d: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

/root/repo/target/release/deps/libhhh_trace-e798f22690aab50b.rlib: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

/root/repo/target/release/deps/libhhh_trace-e798f22690aab50b.rmeta: crates/trace/src/lib.rs crates/trace/src/gen.rs crates/trace/src/io.rs crates/trace/src/model.rs crates/trace/src/rng.rs crates/trace/src/scenarios.rs crates/trace/src/stats.rs

crates/trace/src/lib.rs:
crates/trace/src/gen.rs:
crates/trace/src/io.rs:
crates/trace/src/model.rs:
crates/trace/src/rng.rs:
crates/trace/src/scenarios.rs:
crates/trace/src/stats.rs:
