/root/repo/target/release/deps/detectors-593ca4988de2b15f.d: crates/bench/benches/detectors.rs

/root/repo/target/release/deps/detectors-593ca4988de2b15f: crates/bench/benches/detectors.rs

crates/bench/benches/detectors.rs:
