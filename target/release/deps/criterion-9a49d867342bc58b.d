/root/repo/target/release/deps/criterion-9a49d867342bc58b.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9a49d867342bc58b.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9a49d867342bc58b.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
