/root/repo/target/release/deps/hhh_core-8ee65e649f0564b2.d: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs

/root/repo/target/release/deps/libhhh_core-8ee65e649f0564b2.rlib: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs

/root/repo/target/release/deps/libhhh_core-8ee65e649f0564b2.rmeta: crates/core/src/lib.rs crates/core/src/detector.rs crates/core/src/exact.rs crates/core/src/hashpipe.rs crates/core/src/report.rs crates/core/src/rhhh.rs crates/core/src/ss_hhh.rs crates/core/src/tdbf_hhh.rs crates/core/src/twodim.rs crates/core/src/univmon.rs

crates/core/src/lib.rs:
crates/core/src/detector.rs:
crates/core/src/exact.rs:
crates/core/src/hashpipe.rs:
crates/core/src/report.rs:
crates/core/src/rhhh.rs:
crates/core/src/ss_hhh.rs:
crates/core/src/tdbf_hhh.rs:
crates/core/src/twodim.rs:
crates/core/src/univmon.rs:
