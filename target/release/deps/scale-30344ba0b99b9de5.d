/root/repo/target/release/deps/scale-30344ba0b99b9de5.d: crates/experiments/src/bin/scale.rs

/root/repo/target/release/deps/scale-30344ba0b99b9de5: crates/experiments/src/bin/scale.rs

crates/experiments/src/bin/scale.rs:
