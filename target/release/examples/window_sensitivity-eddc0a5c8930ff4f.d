/root/repo/target/release/examples/window_sensitivity-eddc0a5c8930ff4f.d: examples/window_sensitivity.rs

/root/repo/target/release/examples/window_sensitivity-eddc0a5c8930ff4f: examples/window_sensitivity.rs

examples/window_sensitivity.rs:
