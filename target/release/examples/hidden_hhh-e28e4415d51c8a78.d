/root/repo/target/release/examples/hidden_hhh-e28e4415d51c8a78.d: examples/hidden_hhh.rs

/root/repo/target/release/examples/hidden_hhh-e28e4415d51c8a78: examples/hidden_hhh.rs

examples/hidden_hhh.rs:
