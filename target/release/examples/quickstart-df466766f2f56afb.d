/root/repo/target/release/examples/quickstart-df466766f2f56afb.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-df466766f2f56afb: examples/quickstart.rs

examples/quickstart.rs:
