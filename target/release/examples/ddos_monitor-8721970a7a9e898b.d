/root/repo/target/release/examples/ddos_monitor-8721970a7a9e898b.d: examples/ddos_monitor.rs

/root/repo/target/release/examples/ddos_monitor-8721970a7a9e898b: examples/ddos_monitor.rs

examples/ddos_monitor.rs:
