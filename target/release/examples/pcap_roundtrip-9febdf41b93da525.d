/root/repo/target/release/examples/pcap_roundtrip-9febdf41b93da525.d: examples/pcap_roundtrip.rs

/root/repo/target/release/examples/pcap_roundtrip-9febdf41b93da525: examples/pcap_roundtrip.rs

examples/pcap_roundtrip.rs:
