//! Property-based cross-crate invariants: the algebra that must hold
//! for *any* traffic, checked on randomized streams.

use hidden_hhh::analysis::hidden::hidden_hhh;
use hidden_hhh::prelude::*;
use proptest::prelude::*;

/// Random packet streams: up to `n` packets over `secs` seconds drawn
/// from a small address pool (so aggregates actually form).
fn packets_strategy(n: usize, secs: u64) -> impl Strategy<Value = Vec<PacketRecord>> {
    prop::collection::vec(
        (
            0u64..secs * 1_000,
            prop::sample::select(vec![
                0x0A010101u32,
                0x0A010102,
                0x0A010203,
                0x0A020101,
                0x14000001,
                0x14000002,
                0x1E010101,
                0x28FF0001,
            ]),
            64u32..1500,
        ),
        1..n,
    )
    .prop_map(|mut v| {
        v.sort_by_key(|e| e.0);
        v.into_iter()
            .map(|(ms, src, len)| PacketRecord::new(Nanos::from_millis(ms), src, 1, len))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The number of HHHs is bounded by levels/θ, and the discounted
    /// mass attributed at each level never exceeds the total.
    #[test]
    fn hhh_count_and_mass_bounds(pkts in packets_strategy(400, 10), pct in 1.0f64..50.0) {
        let h = Ipv4Hierarchy::bytes();
        let mut d = ExactHhh::new(h);
        for p in &pkts {
            HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, p.wire_len as u64);
        }
        let t = Threshold::percent(pct);
        let total = HhhDetector::<Ipv4Hierarchy>::total(&d);
        let report = d.report(t);
        let bound = (h.levels() as f64 / (pct / 100.0)).floor() as usize + h.levels();
        prop_assert!(report.len() <= bound, "{} HHHs > bound {}", report.len(), bound);
        for level in 0..h.levels() {
            let mass: u64 = report.iter().filter(|r| r.level == level).map(|r| r.discounted).sum();
            prop_assert!(mass <= total, "level {level} discounted mass {mass} > total {total}");
        }
        // Every reported discounted count meets the threshold.
        let t_abs = t.absolute(total);
        for r in &report {
            prop_assert!(r.discounted >= t_abs);
            prop_assert!(r.estimate >= r.discounted);
        }
    }

    /// Disjoint windows are a subset of sliding positions, so hidden
    /// fractions are always within [0, 1] and disjoint ⊆ sliding.
    #[test]
    fn hidden_hhh_is_well_formed(pkts in packets_strategy(600, 12), pct in 2.0f64..30.0) {
        let horizon = TimeSpan::from_secs(12);
        let window = TimeSpan::from_secs(3);
        let step = TimeSpan::from_secs(1);
        let h = Ipv4Hierarchy::bytes();
        let t = Threshold::percent(pct);
        let sliding = Pipeline::new(pkts.iter().copied())
            .engine(SlidingExact::new(&h, horizon, window, step, &[t], |p| p.src))
            .collect().run().remove(0);
        let epw = window / step;
        let disjoint: Vec<_> = sliding.iter().filter(|r| r.index % epw == 0).cloned().collect();
        let res = hidden_hhh(&sliding, &disjoint);
        prop_assert!(res.disjoint_distinct <= res.sliding_distinct);
        prop_assert!(res.hidden_fraction >= 0.0 && res.hidden_fraction <= 1.0);
        prop_assert_eq!(res.hidden_prefixes.len(), res.sliding_distinct - res.disjoint_distinct);
    }

    /// The sliding driver at step == window equals the disjoint driver
    /// with an exact detector: two very different code paths, same
    /// answer.
    #[test]
    fn sliding_equals_disjoint_when_step_is_window(pkts in packets_strategy(500, 9)) {
        let horizon = TimeSpan::from_secs(9);
        let window = TimeSpan::from_secs(3);
        let h = Ipv4Hierarchy::bytes();
        let t = Threshold::percent(10.0);
        let slid = Pipeline::new(pkts.iter().copied())
            .engine(SlidingExact::new(&h, horizon, window, window, &[t], |p| p.src))
            .collect().run().remove(0);
        let mut det = ExactHhh::new(h);
        let disj = Pipeline::new(pkts.iter().copied())
            .engine(Disjoint::new(&mut det, horizon, window, &[t], |p| p.src))
            .collect().run().remove(0);
        prop_assert_eq!(slid.len(), disj.len());
        for (s, d) in slid.iter().zip(&disj) {
            prop_assert_eq!(s.total, d.total);
            prop_assert_eq!(s.prefix_set(), d.prefix_set());
        }
    }

    /// Micro-varied windows with delta equal to zero-tail regions
    /// change nothing: if no packet lands in the removed slice, the
    /// variant report equals the baseline.
    #[test]
    fn microvaried_consistency(pkts in packets_strategy(400, 8)) {
        let horizon = TimeSpan::from_secs(8);
        let base = TimeSpan::from_secs(2);
        let deltas = [TimeSpan::from_millis(50)];
        let h = Ipv4Hierarchy::bytes();
        let out = Pipeline::new(pkts.iter().copied())
            .engine(MicroVaried::new(&h, horizon, base, &deltas, Threshold::percent(10.0), |p| {
                p.src
            }))
            .collect().run();
        for (k, (b, v)) in out[0].iter().zip(&out[1]).enumerate() {
            let removed: u64 = pkts.iter()
                .filter(|p| p.ts >= v.end && p.ts < b.end)
                .map(|p| p.wire_len as u64)
                .sum();
            prop_assert_eq!(b.total - v.total, removed, "window {}", k);
            if removed == 0 {
                prop_assert_eq!(b.prefix_set(), v.prefix_set());
            }
        }
    }

    /// Weighted observation equals repeated unit observation for every
    /// windowed detector (weights are not a separate code path bug).
    #[test]
    fn weights_equal_repetition(weight in 1u64..30) {
        let h = Ipv4Hierarchy::bytes();
        let mut by_weight = ExactHhh::new(h);
        let mut by_repeat = ExactHhh::new(h);
        HhhDetector::<Ipv4Hierarchy>::observe(&mut by_weight, 0x0A010101, weight);
        for _ in 0..weight {
            HhhDetector::<Ipv4Hierarchy>::observe(&mut by_repeat, 0x0A010101, 1);
        }
        prop_assert_eq!(
            by_weight.report(Threshold::percent(50.0)),
            by_repeat.report(Threshold::percent(50.0))
        );
    }

    /// The TDBF detector's decayed total matches the analytic decayed
    /// sum of the stream it saw.
    #[test]
    fn tdbf_total_is_exact_decayed_sum(pkts in packets_strategy(300, 5)) {
        let h = Ipv4Hierarchy::bytes();
        let half_life = TimeSpan::from_secs(2);
        let mut det = TdbfHhh::new(h, TdbfHhhConfig { half_life, ..TdbfHhhConfig::default() });
        let rate = DecayRate::from_half_life(half_life);
        let now = Nanos::from_secs(5);
        let mut expect = 0.0f64;
        for p in &pkts {
            det.observe(p.ts, p.src, p.wire_len as u64);
            expect += p.wire_len as f64 * rate.factor(now - p.ts);
        }
        let got = det.decayed_total(now);
        prop_assert!((got - expect).abs() <= expect * 1e-9 + 1e-6,
            "decayed total {} vs analytic {}", got, expect);
    }
}
