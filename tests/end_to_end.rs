//! End-to-end pipeline tests: generation → capture I/O → window
//! analysis → metrics, across crate boundaries.

use hidden_hhh::analysis::hidden::hidden_hhh;
use hidden_hhh::pcap::{NativeReader, NativeWriter, PcapReader, PcapWriter};
use hidden_hhh::prelude::*;

fn small_day(seed: u64) -> Vec<PacketRecord> {
    let model = scenarios::day_trace(0, TimeSpan::from_secs(30));
    TraceGenerator::new(model, seed).collect()
}

#[test]
fn generation_is_deterministic_end_to_end() {
    let a = small_day(11);
    let b = small_day(11);
    assert_eq!(a, b, "same (model, seed) must give identical traces");
    let c = small_day(12);
    assert_ne!(a, c);
}

#[test]
fn pcap_pipeline_preserves_hhh_answers() {
    // The HHH report computed from records that went through a pcap
    // file must equal the report from the original records.
    let pkts = small_day(3);

    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf).unwrap();
    w.write_all_records(&pkts).unwrap();
    w.flush().unwrap();
    let mut r = PcapReader::new(&buf[..]).unwrap();
    let back = r.read_all_records().unwrap();
    assert_eq!(back.len(), pkts.len());

    let h = Ipv4Hierarchy::bytes();
    let report = |records: &[PacketRecord]| {
        let mut d = ExactHhh::new(h);
        for p in records {
            HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, p.wire_len as u64);
        }
        d.report(Threshold::percent(5.0))
    };
    // wire_len can grow to header size for tiny packets; the generator
    // never emits sub-42-byte packets, so reports must match exactly.
    assert_eq!(report(&pkts), report(&back));
}

#[test]
fn native_trace_pipeline_is_lossless() {
    let pkts = small_day(4);
    let mut buf = Vec::new();
    let mut w = NativeWriter::new(&mut buf).unwrap();
    w.write_all_records(&pkts).unwrap();
    w.into_inner().unwrap();
    let back = NativeReader::new(&buf[..]).unwrap().read_all_records().unwrap();
    assert_eq!(back, pkts);
}

#[test]
fn hidden_hhhs_exist_and_are_burst_driven() {
    // The headline phenomenon must show up on a bursty trace and
    // (nearly) vanish on the stable control scenario.
    let horizon = TimeSpan::from_secs(90);
    let window = TimeSpan::from_secs(5);
    let step = TimeSpan::from_secs(1);
    let t = Threshold::percent(1.0);
    let h = Ipv4Hierarchy::bytes();

    let run = |packets: Box<dyn Iterator<Item = PacketRecord>>| {
        let sliding = Pipeline::new(packets)
            .engine(SlidingExact::new(&h, horizon, window, step, &[t], |p| p.src))
            .collect()
            .run()
            .remove(0);
        let epw = window / step;
        let disjoint: Vec<_> = sliding.iter().filter(|r| r.index % epw == 0).cloned().collect();
        hidden_hhh(&sliding, &disjoint)
    };

    let bursty = run(Box::new(TraceGenerator::new(
        scenarios::day_trace(0, horizon),
        scenarios::day_seed(0),
    )));
    let stable = run(Box::new(TraceGenerator::new(scenarios::stable(horizon), 5)));

    assert!(
        bursty.hidden_fraction > 0.02,
        "bursty trace shows no hidden HHHs: {:?}",
        bursty.hidden_fraction
    );
    assert!(
        stable.hidden_fraction < bursty.hidden_fraction,
        "stable control ({}) should hide fewer HHHs than the bursty trace ({})",
        stable.hidden_fraction,
        bursty.hidden_fraction
    );
}

#[test]
fn windowless_detector_sees_what_disjoint_windows_hide() {
    // Build a stream with one engineered burst straddling a window
    // boundary, plus steady background. The disjoint windows at the
    // burst's threshold must miss it; the TDBF detector probed just
    // after the burst must report it. This is the paper's Figure 1b
    // story as an executable assertion.
    let window = TimeSpan::from_secs(10);
    let horizon = TimeSpan::from_secs(30);
    let burster: u32 = 0x4D4D_4D4D; // 77.77.77.77
    let mut pkts: Vec<PacketRecord> = Vec::new();
    let mut t = Nanos::ZERO;
    // Background: 40 sources × 100 B / 10 ms = 400 kB/s.
    while t < Nanos::ZERO + horizon {
        for s in 0..40u32 {
            pkts.push(PacketRecord::new(t, ((s % 37) << 24) | (0xBB00 + s), 1, 100));
        }
        // Burst: [9 s, 11 s) at 400 kB/s — 44% of the traffic during
        // its two seconds, ~8% of either 10 s window.
        if t >= Nanos::from_secs(9) && t < Nanos::from_secs(11) {
            pkts.push(PacketRecord::new(t, burster, 1, 4000));
        }
        t += TimeSpan::from_millis(10);
    }

    let h = Ipv4Hierarchy::bytes();
    let threshold = Threshold::percent(10.0);

    // Disjoint: never sees it.
    let mut exact = ExactHhh::new(h);
    let disjoint = Pipeline::new(pkts.iter().copied())
        .engine(Disjoint::new(&mut exact, horizon, window, &[threshold], |p| p.src))
        .collect()
        .run()
        .remove(0);
    let burst_prefix = Ipv4Prefix::host(burster);
    assert!(
        disjoint.iter().all(|r| !r.prefix_set().contains(&burst_prefix)),
        "burst should be diluted below 10% in every disjoint window"
    );

    // Windowless: sees it right after the burst.
    let mut tdbf =
        TdbfHhh::new(h, TdbfHhhConfig { half_life: window / 2, ..TdbfHhhConfig::default() });
    let probes = [Nanos::from_millis(11_200)];
    let reports = Pipeline::new(pkts.iter().copied())
        .engine(Continuous::new(&mut tdbf, &probes, threshold, |p| p.src))
        .collect()
        .run()
        .remove(0);
    assert!(
        reports[0].prefix_set().contains(&burst_prefix),
        "windowless detector missed the boundary-straddling burst: {:?}",
        reports[0].hhhs
    );
}
