//! The committed codec corpus, locked down: every good file decodes
//! (in both wire formats, to the same detector state), every malformed
//! v2 file fails with its **exact** typed [`SnapshotError`] variant,
//! transcoding maps the committed v1 files onto the committed v2 files
//! byte-for-byte (and back), and re-running the generator reproduces
//! the committed bytes — the corpus-freshness contract CI also checks
//! at the file level.
//!
//! A structure-aware fuzz smoke rides along: random byte mutations and
//! truncations of valid frames must never panic the decoder or drive
//! it past its wire-size caps — the same hostile-input guarantee the
//! v1 JSON path has always made.

use hidden_hhh::agg::transcode;
use hidden_hhh::core::snapshot::binary::{SnapshotFrame, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use hidden_hhh::core::{RestoredDetector, SnapshotError, WireFormat};
use hidden_hhh::experiments::corpus::{corpus_stream, write_corpus, CORPUS_KINDS, MALFORMED_CASES};
use hidden_hhh::prelude::*;
use hidden_hhh::window::SnapshotSource;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/snapshots")
}

fn read(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_good_corpus_file_decodes_and_the_formats_agree() {
    let h = Ipv4Hierarchy::bytes();
    for kind in CORPUS_KINDS {
        let decode_one = |bytes: &[u8], what: &str| {
            let mut src = SnapshotSource::new(bytes);
            let states: Vec<_> = (&mut src).collect();
            assert!(src.error().is_none(), "{what}: {:?}", src.error());
            assert_eq!(states.len(), 1, "{what}: one state record per corpus file");
            assert_eq!(states[0].kind(), kind, "{what}");
            states.into_iter().next().expect("one state")
        };
        let v1 = decode_one(&read(&format!("{kind}.v1.jsonl")), &format!("{kind}.v1"));
        let v2 = decode_one(&read(&format!("{kind}.v2.bin")), &format!("{kind}.v2"));

        // Same geometry, same total, and — restored through either
        // path — the identical detector state.
        assert_eq!(v1.at(), v2.at(), "{kind}");
        assert_eq!(v1.start(), v2.start(), "{kind}");
        assert_eq!(v1.total(), v2.total(), "{kind}");
        let from_v1 = RestoredDetector::from_wire(&h, &v1).expect("v1 restores");
        let from_v2 = RestoredDetector::from_wire(&h, &v2).expect("v2 restores");
        assert_eq!(
            from_v1.snapshot().to_json(),
            from_v2.snapshot().to_json(),
            "{kind}: v1- and v2-restored states must re-serialize identically"
        );
    }
}

#[test]
fn transcoding_maps_the_committed_files_onto_each_other() {
    for kind in CORPUS_KINDS {
        let v1 = read(&format!("{kind}.v1.jsonl"));
        let v2 = read(&format!("{kind}.v2.bin"));

        let mut to_v2 = Vec::new();
        transcode(0, v1.as_slice(), &mut to_v2, WireFormat::Binary).expect("v1 -> v2");
        assert_eq!(to_v2, v2, "{kind}: v1 transcodes onto the committed v2 bytes");

        let mut to_v1 = Vec::new();
        transcode(0, v2.as_slice(), &mut to_v1, WireFormat::Json).expect("v2 -> v1");
        assert_eq!(to_v1, v1, "{kind}: v2 transcodes back onto the committed v1 bytes");
    }
}

#[test]
fn malformed_cases_fail_with_their_exact_error_variants() {
    let h = Ipv4Hierarchy::bytes();
    // Decode a stream expecting the decoder (not the restorer) to
    // reject it.
    let stream_error = |name: &str| -> SnapshotError {
        let bytes = read(&format!("malformed/{name}"));
        let mut src = SnapshotSource::new(bytes.as_slice());
        assert_eq!((&mut src).count(), 0, "{name}: no state may decode");
        src.error().unwrap_or_else(|| panic!("{name}: must report an error")).1.clone()
    };

    assert!(
        matches!(
            stream_error("truncated.v2.bin"),
            SnapshotError::Parse { what: "truncated frame", .. }
        ),
        "truncated"
    );
    assert_eq!(
        stream_error("bad_magic.v2.bin"),
        SnapshotError::Parse { offset: 0, what: "bad frame magic" }
    );
    assert_eq!(stream_error("version_skew.v2.bin"), SnapshotError::Version(3));
    assert_eq!(
        stream_error("oversize_len.v2.bin"),
        SnapshotError::Invalid { field: "frame_len", what: "length prefix exceeds MAX_FRAME_LEN" }
    );

    // The config mismatch decodes as a frame (the header is fine) but
    // must be refused when the body is interpreted.
    let bytes = read("malformed/config_mismatch.v2.bin");
    let (frame, _) = SnapshotFrame::decode(&bytes).expect("frame header is well-formed");
    let err = RestoredDetector::from_frame(&h, &frame).expect_err("digest mismatch must fail");
    assert_eq!(
        err,
        SnapshotError::Invalid { field: "config_digest", what: "digest does not match the body" }
    );
    let err = hidden_hhh::core::DetectorSnapshot::from_frame(&frame)
        .expect_err("transcode must check the digest too");
    assert!(matches!(err, SnapshotError::Invalid { field: "config_digest", .. }));

    // The mvpipe cases decode as frames (header and digest are fine)
    // but must be refused when the detector is rebuilt.
    let restore_error = |name: &str| -> SnapshotError {
        let bytes = read(&format!("malformed/{name}"));
        let (frame, _) = SnapshotFrame::decode(&bytes).expect("frame header is well-formed");
        RestoredDetector::from_frame(&h, &frame)
            .expect_err("rebuilding a corrupt mvpipe state must fail")
    };
    assert_eq!(
        restore_error("mvpipe_total_skew.v2.bin"),
        SnapshotError::Invalid {
            field: "total",
            what: "bucket counts do not sum to the envelope total"
        }
    );
    assert_eq!(
        restore_error("mvpipe_vote_overflow.v2.bin"),
        SnapshotError::Invalid { field: "entries", what: "vote exceeds count" }
    );
}

#[test]
fn regenerating_the_corpus_reproduces_the_committed_bytes() {
    // The in-test twin of the CI freshness diff: the generator is a
    // pure function of the shipping encoders, so any codec drift shows
    // up as a byte difference right here.
    let dir = std::env::temp_dir().join(format!("hhh-corpus-fresh-{}", std::process::id()));
    write_corpus(&dir).expect("regenerate corpus");
    let diff = |rel: String| {
        let fresh = std::fs::read(dir.join(&rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert_eq!(fresh, read(&rel), "{rel}: regenerated corpus diverged from the committed one");
    };
    for kind in CORPUS_KINDS {
        diff(format!("{kind}.v1.jsonl"));
        diff(format!("{kind}.v2.bin"));
    }
    for case in MALFORMED_CASES {
        diff(format!("malformed/{case}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Structure-aware fuzz smoke
// ---------------------------------------------------------------------

/// Valid frames of all five kinds, decoded from the corpus streams —
/// the fuzz seeds.
fn seed_frames() -> Vec<Vec<u8>> {
    CORPUS_KINDS
        .iter()
        .flat_map(|kind| {
            let stream = corpus_stream(kind, WireFormat::Binary);
            let mut frames = Vec::new();
            let mut rest = &stream[..];
            while !rest.is_empty() {
                let (frame, used) = SnapshotFrame::decode(rest).expect("corpus stream decodes");
                frames.push(frame.encode());
                rest = &rest[used..];
            }
            frames
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Mutating any bytes of a valid frame (or truncating it anywhere)
    /// must never panic the decoder, the restorer, or the transcoder —
    /// only `Ok` or a typed error — and a hostile length prefix can
    /// never claim more than [`MAX_FRAME_LEN`].
    #[test]
    fn mutated_frames_never_panic_the_decoder(
        seed in 0usize..1_000_000,
        cut in 0u32..=1,
        mutations in prop::collection::vec((any::<u64>(), any::<u8>()), 1..8),
    ) {
        let seeds = seed_frames();
        let mut bytes = seeds[seed % seeds.len()].clone();
        for (pos, val) in mutations {
            let at = (pos as usize) % bytes.len();
            bytes[at] ^= val | 1; // always flips at least one bit
        }
        if cut == 1 {
            let keep = (seed * 31) % (bytes.len() + 1);
            bytes.truncate(keep);
        }
        let h = Ipv4Hierarchy::bytes();
        if let Ok((frame, used)) = SnapshotFrame::decode(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert!(frame.body.len() <= MAX_FRAME_LEN);
            // Interpreting the (possibly corrupt) body must be a typed
            // result, never a panic or runaway allocation.
            let _ = RestoredDetector::from_frame(&h, &frame);
            let _ = hidden_hhh::core::DetectorSnapshot::from_frame(&frame);
            let _ = frame.report_line();
        }
        // The streaming reader must land on the same judgement without
        // hanging or panicking.
        let mut src = SnapshotSource::new(bytes.as_slice());
        let decoded = (&mut src).count();
        prop_assert!(decoded <= 2, "a single mutated frame cannot multiply");
    }

    /// Pure truncation of a valid frame is always a typed error (or a
    /// clean empty stream), pinned separately because it is the wire's
    /// most common real-world failure (a torn connection).
    #[test]
    fn truncated_frames_are_typed_errors(seed in 0usize..1_000_000) {
        let seeds = seed_frames();
        let full = &seeds[seed % seeds.len()];
        let keep = (seed / seeds.len()) % full.len(); // strictly shorter
        let bytes = &full[..keep];
        match SnapshotFrame::decode(bytes) {
            Err(SnapshotError::Parse { what: "truncated frame", .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            Ok(_) => prop_assert!(false, "a strict prefix cannot decode"),
        }
        if keep >= FRAME_HEADER_LEN {
            // The header survived, so the streaming reader must report
            // the truncation too (not end cleanly).
            let mut src = SnapshotSource::new(bytes);
            prop_assert_eq!((&mut src).count(), 0);
            prop_assert!(src.error().is_some());
        }
    }
}
