//! Pipeline ↔ legacy-driver parity: the acceptance contract of the
//! unified `Pipeline` API.
//!
//! * **Golden parity on the 1.36M-packet trace** — for every legacy
//!   `run_*` driver, composing the equivalent pipeline reproduces its
//!   reports *exactly* (same series, same windows, same HHH sets, same
//!   estimates). This pins the wrapper→engine mapping (series order,
//!   output assembly, defaults) against regressions.
//! * **New sharded engines vs their unsharded counterparts** — sharded
//!   sliding with exact detectors equals the rolling-count sliding
//!   engine report-for-report; sharded continuous equals the unsharded
//!   windowless detector (bit-exactly at one shard, set-identically at
//!   several).
//! * **Source equivalence** — the bounded channel source feeds the
//!   same reports as the iterator source.
//! * **Snapshot plumbing** — sharded engines hand serialized merged
//!   state to sinks whose totals match the reports.

use hidden_hhh::core::snapshot::DetectorSnapshot;
use hidden_hhh::core::{TdbfHhh, TdbfHhhConfig};
use hidden_hhh::prelude::*;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The acceptance trace: day 0, 60 s, ≥ 1.36M packets (same trace the
/// sharded-merge contract tests use).
fn big_trace() -> &'static [PacketRecord] {
    static TRACE: OnceLock<Vec<PacketRecord>> = OnceLock::new();
    TRACE.get_or_init(|| {
        let pkts: Vec<PacketRecord> = TraceGenerator::new(
            scenarios::day_trace(0, TimeSpan::from_secs(60)),
            scenarios::day_seed(0),
        )
        .collect();
        assert!(pkts.len() >= 1_000_000, "trace too small: {} packets", pkts.len());
        pkts
    })
}

fn small_trace(secs: u64, seed: u64) -> Vec<PacketRecord> {
    TraceGenerator::new(scenarios::day_trace(0, TimeSpan::from_secs(secs)), seed).collect()
}

const HORIZON: TimeSpan = TimeSpan::from_secs(60);
const WINDOW: TimeSpan = TimeSpan::from_secs(5);
const STEP: TimeSpan = TimeSpan::from_secs(1);

#[test]
fn golden_disjoint_driver_parity_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let thresholds = [Threshold::percent(1.0), Threshold::percent(5.0)];
    #[allow(deprecated)]
    let legacy = {
        let mut det = ExactHhh::new(h);
        run_disjoint(
            pkts.iter().copied(),
            HORIZON,
            WINDOW,
            &h,
            &mut det,
            &thresholds,
            Measure::Bytes,
            |p| p.src,
        )
    };
    let mut det = ExactHhh::new(h);
    let pipeline = Pipeline::new(pkts.iter().copied())
        .engine(Disjoint::new(&mut det, HORIZON, WINDOW, &thresholds, |p| p.src))
        .collect()
        .run();
    assert_eq!(legacy, pipeline);
}

#[test]
fn golden_sliding_driver_parity_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let thresholds = [Threshold::percent(1.0)];
    #[allow(deprecated)]
    let legacy = run_sliding_exact(
        pkts.iter().copied(),
        HORIZON,
        WINDOW,
        STEP,
        &h,
        &thresholds,
        Measure::Bytes,
        |p| p.src,
    );
    let pipeline = Pipeline::new(pkts.iter().copied())
        .engine(SlidingExact::new(&h, HORIZON, WINDOW, STEP, &thresholds, |p| p.src))
        .collect()
        .run();
    assert_eq!(legacy, pipeline);
    assert_eq!(pipeline[0].len(), ((HORIZON / STEP) - (WINDOW / STEP) + 1) as usize);
}

#[test]
fn golden_microvaried_driver_parity_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let base = TimeSpan::from_secs(10);
    let deltas = [TimeSpan::from_millis(100), TimeSpan::from_millis(40), TimeSpan::from_millis(10)];
    let t = Threshold::percent(5.0);
    #[allow(deprecated)]
    let legacy =
        run_microvaried(pkts.iter().copied(), HORIZON, base, &deltas, &h, t, Measure::Bytes, |p| {
            p.src
        });
    let pipeline = Pipeline::new(pkts.iter().copied())
        .engine(MicroVaried::new(&h, HORIZON, base, &deltas, t, |p| p.src))
        .collect()
        .run();
    assert_eq!(legacy.baseline, pipeline[0]);
    for (i, (delta, reports)) in legacy.variants.iter().enumerate() {
        assert_eq!(*delta, deltas[i], "deltas preserved in request order");
        assert_eq!(reports, &pipeline[1 + i], "delta {delta} series");
    }
}

#[test]
fn golden_continuous_driver_parity_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let probes: Vec<Nanos> = (1..12).map(|k| Nanos::from_secs(k * 5)).collect();
    let t = Threshold::percent(5.0);
    let cfg = TdbfHhhConfig { half_life: WINDOW, ..TdbfHhhConfig::default() };
    #[allow(deprecated)]
    let legacy = {
        let mut det = TdbfHhh::new(h, cfg.clone());
        run_continuous(pkts.iter().copied(), &probes, &mut det, t, Measure::Bytes, |p| p.src)
    };
    let mut det = TdbfHhh::new(h, cfg);
    let pipeline = Pipeline::new(pkts.iter().copied())
        .engine(Continuous::new(&mut det, &probes, t, |p| p.src))
        .collect()
        .run()
        .remove(0);
    assert_eq!(legacy, pipeline);
}

#[test]
fn golden_sharded_disjoint_driver_parity_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let thresholds = [Threshold::percent(1.0)];
    #[allow(deprecated)]
    let legacy = run_sharded_disjoint(
        pkts.iter().copied(),
        HORIZON,
        WINDOW,
        &h,
        (0..4).map(|_| ExactHhh::new(h)).collect(),
        &thresholds,
        Measure::Bytes,
        |p| p.src,
        8192,
    );
    let pipeline = Pipeline::new(pkts.iter().copied())
        .engine(
            ShardedDisjoint::new(
                (0..4).map(|_| ExactHhh::new(h)).collect(),
                HORIZON,
                WINDOW,
                &thresholds,
                |p| p.src,
            )
            .batch(8192),
        )
        .collect()
        .run();
    assert_eq!(legacy, pipeline);
}

/// The headline new capability: the sharded sliding engine with exact
/// shard detectors is report-for-report identical to the rolling-count
/// sliding engine — on the full acceptance trace, at several shard
/// counts.
#[test]
fn sharded_sliding_equals_sliding_exact_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let thresholds = [Threshold::percent(1.0), Threshold::percent(5.0)];
    let reference = Pipeline::new(pkts.iter().copied())
        .engine(SlidingExact::new(&h, HORIZON, WINDOW, STEP, &thresholds, |p| p.src))
        .collect()
        .run();
    for k in [1usize, 4] {
        let sharded = Pipeline::new(pkts.iter().copied())
            .engine(ShardedSliding::new(
                k,
                |_shard| ExactHhh::new(h),
                HORIZON,
                WINDOW,
                STEP,
                &thresholds,
                |p| p.src,
            ))
            .collect()
            .run();
        assert_eq!(reference, sharded, "sharded sliding must be lossless at K={k}");
    }
}

/// The non-retractable fallback path of the sharded sliding engine,
/// pinned on the full acceptance trace: [`SpaceSavingHhh`] does not
/// implement `retract`, so the engine must take the slot-order ring
/// merge per position instead of the incremental rolling state — and
/// with per-level capacity (4096) above the trace's distinct-key count
/// (2500 sources) the summary never evicts, so its windowed totals and
/// HHH sets must equal [`SlidingExact`]'s exactly.
#[test]
fn sharded_sliding_fallback_matches_sliding_exact_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let thresholds = [Threshold::percent(1.0), Threshold::percent(5.0)];
    let reference = Pipeline::new(pkts.iter().copied())
        .engine(SlidingExact::new(&h, HORIZON, WINDOW, STEP, &thresholds, |p| p.src))
        .collect()
        .run();
    for k in [1usize, 4] {
        let sharded = Pipeline::new(pkts.iter().copied())
            .engine(ShardedSliding::new(
                k,
                |_shard| SpaceSavingHhh::new(h, 4096),
                HORIZON,
                WINDOW,
                STEP,
                &thresholds,
                |p| p.src,
            ))
            .collect()
            .run();
        assert_eq!(reference.len(), sharded.len());
        for (ti, (r_series, s_series)) in reference.iter().zip(&sharded).enumerate() {
            assert_eq!(r_series.len(), s_series.len(), "threshold {ti} K={k}");
            for (r, s) in r_series.iter().zip(s_series) {
                assert_eq!(r.index, s.index);
                assert_eq!(r.total, s.total, "position {} threshold {ti} K={k}", r.index);
                assert_eq!(
                    r.prefix_set(),
                    s.prefix_set(),
                    "position {} threshold {ti} K={k}",
                    r.index
                );
            }
        }
    }
}

/// Sharded continuous vs the unsharded windowless detector on the full
/// acceptance trace: identical totals (decay algebra is exact under
/// merge) and identical reported prefix sets at every probe.
#[test]
fn sharded_continuous_matches_continuous_on_big_trace() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let probes: Vec<Nanos> = (1..12).map(|k| Nanos::from_secs(k * 5)).collect();
    let t = Threshold::percent(5.0);
    let cfg = TdbfHhhConfig { half_life: WINDOW, ..TdbfHhhConfig::default() };
    let mut det = TdbfHhh::new(h, cfg.clone());
    let reference = Pipeline::new(pkts.iter().copied())
        .engine(Continuous::new(&mut det, &probes, t, |p| p.src))
        .collect()
        .run()
        .remove(0);
    for k in [1usize, 4] {
        let detectors: Vec<_> = (0..k).map(|_| TdbfHhh::new(h, cfg.clone())).collect();
        let sharded = Pipeline::new(pkts.iter().copied())
            .engine(ShardedContinuous::new(detectors, &probes, t, |p| p.src))
            .collect()
            .run()
            .remove(0);
        assert_eq!(reference.len(), sharded.len());
        for (r, s) in reference.iter().zip(&sharded) {
            assert_eq!(r.prefix_set(), s.prefix_set(), "probe {} K={k}", r.index);
            let rel = (r.total as f64 - s.total as f64).abs() / (r.total.max(1) as f64);
            assert!(
                rel < 1e-6,
                "probe {} K={k}: totals diverged {} vs {}",
                r.index,
                r.total,
                s.total
            );
        }
        if k == 1 {
            // One shard sees the identical observation order: bit-exact.
            assert_eq!(reference, sharded, "K=1 sharded continuous must be bit-exact");
        }
    }
}

/// The bounded channel source delivers exactly what the iterator
/// source does — same reports through the same sharded engine.
#[test]
fn channel_source_equals_iterator_source() {
    let pkts = big_trace();
    let h = Ipv4Hierarchy::bytes();
    let thresholds = [Threshold::percent(1.0)];
    let reference = Pipeline::new(pkts.iter().copied())
        .engine(ShardedDisjoint::new(
            (0..2).map(|_| ExactHhh::new(h)).collect(),
            HORIZON,
            WINDOW,
            &thresholds,
            |p| p.src,
        ))
        .collect()
        .run();
    let (mut feeder, source) = bounded(4, 4096);
    let fed = std::thread::scope(|scope| {
        scope.spawn(move || {
            feeder.send_batch(pkts);
        });
        Pipeline::new(source)
            .engine(ShardedDisjoint::new(
                (0..2).map(|_| ExactHhh::new(h)).collect(),
                HORIZON,
                WINDOW,
                &thresholds,
                |p| p.src,
            ))
            .collect()
            .run()
    });
    assert_eq!(reference, fed, "channel-fed pipeline must reproduce the iterator-fed one");
}

/// Snapshot plumbing: the sharded engines hand the sink one serialized
/// merged state per report point, and its totals agree with the
/// reports (the state a remote aggregator would fold).
#[test]
fn sharded_engine_forwards_merged_snapshots() {
    struct Capture {
        reports: Vec<WindowReport<Ipv4Prefix>>,
        states: Vec<(Nanos, Nanos, DetectorSnapshot)>,
    }
    impl ReportSink<Ipv4Prefix> for Capture {
        type Output = Self;
        fn accept(&mut self, _series: usize, report: WindowReport<Ipv4Prefix>) {
            self.reports.push(report);
        }
        fn state(&mut self, start: Nanos, at: Nanos, snapshot: &DetectorSnapshot) {
            self.states.push((start, at, snapshot.clone()));
        }
        fn finish(self) -> Self {
            self
        }
    }

    let pkts = small_trace(6, 77);
    let h = Ipv4Hierarchy::bytes();
    let horizon = TimeSpan::from_secs(6);
    let window = TimeSpan::from_secs(2);
    let out = Pipeline::new(pkts.iter().copied())
        .engine(ShardedDisjoint::new(
            (0..3).map(|_| ExactHhh::new(h)).collect(),
            horizon,
            window,
            &[Threshold::percent(5.0)],
            |p| p.src,
        ))
        .sink(Capture { reports: Vec::new(), states: Vec::new() })
        .run();
    assert_eq!(out.reports.len(), 3);
    assert_eq!(out.states.len(), 3, "one merged snapshot per report point");
    for (report, (start, at, snap)) in out.reports.iter().zip(&out.states) {
        assert_eq!(*at, report.end);
        assert_eq!(*start, report.start, "state records carry the window start");
        assert_eq!(snap.kind, "exact");
        assert_eq!(snap.total, report.total, "snapshot covers exactly the window's traffic");
        assert!(snap.state_json.starts_with("{\"counts\":["));
    }

    // And the JSON sink renders both line types.
    let (bytes, err) = Pipeline::new(pkts.iter().copied())
        .engine(ShardedDisjoint::new(
            (0..2).map(|_| ExactHhh::new(h)).collect(),
            horizon,
            window,
            &[Threshold::percent(5.0)],
            |p| p.src,
        ))
        .sink(JsonSnapshotSink::new(Vec::new()))
        .run();
    assert!(err.is_none());
    let text = String::from_utf8(bytes).unwrap();
    assert_eq!(text.lines().filter(|l| l.starts_with("{\"type\":\"report\"")).count(), 3);
    assert_eq!(text.lines().filter(|l| l.starts_with("{\"type\":\"state\"")).count(), 3);
    assert!(text.contains("\"kind\":\"exact\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: for any trace, shard count, batch size and sliding
    /// geometry, the sharded sliding engine with exact detectors is
    /// indistinguishable from the rolling-count sliding engine.
    #[test]
    fn sharded_sliding_equals_sliding_exact_on_any_trace(
        seed in 0u64..1_000_000,
        shards in 1usize..6,
        batch in prop::sample::select(vec![64usize, 1021, 8192]),
        epw in 2u64..5,
    ) {
        let pkts = small_trace(6, seed);
        let h = Ipv4Hierarchy::bytes();
        let horizon = TimeSpan::from_secs(6);
        let step = TimeSpan::from_secs(1);
        let window = step * epw;
        let thresholds = [Threshold::percent(5.0)];
        let reference = Pipeline::new(pkts.iter().copied())
            .engine(SlidingExact::new(&h, horizon, window, step, &thresholds, |p| p.src))
            .collect().run();
        let sharded = Pipeline::new(pkts.iter().copied())
            .engine(ShardedSliding::new(
                shards, |_| ExactHhh::new(h), horizon, window, step, &thresholds, |p| p.src,
            ).batch(batch))
            .collect().run();
        prop_assert_eq!(&reference, &sharded);
        // The incremental rolling state and the forced ring merge are
        // two routes to the same reports — pin them against each other.
        let ring = Pipeline::new(pkts.iter().copied())
            .engine(ShardedSliding::new(
                shards, |_| ExactHhh::new(h), horizon, window, step, &thresholds, |p| p.src,
            ).batch(batch).force_ring_merge())
            .collect().run();
        prop_assert_eq!(&reference, &ring);
    }

    /// Property: the non-retractable fallback (slot-order ring merge)
    /// stays window-isolated and lossless for any trace, shard count
    /// and geometry, as long as the summary never evicts: sharded
    /// sliding with eviction-free [`SpaceSavingHhh`] reproduces
    /// [`SlidingExact`]'s totals and prefix sets at every position.
    #[test]
    fn sharded_sliding_fallback_matches_sliding_exact_on_any_trace(
        seed in 0u64..1_000_000,
        shards in 1usize..6,
        epw in 2u64..5,
    ) {
        let pkts = small_trace(6, seed);
        let h = Ipv4Hierarchy::bytes();
        let horizon = TimeSpan::from_secs(6);
        let step = TimeSpan::from_secs(1);
        let window = step * epw;
        let thresholds = [Threshold::percent(5.0)];
        let reference = Pipeline::new(pkts.iter().copied())
            .engine(SlidingExact::new(&h, horizon, window, step, &thresholds, |p| p.src))
            .collect().run();
        let sharded = Pipeline::new(pkts.iter().copied())
            .engine(ShardedSliding::new(
                shards, |_| SpaceSavingHhh::new(h, 4096), horizon, window, step, &thresholds,
                |p| p.src,
            ))
            .collect().run();
        prop_assert_eq!(reference[0].len(), sharded[0].len());
        for (r, s) in reference[0].iter().zip(&sharded[0]) {
            prop_assert_eq!(r.total, s.total, "position {}", r.index);
            prop_assert_eq!(r.prefix_set(), s.prefix_set(), "position {}", r.index);
        }
    }

    /// Property: the windowless TDBF detector through the sharded
    /// continuous engine reports the same prefix sets as the unsharded
    /// detector, for any seed and shard count (and bit-exactly at one
    /// shard). This is the TdbfHhh leg of the sliding/continuous
    /// scale-out gap — TdbfHhh is windowless, so "sharded sliding" for
    /// it *is* the sharded continuous engine with half_life ≈ window/2.
    #[test]
    fn sharded_continuous_tdbf_matches_unsharded_on_any_trace(
        seed in 0u64..1_000_000,
        shards in 1usize..5,
    ) {
        let pkts = small_trace(6, seed);
        let h = Ipv4Hierarchy::bytes();
        let probes: Vec<Nanos> = (1..6).map(Nanos::from_secs).collect();
        let t = Threshold::percent(10.0);
        let cfg = TdbfHhhConfig { half_life: TimeSpan::from_secs(2), ..TdbfHhhConfig::default() };
        let mut det = TdbfHhh::new(h, cfg.clone());
        let reference = Pipeline::new(pkts.iter().copied())
            .engine(Continuous::new(&mut det, &probes, t, |p| p.src))
            .collect().run().remove(0);
        let detectors: Vec<_> = (0..shards).map(|_| TdbfHhh::new(h, cfg.clone())).collect();
        let sharded = Pipeline::new(pkts.iter().copied())
            .engine(ShardedContinuous::new(detectors, &probes, t, |p| p.src))
            .collect().run().remove(0);
        prop_assert_eq!(reference.len(), sharded.len());
        for (r, s) in reference.iter().zip(&sharded) {
            prop_assert_eq!(r.prefix_set(), s.prefix_set(), "probe {}", r.index);
        }
        if shards == 1 {
            prop_assert_eq!(reference, sharded);
        }
    }
}
