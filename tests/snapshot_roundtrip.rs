//! Round-trip codec contract: for every snapshot-capable detector,
//! `snapshot → to_json → from_json → fold` reproduces the in-process
//! `merge` — the property that makes cross-process aggregation the
//! same algebra as sharded in-process ingestion.
//!
//! * `ExactHhh` / `SpaceSavingHhh` / `Rhhh` / `MvPipeHhh`:
//!   **bit-exact** — the folded state re-serializes byte-identically
//!   to the in-process merge's snapshot (Space-Saving prune ties and
//!   MVPipe majority-vote ties break by a fixed key hash, so heap
//!   layout never leaks into the wire bytes).
//! * `TdbfHhh`: byte-identical state too (floats ride the wire in
//!   shortest round-trip form), plus prefix-set agreement of the
//!   reports at the probe instant.
//! * Error paths: mismatched configurations are typed
//!   [`SnapshotError`]s, never silent corruption.

use hidden_hhh::core::snapshot::DetectorSnapshot;
use hidden_hhh::core::{
    ContinuousDetector, RestoredDetector, SnapshotError, TdbfHhh, TdbfHhhConfig,
};
use hidden_hhh::prelude::*;
use hidden_hhh::window::shard_of;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn h() -> Ipv4Hierarchy {
    Ipv4Hierarchy::bytes()
}

/// A skewed synthetic item stream: a few heavies over a long tail.
fn stream(n: usize, seed: u64) -> Vec<(u32, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let item: u32 = if rng.gen::<f64>() < 0.3 {
                0x0A01_0100 + rng.gen_range(0..4)
            } else {
                (rng.gen_range(10u32..60) << 24) | rng.gen_range(0..4096)
            };
            (item, 1 + rng.gen_range(0..1500))
        })
        .collect()
}

type Obs = Vec<(u32, u64)>;

/// Split a stream into two disjoint key-partitioned halves (the
/// precondition every merge contract demands).
fn split2(items: &[(u32, u64)]) -> (Obs, Obs) {
    items.iter().partition(|(item, _)| shard_of(item, 2) == 0)
}

/// The wire round trip itself: encode, decode, compare.
fn roundtrip(snap: &DetectorSnapshot) -> DetectorSnapshot {
    let line = snap.to_json();
    let back = DetectorSnapshot::from_json(&line).expect("own wire lines must parse");
    assert_eq!(&back, snap, "from_json(to_json(s)) == s");
    assert_eq!(back.to_json(), line, "re-render is canonical");
    back
}

/// Fold `b` into `a` over the wire and return the merged state's
/// serialized form.
fn fold_over_wire(a: &DetectorSnapshot, b: &DetectorSnapshot) -> RestoredDetector<Ipv4Hierarchy> {
    let hier = h();
    let mut restored =
        RestoredDetector::from_snapshot(&hier, &roundtrip(a)).expect("snapshot restores");
    restored.fold(&hier, &roundtrip(b)).expect("snapshots fold");
    restored
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn exact_fold_is_bitexact_to_merge(seed in 0u64..1_000_000, n in 500usize..3000) {
        let (sa, sb) = split2(&stream(n, seed));
        let mut a = ExactHhh::new(h());
        let mut b = ExactHhh::new(h());
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut a, &sa);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut b, &sb);
        let mut merged = a.clone();
        merged.merge(&b);
        let folded = fold_over_wire(&a.snapshot().unwrap(), &b.snapshot().unwrap());
        prop_assert_eq!(folded.snapshot().to_json(), merged.snapshot().unwrap().to_json());
    }

    #[test]
    fn ss_hhh_fold_is_bitexact_to_merge(seed in 0u64..1_000_000, n in 500usize..3000) {
        let (sa, sb) = split2(&stream(n, seed));
        let mut a = SpaceSavingHhh::new(h(), 64);
        let mut b = SpaceSavingHhh::new(h(), 64);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut a, &sa);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut b, &sb);
        let mut merged = a.clone();
        merged.merge(&b);
        let folded = fold_over_wire(&a.snapshot().unwrap(), &b.snapshot().unwrap());
        prop_assert_eq!(folded.snapshot().to_json(), merged.snapshot().unwrap().to_json());
    }

    #[test]
    fn mvpipe_fold_is_bitexact_to_merge(seed in 0u64..1_000_000, n in 500usize..3000) {
        let (sa, sb) = split2(&stream(n, seed));
        let mut a = MvPipeHhh::new(h(), 64);
        let mut b = MvPipeHhh::new(h(), 64);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut a, &sa);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut b, &sb);
        let mut merged = a.clone();
        merged.merge(&b);
        let folded = fold_over_wire(&a.snapshot().unwrap(), &b.snapshot().unwrap());
        prop_assert_eq!(folded.snapshot().to_json(), merged.snapshot().unwrap().to_json());
    }

    #[test]
    fn rhhh_fold_agrees_with_merge(seed in 0u64..1_000_000, n in 500usize..3000) {
        let (sa, sb) = split2(&stream(n, seed));
        let mut a = Rhhh::new(h(), 64, seed ^ 0xA);
        let mut b = Rhhh::new(h(), 64, seed ^ 0xB);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut a, &sa);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut b, &sb);
        let mut merged = a.clone();
        merged.merge(&b);
        let folded = fold_over_wire(&a.snapshot().unwrap(), &b.snapshot().unwrap());
        // Level summaries, totals and update counts restore exactly, so
        // the fold is byte-identical too (the RNG is not state)…
        prop_assert_eq!(folded.snapshot().to_json(), merged.snapshot().unwrap().to_json());
        // …and the contract the aggregator relies on: same prefix sets.
        let t = Threshold::percent(2.0);
        let wire: Vec<_> = folded.report(Nanos::ZERO, t);
        prop_assert_eq!(wire, merged.report(t));
    }

    #[test]
    fn tdbf_fold_agrees_with_merge(seed in 0u64..1_000_000, n in 500usize..2000) {
        let (sa, sb) = split2(&stream(n, seed));
        let cfg = TdbfHhhConfig {
            half_life: TimeSpan::from_secs(2),
            ..TdbfHhhConfig::default()
        };
        let mut a = TdbfHhh::new(h(), cfg.clone());
        let mut b = TdbfHhh::new(h(), cfg);
        let feed = |d: &mut TdbfHhh<Ipv4Hierarchy>, items: &[(u32, u64)]| {
            for (i, &(item, w)) in items.iter().enumerate() {
                ContinuousDetector::<Ipv4Hierarchy>::observe(
                    d,
                    Nanos::from_micros(10 * i as u64),
                    item,
                    w,
                );
            }
        };
        feed(&mut a, &sa);
        feed(&mut b, &sb);
        let mut merged = a.clone();
        merged.merge(&b);
        let folded = fold_over_wire(
            &MergeableDetector::snapshot(&a).unwrap(),
            &MergeableDetector::snapshot(&b).unwrap(),
        );
        // Floats ride the wire in shortest round-trip form, so even the
        // decayed counter cells re-serialize bit-identically.
        prop_assert_eq!(
            folded.snapshot().to_json(),
            MergeableDetector::snapshot(&merged).unwrap().to_json()
        );
        // Prefix-set agreement at a probe instant past the stream.
        let at = Nanos::from_secs(1);
        let t = Threshold::percent(2.0);
        let wire: std::collections::BTreeSet<_> =
            folded.report(at, t).into_iter().map(|r| r.prefix).collect();
        let inproc: std::collections::BTreeSet<_> =
            merged.report_at(at, t).into_iter().map(|r| r.prefix).collect();
        prop_assert_eq!(wire, inproc);
    }
}

/// One live detector of each kind, built from the same seeded stream —
/// the differential-test corpus generator.
struct ArbitraryDetectors {
    exact: ExactHhh<Ipv4Hierarchy>,
    ss: SpaceSavingHhh<Ipv4Hierarchy>,
    rhhh: Rhhh<Ipv4Hierarchy>,
    mvpipe: MvPipeHhh<Ipv4Hierarchy>,
    tdbf: TdbfHhh<Ipv4Hierarchy>,
}

fn arbitrary_detectors(seed: u64, n: usize) -> ArbitraryDetectors {
    let items = stream(n, seed);
    let mut exact = ExactHhh::new(h());
    let mut ss = SpaceSavingHhh::new(h(), 64);
    let mut rhhh = Rhhh::new(h(), 64, seed ^ 0x5EED);
    let mut mvpipe = MvPipeHhh::new(h(), 64);
    let mut tdbf = TdbfHhh::new(
        h(),
        TdbfHhhConfig {
            cells_per_level: 512,
            hashes: 2,
            candidates_per_level: 32,
            half_life: TimeSpan::from_secs(2),
            ..TdbfHhhConfig::default()
        },
    );
    HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut exact, &items);
    HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut ss, &items);
    HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut rhhh, &items);
    HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut mvpipe, &items);
    for (i, &(item, w)) in items.iter().enumerate() {
        ContinuousDetector::<Ipv4Hierarchy>::observe(
            &mut tdbf,
            Nanos::from_micros(10 * i as u64),
            item,
            w,
        );
    }
    ArbitraryDetectors { exact, ss, rhhh, mvpipe, tdbf }
}

/// Build one detector of each kind from a seeded stream and return its
/// (JSON-bodied) snapshot.
fn arbitrary_snapshots(seed: u64, n: usize) -> Vec<DetectorSnapshot> {
    let d = arbitrary_detectors(seed, n);
    vec![
        d.exact.snapshot().unwrap(),
        d.ss.snapshot().unwrap(),
        d.rhhh.snapshot().unwrap(),
        d.mvpipe.snapshot().unwrap(),
        MergeableDetector::snapshot(&d.tdbf).unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Differential contract #1: for arbitrary detector states of
    /// every kind, `from_frame(to_frame(s)) == s` — the binary body is
    /// a lossless re-encoding of the canonical JSON body.
    #[test]
    fn frame_transcode_roundtrips_every_kind(seed in 0u64..1_000_000, n in 200usize..1500) {
        use hidden_hhh::core::snapshot::binary::SnapshotFrame;
        let (start, at) = (Nanos::from_secs(1), Nanos::from_secs(6));
        for snap in arbitrary_snapshots(seed, n) {
            let frame = snap.to_frame(start, at).expect("own snapshots transcode");
            prop_assert_eq!(frame.start, start);
            prop_assert_eq!(frame.at, at);
            let back = DetectorSnapshot::from_frame(&frame).expect("own frames decode");
            prop_assert_eq!(&back, &snap, "from_frame(to_frame(s)) == s for kind {}", snap.kind);
            // And the serialized frame itself round-trips bytewise.
            let bytes = frame.encode();
            let (again, used) = SnapshotFrame::decode(&bytes).expect("own frames re-decode");
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(again, frame);
        }
    }

    /// Differential contract #2: a v2-restored fold is bit-identical
    /// to the v1-restored fold — the binary decode path lands on
    /// exactly the detector the JSON path builds, merge included.
    #[test]
    fn binary_restored_folds_match_json_restored_folds(
        seed in 0u64..1_000_000,
        n in 200usize..1500,
    ) {
        use hidden_hhh::core::WireSnapshot;
        let hier = h();
        let (start, at) = (Nanos::ZERO, Nanos::from_secs(5));
        let a_snaps = arbitrary_snapshots(seed, n);
        let b_snaps = arbitrary_snapshots(seed ^ 0xB0B, n / 2);
        for (a, b) in a_snaps.iter().zip(&b_snaps) {
            let mut via_json =
                RestoredDetector::from_snapshot(&hier, a).expect("v1 restores");
            via_json.fold(&hier, b).expect("v1 folds");

            let wire_a = WireSnapshot::Binary(a.to_frame(start, at).unwrap());
            let wire_b = WireSnapshot::Binary(b.to_frame(start, at).unwrap());
            let mut via_frame =
                RestoredDetector::from_wire(&hier, &wire_a).expect("v2 restores");
            via_frame.fold_wire(&hier, &wire_b).expect("v2 folds");

            prop_assert_eq!(
                via_frame.snapshot().to_json(),
                via_json.snapshot().to_json(),
                "kind {}: v2-restored fold must be bit-identical to the v1-restored fold",
                a.kind
            );
        }
    }

    /// Differential contract #4 (PR 5): for arbitrary detector states
    /// of every kind, the **native** frame encode
    /// (`MergeableDetector::to_frame`, the `FrameEncode` path — no
    /// JSON rendered or parsed) is byte-identical to the
    /// `snapshot()`-then-transcode reference, frame header included.
    #[test]
    fn native_frame_encode_matches_the_transcode_reference(
        seed in 0u64..1_000_000,
        n in 200usize..1500,
    ) {
        let (start, at) = (Nanos::from_secs(2), Nanos::from_secs(7));
        let d = arbitrary_detectors(seed, n);
        let reference = |snap: &DetectorSnapshot| {
            snap.to_frame(start, at).expect("own snapshots transcode").encode()
        };
        let cases: [(&str, Vec<u8>, Vec<u8>); 5] = [
            (
                "exact",
                d.exact.to_frame(start, at).expect("native-encodes").encode(),
                reference(&d.exact.snapshot().unwrap()),
            ),
            (
                "ss-hhh",
                d.ss.to_frame(start, at).expect("native-encodes").encode(),
                reference(&d.ss.snapshot().unwrap()),
            ),
            (
                "rhhh",
                d.rhhh.to_frame(start, at).expect("native-encodes").encode(),
                reference(&d.rhhh.snapshot().unwrap()),
            ),
            (
                "mvpipe",
                d.mvpipe.to_frame(start, at).expect("native-encodes").encode(),
                reference(&d.mvpipe.snapshot().unwrap()),
            ),
            (
                "tdbf-hhh",
                MergeableDetector::to_frame(&d.tdbf, start, at).expect("native-encodes").encode(),
                reference(&MergeableDetector::snapshot(&d.tdbf).unwrap()),
            ),
        ];
        for (kind, native, transcoded) in cases {
            prop_assert_eq!(
                native,
                transcoded,
                "kind {}: native FrameEncode must write the transcode path's exact bytes",
                kind
            );
        }
    }

    /// Differential contract #3: transcoding a whole state line
    /// JSON → binary → JSON is byte-identical to the original line
    /// (geometry included), for every kind.
    #[test]
    fn state_line_transcode_is_byte_identical(seed in 0u64..1_000_000, n in 200usize..1000) {
        use hidden_hhh::agg::transcode;
        use hidden_hhh::core::{StampedSnapshot, WireFormat};
        for (i, snap) in arbitrary_snapshots(seed, n).into_iter().enumerate() {
            let line = StampedSnapshot {
                at: Nanos::from_secs(5 + i as u64),
                start: Nanos::from_secs(i as u64),
                snapshot: snap,
            }
            .to_json()
                + "\n";
            let mut v2 = Vec::new();
            transcode(0, line.as_bytes(), &mut v2, WireFormat::Binary).expect("v1 -> v2");
            let mut back = Vec::new();
            transcode(0, v2.as_slice(), &mut back, WireFormat::Json).expect("v2 -> v1");
            prop_assert_eq!(String::from_utf8(back).unwrap(), line);
        }
    }
}

#[test]
fn exact_retract_inverts_merge_structurally() {
    let (sa, sb) = split2(&stream(4000, 99));
    let mut a = ExactHhh::new(h());
    let mut b = ExactHhh::new(h());
    HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut a, &sa);
    HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut b, &sb);
    let before = a.snapshot().unwrap().to_json();
    let mut m = a.clone();
    m.merge(&b);
    assert_ne!(m.snapshot().unwrap().to_json(), before);
    assert!(m.retract(&b), "exact detectors support retraction");
    // Structural identity, not just observational: zeroed items left
    // the map, so the wire bytes match a never-merged detector.
    assert_eq!(m.snapshot().unwrap().to_json(), before);
}

#[test]
fn retract_defaults_to_unsupported_for_lossy_summaries() {
    let mut a = SpaceSavingHhh::new(h(), 16);
    let b = a.clone();
    assert!(!a.retract(&b), "lossy summaries cannot invert merges");
}

#[test]
fn fold_rejects_mismatched_capacities() {
    let mut a = SpaceSavingHhh::new(h(), 32);
    let mut b = SpaceSavingHhh::new(h(), 64);
    HhhDetector::<Ipv4Hierarchy>::observe(&mut a, 7, 10);
    HhhDetector::<Ipv4Hierarchy>::observe(&mut b, 7, 10);
    let hier = h();
    let mut restored =
        RestoredDetector::from_snapshot(&hier, &a.snapshot().unwrap()).expect("restores");
    let err = restored.fold(&hier, &b.snapshot().unwrap()).unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch(_)), "got {err:?}");
}

#[test]
fn fold_rejects_mismatched_bucket_counts() {
    let mut a = MvPipeHhh::new(h(), 32);
    let mut b = MvPipeHhh::new(h(), 64);
    HhhDetector::<Ipv4Hierarchy>::observe(&mut a, 7, 10);
    HhhDetector::<Ipv4Hierarchy>::observe(&mut b, 7, 10);
    let hier = h();
    let mut restored =
        RestoredDetector::from_snapshot(&hier, &a.snapshot().unwrap()).expect("restores");
    let err = restored.fold(&hier, &b.snapshot().unwrap()).unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch(_)), "got {err:?}");
}

#[test]
fn fold_rejects_mismatched_kinds() {
    let mut a = ExactHhh::new(h());
    let mut b = SpaceSavingHhh::new(h(), 64);
    HhhDetector::<Ipv4Hierarchy>::observe(&mut a, 7, 10);
    HhhDetector::<Ipv4Hierarchy>::observe(&mut b, 7, 10);
    let hier = h();
    let mut restored =
        RestoredDetector::from_snapshot(&hier, &a.snapshot().unwrap()).expect("restores");
    let err = restored.fold(&hier, &b.snapshot().unwrap()).unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch(_)), "got {err:?}");
}

#[test]
fn unknown_kind_is_a_typed_error() {
    let hier = h();
    let snap = DetectorSnapshot { kind: "hashpipe".into(), total: 1, state_json: "{}".into() };
    let err = RestoredDetector::from_snapshot(&hier, &snap).unwrap_err();
    assert_eq!(err, SnapshotError::Kind("hashpipe".into()));
}

#[test]
fn hostile_wire_capacity_is_a_typed_error_not_an_abort() {
    // A corrupt line must never drive a pathological allocation.
    let hier = h();
    let line =
        "{\"v\":1,\"kind\":\"ss-hhh\",\"total\":0,\"state\":{\"capacity\":4611686018427387904,\
                \"levels\":[]}}";
    let snap = DetectorSnapshot::from_json(line).expect("envelope parses");
    let err = RestoredDetector::from_snapshot(&hier, &snap).unwrap_err();
    assert!(matches!(err, SnapshotError::Invalid { field: "capacity", .. }), "got {err:?}");

    let line = "{\"v\":1,\"kind\":\"tdbf-hhh\",\"total\":0,\"state\":{\"cells_per_level\":\
                1152921504606846976,\"hashes\":4,\"half_life_ns\":1000000000,\
                \"candidates_per_level\":8,\"admit_fraction\":0.001,\"seed\":1,\"observed\":0,\
                \"total\":[0.0,0],\"filters\":[],\"candidates\":[]}}";
    let snap = DetectorSnapshot::from_json(line).expect("envelope parses");
    let err = RestoredDetector::from_snapshot(&hier, &snap).unwrap_err();
    assert!(matches!(err, SnapshotError::Invalid { .. }), "got {err:?}");
}

#[test]
fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
    use hidden_hhh::core::snapshot::json::Json;
    let bomb = "[".repeat(100_000);
    let err = Json::parse(&bomb).unwrap_err();
    assert!(matches!(err, SnapshotError::Parse { .. }), "got {err:?}");
}

#[test]
#[should_panic(expected = "grouped by report point")]
fn fold_snapshots_rejects_out_of_order_streams() {
    use hidden_hhh::core::{StampedSnapshot, WireSnapshot};
    use hidden_hhh::window::{FoldSnapshots, Pipeline};
    let snap = |at_secs: u64, items: &[(u32, u64)]| {
        let mut d = ExactHhh::new(h());
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut d, items);
        WireSnapshot::Json(StampedSnapshot {
            at: Nanos::from_secs(at_secs),
            start: Nanos::from_secs(at_secs),
            snapshot: d.snapshot().unwrap(),
        })
    };
    // Concatenated shard streams: at goes 1, 2, then back to 1 —
    // folding this as-is would report per-shard numbers as "merged".
    let snaps = vec![snap(1, &[(7, 10)]), snap(2, &[(7, 5)]), snap(1, &[(9, 3)])];
    let hier = h();
    let _ = Pipeline::new(snaps.into_iter())
        .engine(FoldSnapshots::new(&hier, &[Threshold::percent(1.0)]))
        .collect()
        .run();
}

#[test]
fn fold_snapshots_handles_two_kinds_side_by_side() {
    use hidden_hhh::core::{StampedSnapshot, WireSnapshot};
    use hidden_hhh::window::{FoldSnapshots, Pipeline};
    // One operator process running two detector kinds writes both
    // state lines per report point — each kind folds and reports
    // separately, the same grouping hhh-agg applies.
    let exact_snap = |at_secs: u64, items: &[(u32, u64)]| {
        let mut d = ExactHhh::new(h());
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut d, items);
        WireSnapshot::Json(StampedSnapshot {
            at: Nanos::from_secs(at_secs),
            start: Nanos::from_secs(at_secs),
            snapshot: d.snapshot().unwrap(),
        })
    };
    let ss_snap = |at_secs: u64, items: &[(u32, u64)]| {
        let mut d = SpaceSavingHhh::new(h(), 64);
        HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut d, items);
        WireSnapshot::Json(StampedSnapshot {
            at: Nanos::from_secs(at_secs),
            start: Nanos::from_secs(at_secs),
            snapshot: d.snapshot().unwrap(),
        })
    };
    let snaps = vec![
        exact_snap(1, &[(7, 10)]),
        ss_snap(1, &[(7, 10)]),
        exact_snap(2, &[(9, 4)]),
        ss_snap(2, &[(9, 4)]),
    ];
    let hier = h();
    let reports = Pipeline::new(snaps.into_iter())
        .engine(FoldSnapshots::new(&hier, &[Threshold::percent(1.0)]))
        .collect()
        .run();
    // One series (one threshold), two kinds × two report points, with
    // per-kind report-point ordinals (the numbering hhh-agg renders).
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].len(), 4);
    assert_eq!((reports[0][0].total, reports[0][0].index), (10, 0), "exact at t=1");
    assert_eq!((reports[0][1].total, reports[0][1].index), (10, 0), "ss-hhh at t=1");
    assert_eq!((reports[0][2].total, reports[0][2].index), (4, 1), "exact at t=2");
    assert_eq!((reports[0][3].total, reports[0][3].index), (4, 1), "ss-hhh at t=2");
}
