//! Distributed-aggregation acceptance: folding K per-shard snapshot
//! streams with `hhh-agg` reproduces the single-process run — the
//! PR's closing contract, driven through the same library entry points
//! the `distagg` binary and the CI cross-process smoke job use.
//!
//! Two layers of checks per `(kind, K)`:
//!
//! * the folded state re-serializes **byte-identically** to the merged
//!   state an in-process K-shard pipeline emits at every report point
//!   (all five kinds — shard states are deterministic functions of
//!   their sub-streams and folds replay the same merges);
//! * the merged reports agree with the **unsharded** single-process
//!   run: identically for `exact` (lossless merges), within the
//!   documented merge-error bounds for the approximate kinds.
//!
//! The full 1.36M-packet acceptance trace runs here for `exact` at
//! K = 4 (the golden the CI smoke job also diffs); all five kinds run
//! on a shorter trace in debug-friendly time, and the release-mode CI
//! job (`distagg run smoke`) re-checks all five on the full trace.

use hhh_experiments::distagg::{
    distagg_trace, fold_shard_streams, run_distagg_on, shard_jsonl_on, Kind, KINDS,
};
use hhh_experiments::Scale;
use hhh_trace::{scenarios, TraceGenerator};
use hidden_hhh::prelude::*;

#[test]
fn exact_full_trace_k4_reproduces_single_process() {
    let trace = distagg_trace(Scale::Smoke); // day 0, 60 s, ≥ 1.36M packets
    assert!(trace.len() >= 1_000_000, "trace too small: {}", trace.len());
    let horizon = Scale::Smoke.compare_duration();
    let rows = run_distagg_on(trace, horizon, &[4], &[Kind::Exact]);
    assert_eq!(rows.len(), 1);
    let r = &rows[0];
    assert_eq!(r.points, (horizon / TimeSpan::from_secs(5)) as usize);
    assert_eq!(r.folded, r.points * 4, "one snapshot per shard per report point");
    assert!(r.state_identical, "folded state must equal the in-process merged state");
    assert!(r.reports_identical, "exact merged reports must equal the single-process run");
    assert_eq!(r.jaccard_vs_single, 1.0);
}

#[test]
fn all_kinds_fold_to_the_inprocess_state_at_k3() {
    // A shorter day trace keeps all five kinds debug-affordable; the
    // CI smoke job re-runs the full trace in release.
    let horizon = TimeSpan::from_secs(15);
    let trace: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();
    let rows = run_distagg_on(&trace, horizon, &[1, 3], &KINDS);
    assert_eq!(rows.len(), KINDS.len() * 2);
    for r in &rows {
        assert!(
            r.state_identical,
            "{} at K={} folded state diverged from the in-process merge",
            r.detector, r.shards
        );
        if r.shards == 1 {
            // One shard: the "distributed" run *is* the single-process
            // run behind a wire round-trip.
            assert_eq!(
                r.jaccard_vs_single, 1.0,
                "{} at K=1 must reproduce the single process exactly",
                r.detector
            );
        }
        match r.detector {
            "exact" => {
                assert!(r.reports_identical, "exact reports diverged at K={}", r.shards);
            }
            "ss-hhh" => assert!(
                r.jaccard_vs_single >= 0.9,
                "ss-hhh K={} jaccard {}",
                r.shards,
                r.jaccard_vs_single
            ),
            "rhhh" => assert!(
                r.jaccard_vs_single >= 0.5,
                "rhhh K={} jaccard {}",
                r.shards,
                r.jaccard_vs_single
            ),
            "mvpipe" => assert!(
                r.jaccard_vs_single >= 0.5,
                "mvpipe K={} jaccard {}",
                r.shards,
                r.jaccard_vs_single
            ),
            "tdbf-hhh" => assert!(
                r.jaccard_vs_single >= 0.9,
                "tdbf-hhh K={} jaccard {}",
                r.shards,
                r.jaccard_vs_single
            ),
            other => panic!("unexpected detector {other}"),
        }
    }
}

#[test]
fn mvpipe_folds_bitexactly_at_k1_and_k4_in_both_wire_formats() {
    // PR-8 acceptance: the MVPipe cross-process fold must be
    // byte-identical to the in-process sharded run at K ∈ {1, 4}, over
    // the v1 JSONL fold *and* the native v2 socket fold. (The CI
    // distagg smoke re-checks the full 1.36M-packet trace in release.)
    use hhh_experiments::distagg::run_socket_on;
    let horizon = TimeSpan::from_secs(15);
    let trace: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();

    let rows = run_distagg_on(&trace, horizon, &[1, 4], &[Kind::MvPipe]);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(
            r.state_identical,
            "mvpipe v1 fold diverged from the in-process merge at K={}",
            r.shards
        );
    }

    for k in [1usize, 4] {
        let rows = run_socket_on(&trace, horizon, &[k], &[Kind::MvPipe]);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].state_identical,
            "mvpipe v2 socket fold diverged from the in-process merge at K={k}"
        );
        assert!(rows[0].socket_eq_file, "mvpipe socket fold output diverged from the file fold");
    }
}

#[test]
fn socket_fold_is_byte_identical_to_the_file_fold_for_all_kinds() {
    // The PR-5 transport contract on a debug-affordable trace: K
    // concurrent shard pipelines streaming natively encoded v2 frames
    // over localhost TCP must fold to output byte-identical to the
    // file-based fold and state-identical to the in-process sharded
    // run. (`distagg socket smoke` and the CI socket smoke re-check
    // the full 1.36M-packet trace in release.)
    use hhh_experiments::distagg::run_socket_on;
    let horizon = TimeSpan::from_secs(15);
    let trace: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();
    let rows = run_socket_on(&trace, horizon, &[3], &KINDS);
    assert_eq!(rows.len(), KINDS.len());
    for r in &rows {
        assert!(
            r.socket_eq_file,
            "{} at K={}: socket fold output diverged from the file fold",
            r.detector, r.shards
        );
        assert!(
            r.state_identical,
            "{} at K={}: socket-folded state diverged from the in-process merge",
            r.detector, r.shards
        );
        assert_eq!(r.folded, r.points * r.shards, "one snapshot per connection per point");
    }
}

#[test]
fn folded_reports_reconstruct_exact_window_bounds() {
    // The v1 gap this PR closes: state records used to carry only
    // `at_ns`, so a folded report could not know its window start.
    // With `start_ns` in both formats, the aggregator's report lines
    // must carry exactly the window bounds the in-process run printed.
    use hhh_agg::fold_streams;
    use hhh_core::WireFormat;
    use hhh_experiments::distagg::{distagg_threshold, shard_stream_on, single_process_reports_on};

    let horizon = TimeSpan::from_secs(15);
    let trace: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();
    let inproc = single_process_reports_on(Kind::Exact, &trace, horizon);

    for format in [WireFormat::Json, WireFormat::Binary] {
        let streams: Vec<Vec<u8>> =
            (0..2).map(|i| shard_stream_on(Kind::Exact, &trace, horizon, 2, i, format)).collect();
        let parsed: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(i, b)| hhh_agg::read_stream(i, b.as_slice()).expect("stream parses"))
            .collect();
        let points = fold_streams(&Ipv4Hierarchy::bytes(), &parsed).expect("folds");
        assert_eq!(points.len(), inproc.len());
        for (i, (p, reference)) in points.iter().zip(&inproc).enumerate() {
            let merged = p.report(i as u64, distagg_threshold());
            assert_eq!(
                (merged.start, merged.end),
                (reference.start, reference.end),
                "{format:?}: folded window bounds diverged at point {i}"
            );
        }
    }
}

#[test]
fn shard_streams_are_deterministic() {
    // The cross-process smoke diffs against a committed golden, so a
    // shard's bytes must never depend on run order or environment.
    let horizon = TimeSpan::from_secs(10);
    let trace: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();
    let a = shard_jsonl_on(Kind::Rhhh, &trace, horizon, 2, 0);
    let b = shard_jsonl_on(Kind::Rhhh, &trace, horizon, 2, 0);
    assert_eq!(a, b);
}

#[test]
fn aggregator_output_feeds_another_tier() {
    // Two-level aggregation: fold shards 0+1 and 2+3 separately with
    // --emit-state semantics, then fold the two tier-1 outputs — the
    // result must equal the flat 4-way fold.
    let horizon = TimeSpan::from_secs(10);
    let trace: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();
    let streams: Vec<Vec<u8>> =
        (0..4).map(|i| shard_jsonl_on(Kind::Exact, &trace, horizon, 4, i)).collect();

    let flat = fold_shard_streams(&streams).expect("flat fold");

    let tier = |subset: &[Vec<u8>]| -> Vec<u8> {
        let points = fold_shard_streams(subset).expect("tier fold");
        let mut out = Vec::new();
        for p in &points {
            let stamped = hidden_hhh::core::StampedSnapshot {
                at: p.at,
                start: p.start,
                snapshot: p.detector.snapshot(),
            };
            out.extend_from_slice(stamped.to_json().as_bytes());
            out.push(b'\n');
        }
        out
    };
    let left = tier(&streams[..2]);
    let right = tier(&streams[2..]);
    let tiered = fold_shard_streams(&[left, right]).expect("tier-2 fold");

    assert_eq!(flat.len(), tiered.len());
    for (f, t) in flat.iter().zip(&tiered) {
        assert_eq!(f.at, t.at);
        assert_eq!(
            f.detector.snapshot().to_json(),
            t.detector.snapshot().to_json(),
            "tiered aggregation diverged at {}",
            f.at
        );
    }
}
