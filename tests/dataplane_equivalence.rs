//! The match-action programs must behave like their unconstrained
//! reference implementations on realistic traffic — the evidence that
//! the pipeline model's constraints don't change the algorithms.

use hidden_hhh::dataplane::programs::{DpHashPipe, DpTdbf};
use hidden_hhh::prelude::*;

fn traffic(secs: u64) -> Vec<PacketRecord> {
    TraceGenerator::new(scenarios::day_trace(2, TimeSpan::from_secs(secs)), 0xDA7A).collect()
}

#[test]
fn hashpipe_identical_on_real_traffic() {
    let pkts = traffic(10);
    let mut dp = DpHashPipe::new(4, 2048, 9);
    let mut reference = HashPipe::<u32>::new(4, 2048, 9);
    for p in &pkts {
        dp.observe(p.src, p.wire_len as u64).expect("discipline violation");
        reference.observe(p.src, p.wire_len as u64);
    }
    // Spot-check every distinct source in the trace.
    let sources: std::collections::HashSet<u32> = pkts.iter().map(|p| p.src).collect();
    for s in sources {
        assert_eq!(dp.estimate(s), reference.estimate(&s), "divergence for {s:#x}");
    }
    assert_eq!(dp.heavy_hitters(100_000), reference.heavy_hitters(100_000));
}

#[test]
fn dp_tdbf_tracks_reference_on_real_traffic() {
    let pkts = traffic(10);
    let rate = DecayRate::from_half_life(TimeSpan::from_secs(5));
    let mut dp = DpTdbf::new(8192, 4, rate, TimeSpan::from_millis(1), 9);
    let mut reference = OnDemandTdbf::<u32>::new(8192, 4, rate, 9);
    let mut last = Nanos::ZERO;
    for p in &pkts {
        dp.insert(p.src, p.wire_len as u64, p.ts).expect("discipline violation");
        reference.insert(&p.src, p.wire_len as f64, p.ts);
        last = p.ts;
    }
    // Every source whose decayed estimate is non-trivial must agree
    // within the integer quantization error.
    let sources: std::collections::HashSet<u32> = pkts.iter().map(|p| p.src).collect();
    let mut checked = 0;
    for s in sources {
        let float = reference.estimate(&s, last);
        if float > 10_000.0 {
            let fixed = dp.estimate(s, last);
            let rel = (fixed - float).abs() / float;
            assert!(rel < 0.05, "source {s:#x}: fixed {fixed} vs float {float} (rel {rel})");
            checked += 1;
        }
    }
    assert!(checked > 10, "too few non-trivial sources to be a meaningful check");
}

#[test]
fn pipeline_discipline_never_violated_on_long_runs() {
    // 300k packets of real traffic; any feed-forward or double-access
    // violation is a program bug and must surface as Err, not silently.
    let pkts = traffic(15);
    let mut dp = DpHashPipe::new(6, 512, 3);
    let rate = DecayRate::from_half_life(TimeSpan::from_secs(2));
    let mut bf = DpTdbf::new(1024, 5, rate, TimeSpan::from_millis(4), 3);
    for p in &pkts {
        dp.observe(p.src, p.wire_len as u64).expect("hashpipe violated the discipline");
        bf.insert(p.src, p.wire_len as u64, p.ts).expect("tdbf violated the discipline");
    }
    let r = dp.resources();
    assert!(r.max_register_accesses <= 6);
    let r = bf.resources();
    assert!(r.max_register_accesses <= 5);
}

#[test]
fn resource_reports_scale_with_configuration() {
    let small = DpHashPipe::new(2, 128, 0).resources();
    let large = DpHashPipe::new(8, 4096, 0).resources();
    assert!(large.sram_bits > small.sram_bits * 50);
    assert_eq!(small.stages, 2);
    assert_eq!(large.stages, 8);
    assert!(large.sram_kib() > small.sram_kib());
}
