//! Shard-then-merge equals (or tracks) the single detector: the
//! correctness contract of the batched, mergeable ingestion pipeline,
//! checked on realistic generated traffic.
//!
//! * Exact detectors: *identical* — totals, HHH sets, estimates — for
//!   any shard count, including on a million-packet trace.
//! * Space-Saving: perfect recall of true HHHs, estimates within the
//!   additive merge error `N/capacity`.
//! * RHHH: every comfortable (≥ 2× threshold) true HHH survives the
//!   shard/merge path.

use hidden_hhh::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

fn day(day_idx: usize, secs: u64, seed: u64) -> Vec<PacketRecord> {
    TraceGenerator::new(scenarios::day_trace(day_idx, TimeSpan::from_secs(secs)), seed).collect()
}

#[test]
fn exact_shard_merge_identical_on_million_packet_trace() {
    // The acceptance case: K = 4 shards over ≥ 1M packets, reports
    // bit-identical to the single-detector disjoint driver.
    let pkts = day(0, 60, scenarios::day_seed(0));
    assert!(pkts.len() >= 1_000_000, "trace too small: {} packets", pkts.len());
    let h = Ipv4Hierarchy::bytes();
    let horizon = TimeSpan::from_secs(60);
    let window = TimeSpan::from_secs(5);
    let thresholds = [Threshold::percent(1.0), Threshold::percent(5.0)];

    let mut single = ExactHhh::new(h);
    let reference = Pipeline::new(pkts.iter().copied())
        .engine(Disjoint::new(&mut single, horizon, window, &thresholds, |p| p.src))
        .collect()
        .run();
    let detectors: Vec<_> = (0..4).map(|_| ExactHhh::new(h)).collect();
    let sharded = Pipeline::new(pkts.iter().copied())
        .engine(
            ShardedDisjoint::new(detectors, horizon, window, &thresholds, |p| p.src).batch(8192),
        )
        .collect()
        .run();
    assert_eq!(reference, sharded, "sharded exact run must be lossless");
}

#[test]
fn ss_hhh_shard_merge_recall_and_error_within_bounds() {
    let pkts = day(1, 20, scenarios::day_seed(1));
    let h = Ipv4Hierarchy::bytes();
    let t = Threshold::percent(2.0);
    let capacity = 512;

    let mut exact = ExactHhh::new(h);
    for p in &pkts {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut exact, p.src, p.wire_len as u64);
    }
    let truth = exact.report(t);
    let n = HhhDetector::<Ipv4Hierarchy>::total(&exact);

    let merged = with_shards((0..4).map(|_| SpaceSavingHhh::new(h, capacity)).collect(), |pool| {
        let batch: Vec<(u32, u64)> = pkts.iter().map(|p| (p.src, p.wire_len as u64)).collect();
        for chunk in batch.chunks(8192) {
            pool.observe_batch(chunk);
        }
        pool.merged_snapshot()
    });
    assert_eq!(merged.total(), n);
    let found: HashSet<_> = merged.report(t).into_iter().map(|r| r.prefix).collect();
    for want in &truth {
        assert!(
            found.contains(&want.prefix),
            "shard/merge lost true HHH {} (discounted {})",
            want.prefix,
            want.discounted
        );
    }
    // Estimates stay within the additive merge error: each of the
    // log-many pairwise merges adds at most min_a + min_b ≤ N_parts /
    // capacity, so the total overshoot beyond plain Space-Saving error
    // is bounded by N / capacity (doubled here for slack).
    let eps = 2 * n / capacity as u64;
    for r in merged.report(t) {
        let true_count = exact.prefix_count(r.prefix);
        assert!(
            r.estimate >= true_count,
            "merged estimate {} understates truth {} for {}",
            r.estimate,
            true_count,
            r.prefix
        );
        assert!(
            r.estimate <= true_count + 2 * eps,
            "merged estimate {} overshoots truth {} beyond ε for {}",
            r.estimate,
            true_count,
            r.prefix
        );
    }
}

#[test]
fn rhhh_shard_merge_finds_comfortable_hhhs() {
    let pkts = day(2, 20, scenarios::day_seed(2));
    let h = Ipv4Hierarchy::bytes();
    let t = Threshold::percent(2.0);

    let mut exact = ExactHhh::new(h);
    for p in &pkts {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut exact, p.src, p.wire_len as u64);
    }
    let t_abs = t.absolute(HhhDetector::<Ipv4Hierarchy>::total(&exact));

    let merged =
        with_shards((0..4).map(|s| Rhhh::new(h, 512, 0xACE0 + s as u64)).collect(), |pool| {
            let batch: Vec<(u32, u64)> = pkts.iter().map(|p| (p.src, p.wire_len as u64)).collect();
            for chunk in batch.chunks(8192) {
                pool.observe_batch(chunk);
            }
            pool.merged_snapshot()
        });
    let found: HashSet<_> = merged.report(t).into_iter().map(|r| r.prefix).collect();
    for want in exact.report(t).iter().filter(|r| r.discounted >= 2 * t_abs) {
        assert!(
            found.contains(&want.prefix),
            "sharded RHHH missed comfortable HHH {} (discounted {} vs T {})",
            want.prefix,
            want.discounted,
            t_abs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for *any* generated trace, seed, shard count and
    /// batch size, the exact detector's shard-then-merge pipeline is
    /// indistinguishable from the single detector.
    #[test]
    fn exact_shard_merge_identical_on_any_trace(
        seed in 0u64..1_000_000,
        day_idx in 0usize..4,
        shards in 1usize..8,
        batch in prop::sample::select(vec![64usize, 1021, 8192]),
    ) {
        let pkts = day(day_idx, 4, seed);
        let h = Ipv4Hierarchy::bytes();
        let horizon = TimeSpan::from_secs(4);
        let window = TimeSpan::from_secs(2);
        let thresholds = [Threshold::percent(5.0)];
        let mut single = ExactHhh::new(h);
        let reference = Pipeline::new(pkts.iter().copied())
            .engine(Disjoint::new(&mut single, horizon, window, &thresholds, |p| p.src))
            .collect().run();
        let detectors: Vec<_> = (0..shards).map(|_| ExactHhh::new(h)).collect();
        let sharded = Pipeline::new(pkts.iter().copied())
            .engine(ShardedDisjoint::new(detectors, horizon, window, &thresholds, |p| p.src)
                .batch(batch))
            .collect().run();
        prop_assert_eq!(reference, sharded);
    }
}
