//! Transport-layer contract: **a frame on a socket (or channel) is the
//! same bytes as a frame in a file.**
//!
//! * the identical pipeline run writes the identical frame sequence
//!   through `SnapshotSink` (bytes), `TransportSink` over an
//!   in-process channel, and `TransportSink` over localhost TCP;
//! * the path-based `SnapshotSink::create` / `SnapshotSource::open`
//!   wrappers round-trip through a real file;
//! * torn/short streams fail with typed errors — the byte-mutation
//!   fuzz from the codec corpus, extended to the transport framing:
//!   mutated or truncated frame streams never panic, hang, or drive
//!   unbounded allocations.

use hidden_hhh::agg::fold_streams;
use hidden_hhh::core::snapshot::binary::SnapshotFrame;
use hidden_hhh::core::{DetectorSnapshot, WireFormat, WireSnapshot};
use hidden_hhh::prelude::*;
use hidden_hhh::window::{
    mem_transport, FileTransport, FoldSnapshots, FrameRead, FrameWrite, SnapshotSink,
    SnapshotSource, TcpFrameListener, TcpTransport, TransportError, TransportSink, TransportSource,
};
use proptest::prelude::*;

fn h() -> Ipv4Hierarchy {
    Ipv4Hierarchy::bytes()
}

fn trace(secs: u64) -> Vec<PacketRecord> {
    let horizon = TimeSpan::from_secs(secs);
    TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect()
}

/// The reference: the pipeline's binary snapshot stream as
/// `SnapshotSink` writes it to a byte buffer (file semantics).
fn file_bytes(packets: &[PacketRecord], horizon: TimeSpan) -> Vec<u8> {
    let (bytes, err) = Pipeline::new(packets.iter().copied())
        .engine(ShardedDisjoint::new(
            vec![ExactHhh::new(h()); 2],
            horizon,
            TimeSpan::from_secs(5),
            &[Threshold::percent(1.0)],
            |p| p.src,
        ))
        .sink(SnapshotSink::binary(Vec::new()))
        .run();
    assert!(err.is_none());
    bytes
}

/// The same pipeline through an arbitrary frame transport.
fn run_through<T: FrameWrite>(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    transport: T,
) -> (T, Option<TransportError>) {
    Pipeline::new(packets.iter().copied())
        .engine(ShardedDisjoint::new(
            vec![ExactHhh::new(h()); 2],
            horizon,
            TimeSpan::from_secs(5),
            &[Threshold::percent(1.0)],
            |p| p.src,
        ))
        .sink(TransportSink::new(transport))
        .run()
}

#[test]
fn channel_transport_carries_the_file_bytes() {
    let horizon = TimeSpan::from_secs(15);
    let packets = trace(15);
    let reference = file_bytes(&packets, horizon);

    let (writer, mut reader) = mem_transport(8);
    let producer = std::thread::spawn({
        let packets = packets.clone();
        move || {
            let (_w, err) = run_through(&packets, horizon, writer);
            assert!(err.is_none(), "{err:?}");
        }
    });
    let mut streamed = Vec::new();
    while let Some(frame) = reader.read_frame().expect("channel frames decode") {
        streamed.extend_from_slice(&frame.encode());
    }
    producer.join().unwrap();
    assert_eq!(streamed, reference, "a frame on a channel is the same bytes as in a file");
}

#[test]
fn tcp_transport_carries_the_file_bytes() {
    let horizon = TimeSpan::from_secs(15);
    let packets = trace(15);
    let reference = file_bytes(&packets, horizon);

    let listener = TcpFrameListener::bind("127.0.0.1:0")
        .unwrap()
        .with_timeout(std::time::Duration::from_secs(120));
    let addr = listener.local_addr().unwrap().to_string();
    let producer = std::thread::spawn({
        let packets = packets.clone();
        move || {
            let transport = TcpTransport::connect(addr).with_hello(0, "pipeline");
            let (_t, err) = run_through(&packets, horizon, transport);
            assert!(err.is_none(), "{err:?}");
        }
    });
    let streams = listener.collect_streams(1).unwrap();
    producer.join().unwrap();
    assert_eq!(streams.len(), 1);
    let streamed: Vec<u8> = streams[0].frames.iter().flat_map(SnapshotFrame::encode).collect();
    assert_eq!(streamed, reference, "a frame on a socket is the same bytes as in a file");
}

#[test]
fn fold_snapshots_consumes_a_transport_source() {
    // Snapshots as pipeline input, off a live channel instead of a
    // file: the folded reports must equal folding the file stream.
    let horizon = TimeSpan::from_secs(15);
    let packets = trace(15);
    let reference_bytes = file_bytes(&packets, horizon);
    let hier = h();
    let mut file_source = SnapshotSource::new(reference_bytes.as_slice());
    let expected = Pipeline::new(&mut file_source)
        .engine(FoldSnapshots::new(&hier, &[Threshold::percent(1.0)]))
        .collect()
        .run();
    assert!(file_source.error().is_none());

    let (writer, reader) = mem_transport(8);
    let producer = std::thread::spawn({
        let packets = packets.clone();
        move || {
            let (_w, err) = run_through(&packets, horizon, writer);
            assert!(err.is_none(), "{err:?}");
        }
    });
    let mut source = TransportSource::new(reader);
    let folded = Pipeline::new(&mut source)
        .engine(FoldSnapshots::new(&hier, &[Threshold::percent(1.0)]))
        .collect()
        .run();
    producer.join().unwrap();
    assert!(source.error().is_none(), "{:?}", source.error());
    assert_eq!(folded, expected);
}

#[test]
fn path_constructors_roundtrip_through_a_real_file() {
    let horizon = TimeSpan::from_secs(10);
    let packets = trace(10);
    let dir = std::env::temp_dir().join(format!("hhh-transport-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.hhf2");

    let sink = SnapshotSink::create(&path, WireFormat::Binary).unwrap();
    let (_out, err) = Pipeline::new(packets.iter().copied())
        .engine(ShardedDisjoint::new(
            vec![ExactHhh::new(h()); 2],
            horizon,
            TimeSpan::from_secs(5),
            &[Threshold::percent(1.0)],
            |p| p.src,
        ))
        .sink(sink)
        .run();
    assert!(err.is_none(), "{err:?}");

    let mut source = SnapshotSource::open(&path).unwrap();
    let snaps: Vec<WireSnapshot> = (&mut source).collect();
    assert!(source.error().is_none(), "{:?}", source.error());
    assert_eq!(snaps.len(), 2, "one state per 5 s window");
    let points = fold_streams(&h(), &[snaps]).unwrap();
    assert_eq!(points.len(), 2);

    // And the FileTransport reader sees the identical frames.
    let mut reader = FileTransport::open(&path).unwrap();
    let mut frames = 0usize;
    while reader.read_frame().expect("file frames decode").is_some() {
        frames += 1;
    }
    assert!(frames >= 4, "reports + states all frame-decode, got {frames}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A small valid frame stream to mutate: two state frames and a report
/// frame, as a writer would produce.
fn valid_stream() -> Vec<u8> {
    let snap = |total: u64| DetectorSnapshot {
        kind: "exact".into(),
        total,
        state_json: format!("{{\"counts\":[[\"7\",{total}]]}}"),
    };
    let mut out = Vec::new();
    out.extend_from_slice(&snap(10).to_frame(Nanos::ZERO, Nanos::from_secs(1)).unwrap().encode());
    out.extend_from_slice(
        &SnapshotFrame::report(
            "{\"type\":\"report\",\"series\":0,\"index\":0,\"start_ns\":0,\"end_ns\":1,\
             \"total\":10,\"hhhs\":[]}",
            Nanos::ZERO,
            Nanos::from_secs(1),
            10,
        )
        .encode(),
    );
    out.extend_from_slice(
        &snap(20).to_frame(Nanos::from_secs(1), Nanos::from_secs(2)).unwrap().encode(),
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte-mutation fuzz, extended to the transport framing: any
    /// single-byte corruption of a valid frame stream read through a
    /// transport terminates with frames and/or one typed error —
    /// never a panic or a hang.
    #[test]
    fn mutated_streams_fail_typed_through_transports(
        pos in 0usize..1024,
        byte in 0u8..=255,
    ) {
        let mut bytes = valid_stream();
        let pos = pos % bytes.len();
        bytes[pos] ^= byte;
        let mut reader = FileTransport::new(std::io::Cursor::new(bytes));
        let mut frames = 0usize;
        loop {
            match reader.read_frame() {
                Ok(Some(_)) => frames += 1,
                Ok(None) => break,
                Err(e) => {
                    // Typed, displayable, and (for framing errors)
                    // chained to the SnapshotError.
                    let _ = e.to_string();
                    prop_assert!(matches!(
                        e,
                        TransportError::Frame(_) | TransportError::Io { .. }
                    ));
                    break;
                }
            }
            prop_assert!(frames <= 3, "a 3-frame stream cannot yield more frames");
        }
    }

    /// Truncation fuzz: cutting a valid stream anywhere yields whole
    /// frames up to the cut and then a clean end or one typed
    /// truncation error.
    #[test]
    fn truncated_streams_fail_typed_through_transports(cut in 0usize..1024) {
        let mut bytes = valid_stream();
        let cut = cut % (bytes.len() + 1);
        let at_boundary = {
            // Frame boundaries of the 3-frame stream.
            let mut ends = vec![0usize];
            let mut off = 0usize;
            while off < bytes.len() {
                let (_, used) = SnapshotFrame::decode(&bytes[off..]).unwrap();
                off += used;
                ends.push(off);
            }
            ends.contains(&cut)
        };
        bytes.truncate(cut);
        let mut reader = FileTransport::new(std::io::Cursor::new(bytes));
        let outcome = loop {
            match reader.read_frame() {
                Ok(Some(_)) => continue,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        if at_boundary {
            prop_assert!(outcome.is_ok(), "cut at a frame boundary is a clean end");
        } else {
            let e = outcome.expect_err("mid-frame cut must error");
            prop_assert!(
                matches!(e, TransportError::Frame(_)),
                "mid-frame cut must be a framing error, got {e:?}"
            );
        }
    }
}
