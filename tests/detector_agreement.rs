//! Cross-crate detector agreement: every approximate detector against
//! the exact oracle on realistic generated traffic.

use hidden_hhh::prelude::*;
use std::collections::HashSet;

fn day(seed: u64, secs: u64) -> Vec<PacketRecord> {
    TraceGenerator::new(scenarios::day_trace(1, TimeSpan::from_secs(secs)), seed).collect()
}

fn exact_report(pkts: &[PacketRecord], t: Threshold) -> Vec<HhhReport<Ipv4Prefix>> {
    let mut d = ExactHhh::new(Ipv4Hierarchy::bytes());
    for p in pkts {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, p.wire_len as u64);
    }
    d.report(t)
}

#[test]
fn ss_hhh_never_misses_a_true_hhh() {
    let pkts = day(21, 20);
    let t = Threshold::percent(2.0);
    let truth = exact_report(&pkts, t);
    let mut ss = SpaceSavingHhh::new(Ipv4Hierarchy::bytes(), 512);
    for p in &pkts {
        ss.observe(p.src, p.wire_len as u64);
    }
    let found: HashSet<_> = ss.report(t).into_iter().map(|r| r.prefix).collect();
    for want in &truth {
        assert!(
            found.contains(&want.prefix),
            "ss-hhh missed true HHH {} (discounted {})",
            want.prefix,
            want.discounted
        );
    }
}

#[test]
fn rhhh_finds_comfortable_hhhs() {
    let pkts = day(22, 20);
    let t = Threshold::percent(2.0);
    let truth = exact_report(&pkts, t);
    let t_abs = {
        let total: u64 = pkts.iter().map(|p| p.wire_len as u64).sum();
        t.absolute(total)
    };
    let mut rhhh = Rhhh::new(Ipv4Hierarchy::bytes(), 512, 77);
    for p in &pkts {
        rhhh.observe(p.src, p.wire_len as u64);
    }
    let found: HashSet<_> = rhhh.report(t).into_iter().map(|r| r.prefix).collect();
    for want in truth.iter().filter(|r| r.discounted >= 2 * t_abs) {
        assert!(
            found.contains(&want.prefix),
            "rhhh missed comfortable HHH {} (discounted {} vs T {})",
            want.prefix,
            want.discounted,
            t_abs
        );
    }
}

#[test]
fn tdbf_converges_to_windowed_answers_on_steady_traffic() {
    // On the *stable* scenario (no bursts), the windowless detector's
    // steady-state report should largely agree with a trailing exact
    // window of comparable time scale.
    let horizon = TimeSpan::from_secs(40);
    let pkts: Vec<PacketRecord> = TraceGenerator::new(scenarios::stable(horizon), 9).collect();
    let window = TimeSpan::from_secs(10);
    let t = Threshold::percent(5.0);
    let h = Ipv4Hierarchy::bytes();

    // Exact trailing window [30 s, 40 s).
    let mut oracle = ExactHhh::new(h);
    for p in pkts.iter().filter(|p| p.ts >= Nanos::from_secs(30)) {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut oracle, p.src, p.wire_len as u64);
    }
    let truth: HashSet<_> = oracle.report(t).into_iter().map(|r| r.prefix).collect();

    let mut tdbf =
        TdbfHhh::new(h, TdbfHhhConfig { half_life: window / 2, ..TdbfHhhConfig::default() });
    for p in &pkts {
        tdbf.observe(p.ts, p.src, p.wire_len as u64);
    }
    let found: HashSet<_> =
        tdbf.report_at(Nanos::ZERO + horizon, t).into_iter().map(|r| r.prefix).collect();

    let inter = truth.intersection(&found).count();
    let recall = inter as f64 / truth.len().max(1) as f64;
    assert!(
        recall >= 0.7,
        "tdbf recall {recall} vs windowed oracle (truth {truth:?}, found {found:?})"
    );
}

#[test]
fn hashpipe_and_univmon_agree_on_the_top_talker() {
    let pkts = day(23, 15);
    let total: u64 = pkts.iter().map(|p| p.wire_len as u64).sum();
    let mut exact = ExactHhh::new(Ipv4Hierarchy::bytes());
    let mut hp = HashPipe::<u32>::new(4, 512, 5);
    let mut um = UnivMonLite::<u32>::new(12, 512, 5, 32, 5);
    for p in &pkts {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut exact, p.src, p.wire_len as u64);
        hp.observe(p.src, p.wire_len as u64);
        um.observe(p.src, p.wire_len as u64);
    }
    let top = exact.heavy_hitters(Threshold::percent(3.0));
    assert!(!top.is_empty(), "trace has no 3% talker?");
    let top_key = top[0].0;
    let hp_top: HashSet<u32> = hp.heavy_hitters(total / 100).into_iter().map(|e| e.0).collect();
    let um_top: HashSet<u32> = um.heavy_hitters(total / 100).into_iter().map(|e| e.0).collect();
    assert!(hp_top.contains(&top_key), "hashpipe lost the top talker");
    assert!(um_top.contains(&top_key), "univmon lost the top talker");
}

#[test]
fn detectors_reset_cleanly_between_windows() {
    // Feeding two different windows through a reset must not leak
    // state: window 2's report from a reused detector equals a fresh
    // detector's.
    let w1 = day(24, 5);
    let w2 = day(25, 5);
    let t = Threshold::percent(5.0);
    let h = Ipv4Hierarchy::bytes();

    let mut reused = SpaceSavingHhh::new(h, 128);
    for p in &w1 {
        reused.observe(p.src, p.wire_len as u64);
    }
    let _ = reused.report(t);
    reused.reset();
    for p in &w2 {
        reused.observe(p.src, p.wire_len as u64);
    }

    let mut fresh = SpaceSavingHhh::new(h, 128);
    for p in &w2 {
        fresh.observe(p.src, p.wire_len as u64);
    }
    assert_eq!(reused.report(t), fresh.report(t), "reset leaked state");
}
