#!/usr/bin/env bash
# aggd_topology.sh — the compose-free daemon smoke topology: one
# hhh-aggd plus K aggd-shard processes on localhost, with a scripted
# kill-and-restart of shard 1 mid-stream (the docker-compose.yml
# topology, minus docker — what bare CI runs).
#
#   scripts/aggd_topology.sh
#
# Environment knobs:
#   K           shard count                      (default 3)
#   HORIZON     trace horizon in seconds         (default 60 = smoke)
#   GOLDEN      expected /hhh?kind=exact&all=1 body to diff against
#               (e.g. tests/golden/aggd_exact_k3.jsonl); unset = skip
#   BIN         directory holding the binaries   (default target/release)
#   SKIP_BUILD  non-empty = don't cargo build first
#
# Exits 0 iff: the daemon serves /healthz and /metrics, shard 1 dies
# on its --die-after fuse (exit 9), its restart resumes from the spool,
# and (with GOLDEN) the daemon's answer converges byte-exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

K=${K:-3}
HORIZON=${HORIZON:-60}
GOLDEN=${GOLDEN:-}
BIN=${BIN:-target/release}

if [[ -z "${SKIP_BUILD:-}" ]]; then
    cargo build --release -p hhh-aggd >&2
fi

TMP=$(mktemp -d)
cleanup() {
    kill "$(jobs -p)" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

# --- daemon up, ephemeral ports discovered from its announce line ----
"$BIN/hhh-aggd" --listen 127.0.0.1:0 --http 127.0.0.1:0 --retain none \
    >"$TMP/aggd.out" 2>"$TMP/aggd.err" &
for _ in $(seq 100); do
    grep -q '^listening ' "$TMP/aggd.out" 2>/dev/null && break
    sleep 0.1
done
FRAMES=$(sed -n 's/^listening frames=\([^ ]*\).*/\1/p' "$TMP/aggd.out")
HTTP=$(sed -n 's/^listening .*http=\([^ ]*\).*/\1/p' "$TMP/aggd.out")
if [[ -z "$FRAMES" || -z "$HTTP" ]]; then
    echo "aggd_topology: daemon never announced its addresses" >&2
    cat "$TMP/aggd.err" >&2
    exit 1
fi
echo "aggd_topology: daemon up (frames=$FRAMES http=$HTTP)" >&2

# GET a path, body only — curl when available, bash /dev/tcp otherwise.
http_get() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf --max-time 10 "http://$HTTP$1"
    else
        exec 3<>"/dev/tcp/${HTTP%:*}/${HTTP#*:}"
        printf 'GET %s HTTP/1.1\r\nHost: aggd\r\nConnection: close\r\n\r\n' "$1" >&3
        sed '1,/^\r$/d' <&3
        exec 3<&-
    fi
}

[[ "$(http_get /healthz)" == ok ]] || { echo "aggd_topology: /healthz failed" >&2; exit 1; }

# --- shard 1 dies on cue, mid-stream, spool journaling its frames ----
set +e
"$BIN/aggd-shard" exact "$K" 1 "$HORIZON" --connect "$FRAMES" \
    --spool "$TMP/shard1.spool" --die-after 3
rc=$?
set -e
if [[ $rc -ne 9 ]]; then
    echo "aggd_topology: shard 1 should die with exit 9, got $rc" >&2
    exit 1
fi
echo "aggd_topology: shard 1 died on cue, spool at $TMP/shard1.spool" >&2

# --- every other shard streams to completion, concurrently -----------
pids=()
for i in $(seq 0 $((K - 1))); do
    [[ $i -eq 1 ]] && continue
    "$BIN/aggd-shard" exact "$K" "$i" "$HORIZON" --connect "$FRAMES" &
    pids+=($!)
done
for p in "${pids[@]}"; do
    wait "$p"
done

# --- the dead shard restarts and resumes from its spool --------------
"$BIN/aggd-shard" exact "$K" 1 "$HORIZON" --connect "$FRAMES" --spool "$TMP/shard1.spool"
echo "aggd_topology: shard 1 restarted and resumed" >&2

# --- scrape: the metric families the daemon promises must be there ---
http_get /metrics >"$TMP/metrics.txt"
for family in aggd_frames_per_second aggd_fold_duration_seconds aggd_stream_lag_seconds \
    aggd_connected_shards aggd_stream_delivered; do
    grep -q "^$family" "$TMP/metrics.txt" || {
        echo "aggd_topology: /metrics is missing $family" >&2
        exit 1
    }
done
grep -q '^aggd_gaps_total 0$' "$TMP/metrics.txt" || {
    echo "aggd_topology: a resume was refused (aggd_gaps_total != 0)" >&2
    exit 1
}

# --- the payoff: the merged answer is byte-identical to the golden ---
if [[ -n "$GOLDEN" ]]; then
    for _ in $(seq 300); do
        http_get "/hhh?kind=exact&all=1" >"$TMP/answer.jsonl" || true
        if cmp -s "$TMP/answer.jsonl" "$GOLDEN"; then
            echo "aggd_topology: /hhh matches $GOLDEN byte-for-byte" >&2
            exit 0
        fi
        sleep 0.2
    done
    echo "aggd_topology: daemon answer never converged on $GOLDEN:" >&2
    diff "$GOLDEN" "$TMP/answer.jsonl" >&2 || true
    exit 1
fi
echo "aggd_topology: done (no GOLDEN set, skipped the diff)" >&2
