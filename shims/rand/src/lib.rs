//! Minimal, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`].
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic
//! across platforms and runs, which the experiment harness requires of
//! every random stream anyway. Uniform integer sampling uses the
//! widening-multiply reduction (bias ≤ 2⁻⁶⁴·span, irrelevant here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The object-safe core: a source of raw random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (so `&mut R` is itself an `Rng`, as in real `rand`).
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of its type
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (half-open or inclusive).
    /// Panics if empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A biased coin: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain.
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range shapes [`Rng::gen_range`] accepts (mirrors `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, &self)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, &self)
    }
}

/// Types samplable uniformly from a range.
pub trait UniformSample: Sized {
    /// Draw one value from a half-open `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &core::ops::Range<Self>) -> Self;

    /// Draw one value from an inclusive `range`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(
        rng: &mut R,
        range: &core::ops::RangeInclusive<Self>,
    ) -> Self;
}

#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Lemire-style widening multiply: maps a 64-bit draw into [0, span).
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: &core::ops::Range<$t>,
            ) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(below(rng, span) as $t)
            }

            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                range: &core::ops::RangeInclusive<$t>,
            ) -> $t {
                assert!(range.start() <= range.end(), "empty range in gen_range");
                let span = range.end().wrapping_sub(*range.start()) as u64;
                // span + 1 == 0 only for the full domain of a 64-bit
                // type, where the raw draw is already uniform.
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                range.start().wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &core::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range in gen_range");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }

    #[inline]
    fn sample_range_inclusive<R: RngCore + ?Sized>(
        rng: &mut R,
        range: &core::ops::RangeInclusive<f64>,
    ) -> f64 {
        assert!(range.start() <= range.end(), "empty range in gen_range");
        let u = f64::sample(rng);
        range.start() + u * (range.end() - range.start())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// Matches the role (not the bit stream) of `rand`'s `SmallRng`:
    /// fast, decent statistical quality, explicitly not cryptographic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // All-zero state is the one forbidden point of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_within_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5u32..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = SmallRng::seed_from_u64(3);
        let _ = draw(&mut r);
        let _ = r.gen_bool(0.5);
    }
}
