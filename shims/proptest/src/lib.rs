//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`Strategy`] implemented for
//! integer/float ranges, tuples, [`prop::collection::vec`],
//! [`prop::sample::select`], [`any`], and the
//! [`Strategy::prop_map`] combinator; plus [`prop_assert!`] and
//! [`prop_assert_eq!`].
//!
//! Generation only — there is **no shrinking**. A failing case panics
//! with the ordinary assertion message plus the deterministic case
//! index, which is reproducible because every test derives its RNG
//! seed from the test's own name.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Per-test configuration. Only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps offline CI quick while
        // still exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// The generator handed to strategies (splitmix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from a test's name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate one value covering the whole domain uniformly.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for a whole type domain (`any::<u32>()`).
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: core::marker::PhantomData }
}

/// Sub-strategies grouped as in the real crate (`prop::collection`,
/// `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use core::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from
        /// `size` (half-open, as in `proptest`).
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.new_value(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn new_value(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// Choose uniformly from `options`. Panics if empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }
}

/// Everything a `proptest!` test body needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }`
/// item becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( [$cfg:expr] ) => {};
    (
        [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens(limit: u64) -> impl Strategy<Value = u64> {
        (0u64..limit).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(v in 10u32..20, w in 1u8..=3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((1..=3).contains(&w));
        }

        #[test]
        fn tuples_and_vecs(ops in prop::collection::vec((0u64..5, 1u64..9), 1..50)) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for (k, w) in ops {
                prop_assert!(k < 5 && (1..9).contains(&w));
            }
        }

        #[test]
        fn mapped_strategies(v in evens(100)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn select_and_any(x in prop::sample::select(vec![1u32, 5, 9]), y in any::<u128>()) {
            prop_assert!(x == 1 || x == 5 || x == 9);
            let _ = y;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0.5f64..1.5) {
            prop_assert!((0.5..1.5).contains(&v));
        }
    }
}
