//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses: [`criterion_group!`]/[`criterion_main!`], benchmark
//! groups with [`Throughput`] and sample sizes, [`BenchmarkId`], and
//! `b.iter(..)`.
//!
//! Measurement model: each benchmark warms up briefly, then runs up to
//! `sample_size` timed samples (capped by a per-benchmark wall-clock
//! budget, since offline CI machines are small). The median sample is
//! reported. Set `BENCH_JSON=<path>` to additionally append one JSON
//! line per benchmark — the experiment harness uses this to persist
//! baselines like `BENCH_pr1.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark (samples stop early past this).
const BUDGET: Duration = Duration::from_secs(3);

/// How work is normalized when reporting throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements (e.g. packets).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The per-iteration timing harness passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly; one invocation = one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed run.
        black_box(routine());
        let start_all = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if start_all.elapsed() > BUDGET {
                break;
            }
        }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
struct Record {
    group: String,
    id: String,
    median_ns: u128,
    samples: usize,
    throughput: Option<Throughput>,
}

impl Record {
    fn per_second(&self) -> Option<(f64, &'static str)> {
        let t = self.throughput?;
        let per_iter = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let secs = self.median_ns as f64 / 1e9;
        (secs > 0.0).then(|| (per_iter.0 / secs, per_iter.1))
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), throughput: None, sample_size: 10 }
    }

    fn record(&mut self, r: Record) {
        let line = match r.per_second() {
            Some((rate, unit)) => format!(
                "{}/{}: median {:.3} ms ({} samples, {:.3e} {unit})",
                r.group,
                r.id,
                r.median_ns as f64 / 1e6,
                r.samples,
                rate
            ),
            None => format!(
                "{}/{}: median {:.3} ms ({} samples)",
                r.group,
                r.id,
                r.median_ns as f64 / 1e6,
                r.samples
            ),
        };
        println!("{line}");
        self.records.push(r);
    }

    /// Write accumulated results as JSON lines if `BENCH_JSON` is set.
    pub fn final_summary(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) else {
            eprintln!("criterion shim: cannot open {path}");
            return;
        };
        for r in &self.records {
            let thr = match r.per_second() {
                Some((rate, unit)) => format!(", \"rate\": {rate:.1}, \"unit\": \"{unit}\""),
                None => String::new(),
            };
            let _ = writeln!(
                f,
                "{{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {}, \"samples\": {}{}}}",
                r.group, r.id, r.median_ns, r.samples, thr
            );
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        self.finish_one(id, b);
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        self.finish_one(id, b);
    }

    /// Finish the group (kept for API compatibility; prints nothing).
    pub fn finish(self) {}

    fn finish_one(&mut self, id: BenchmarkId, mut b: Bencher) {
        b.samples.sort();
        let median_ns =
            if b.samples.is_empty() { 0 } else { b.samples[b.samples.len() / 2].as_nanos() };
        self.criterion.record(Record {
            group: self.name.clone(),
            id: id.id,
            median_ns,
            samples: b.samples.len(),
            throughput: self.throughput,
        });
    }
}

/// Group benchmark functions under one callable, as in `criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1000));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &x| {
            b.iter(|| (0..1000u64).map(|v| v * x).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn records_and_reports() {
        let mut c = Criterion::default();
        benches(&mut c);
        assert_eq!(c.records.len(), 2);
        assert!(c.records[0].per_second().is_some());
        assert!(c.records.iter().all(|r| r.samples >= 1));
    }
}
