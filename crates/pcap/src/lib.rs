//! # hhh-pcap
//!
//! Packet-capture I/O for the `hidden-hhh` workspace.
//!
//! The paper analyses CAIDA traces, which ship as classic libpcap files.
//! Those traces are proprietary, so this workspace generates its own
//! traffic (`hhh-trace`) — but the *pipeline* is kept honest by routing
//! it through the same file formats a real deployment would use:
//!
//! * **Classic pcap** ([`PcapReader`], [`PcapWriter`]): both byte
//!   orders, microsecond and nanosecond timestamp resolutions, Ethernet
//!   link type. pcap-ng is deliberately not supported (see DESIGN.md).
//! * **Header parsing** ([`parse`]): zero-copy views over Ethernet
//!   (with 802.1Q VLAN), IPv4, IPv6, TCP and UDP headers, condensing a
//!   frame into the [`PacketRecord`](hhh_nettypes::PacketRecord) that
//!   every detector consumes.
//! * **Native trace format** ([`NativeReader`], [`NativeWriter`]): a
//!   fixed-width binary record stream that skips header parsing
//!   entirely — what the experiment harness uses for its large
//!   synthetic traces.
//! * **Pipeline sources** ([`PcapSource`], [`NativeSource`]): chunked
//!   packet iterators over either format, pluggable straight into
//!   `hhh_window::Pipeline::new` (I/O in record bursts, torn captures
//!   end the stream early with the error kept for inspection).
//!
//! ## Example: write then read a capture
//!
//! ```
//! use hhh_nettypes::{Nanos, PacketRecord};
//! use hhh_pcap::{PcapReader, PcapWriter};
//!
//! let mut buf = Vec::new();
//! let mut w = PcapWriter::new(&mut buf).unwrap();
//! w.write_record(&PacketRecord::new(Nanos::from_millis(5), 0x0A000001, 0x0A000002, 900)).unwrap();
//! w.flush().unwrap();
//!
//! let mut r = PcapReader::new(&buf[..]).unwrap();
//! let pkt = r.next_record().unwrap().unwrap();
//! assert_eq!(pkt.src, 0x0A000001);
//! assert_eq!(pkt.wire_len, 900);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod native;
pub mod parse;
mod reader;
pub mod source;
mod writer;

pub use error::PcapError;
pub use native::{NativeReader, NativeWriter, NATIVE_MAGIC, NATIVE_RECORD_LEN};
pub use reader::{PcapReader, RawFrame, TsResolution};
pub use source::{ChunkedRecordSource, NativeSource, PcapSource, RecordReader, DEFAULT_READ_CHUNK};
pub use writer::PcapWriter;
