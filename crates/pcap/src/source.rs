//! Chunked capture-file packet sources for the `hhh-window` pipeline.
//!
//! [`PcapSource`] and [`NativeSource`] adapt the two capture readers to
//! plain `Iterator<Item = PacketRecord>`s, which is all it takes to be
//! a `hhh_window::PacketSource` (the pipeline's chunked pull protocol
//! is blanket-implemented over packet iterators):
//!
//! ```no_run
//! use hhh_pcap::PcapSource;
//! use std::fs::File;
//! use std::io::BufReader;
//!
//! let mut source = PcapSource::open(BufReader::new(File::open("trace.pcap")?))?;
//! // … Pipeline::new(&mut source).engine(…).sink(…).run()
//! // then: source.error() distinguishes a torn capture from clean EOF
//! # Ok::<(), hhh_pcap::PcapError>(())
//! ```
//!
//! Feed the pipeline `&mut source` (every `&mut Iterator` is itself an
//! iterator, hence a source) rather than moving the source in: after
//! the run, [`ChunkedRecordSource::error`] is still reachable to check
//! whether the stream ended at end-of-file or at a tear.
//!
//! Both are instances of one [`ChunkedRecordSource`] state machine:
//! records are read ahead in **chunks** (default [`DEFAULT_READ_CHUNK`])
//! so file I/O happens in bursts instead of one syscall-sized dribble
//! per packet, and errors are handled the way a streaming analysis
//! wants — the stream ends early and the error is kept for inspection
//! ([`ChunkedRecordSource::error`]) rather than panicking mid-pipeline;
//! a torn capture still yields every complete record before the tear.

use crate::error::PcapError;
use crate::native::NativeReader;
use crate::reader::PcapReader;
use hhh_nettypes::PacketRecord;
use std::collections::VecDeque;
use std::io::Read;

/// Records read per file burst by the capture sources.
pub const DEFAULT_READ_CHUNK: usize = 4096;

/// A record-at-a-time capture reader that a [`ChunkedRecordSource`] can
/// drive. Sealed: the two capture formats of this crate implement it.
pub trait RecordReader: private::Sealed {
    /// Read the next record; `Ok(None)` at clean end-of-file.
    fn next_record(&mut self) -> Result<Option<PacketRecord>, PcapError>;
}

mod private {
    pub trait Sealed {}
    impl<R: std::io::Read> Sealed for crate::reader::PcapReader<R> {}
    impl<R: std::io::Read> Sealed for crate::native::NativeReader<R> {}
}

impl<R: Read> RecordReader for PcapReader<R> {
    fn next_record(&mut self) -> Result<Option<PacketRecord>, PcapError> {
        PcapReader::next_record(self)
    }
}

impl<R: Read> RecordReader for NativeReader<R> {
    fn next_record(&mut self) -> Result<Option<PacketRecord>, PcapError> {
        NativeReader::next_record(self)
    }
}

/// A chunked packet source over a classic pcap file; see the
/// [module docs](self).
pub type PcapSource<R> = ChunkedRecordSource<PcapReader<R>>;

/// A chunked packet source over the native compact trace format; see
/// the [module docs](self).
pub type NativeSource<R> = ChunkedRecordSource<NativeReader<R>>;

/// The shared chunked read-ahead state machine behind [`PcapSource`]
/// and [`NativeSource`].
///
/// The read-ahead buffer here is in addition to the pipeline's own
/// chunk buffer (records flow through both, one `pop_front` each) — a
/// deliberate trade: keeping these sources plain `Iterator`s is what
/// lets them double as ordinary record iterators (`collect()`,
/// adapters) while the pipeline's blanket `PacketSource` impl handles
/// chunking. The per-record hand-off is trivial next to the file read
/// and header parse on this path.
#[derive(Debug)]
pub struct ChunkedRecordSource<Rdr> {
    reader: Rdr,
    chunk: usize,
    pending: VecDeque<PacketRecord>,
    error: Option<PcapError>,
    done: bool,
}

impl<R: Read> PcapSource<R> {
    /// Open a classic pcap stream (validates the global header).
    pub fn open(inner: R) -> Result<Self, PcapError> {
        Ok(ChunkedRecordSource::new(PcapReader::new(inner)?))
    }
}

impl<R: Read> NativeSource<R> {
    /// Open a native trace stream (validates the header).
    pub fn open(inner: R) -> Result<Self, PcapError> {
        Ok(ChunkedRecordSource::new(NativeReader::new(inner)?))
    }
}

impl<Rdr: RecordReader> ChunkedRecordSource<Rdr> {
    /// Wrap an already-opened reader.
    pub fn new(reader: Rdr) -> Self {
        ChunkedRecordSource {
            reader,
            chunk: DEFAULT_READ_CHUNK,
            pending: VecDeque::new(),
            error: None,
            done: false,
        }
    }

    /// Records per read burst (default [`DEFAULT_READ_CHUNK`]).
    pub fn read_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "read chunk must be non-zero");
        self.chunk = chunk;
        self
    }

    /// The error that ended the stream early, if any. `None` after a
    /// clean end-of-file.
    pub fn error(&self) -> Option<&PcapError> {
        self.error.as_ref()
    }

    /// The underlying reader (frame counts, snaplen, resolution…).
    pub fn reader(&self) -> &Rdr {
        &self.reader
    }

    fn refill(&mut self) {
        while self.pending.len() < self.chunk {
            match self.reader.next_record() {
                Ok(Some(rec)) => self.pending.push_back(rec),
                Ok(None) => {
                    self.done = true;
                    break;
                }
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    break;
                }
            }
        }
    }
}

impl<Rdr: RecordReader> Iterator for ChunkedRecordSource<Rdr> {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        if self.pending.is_empty() && !self.done {
            self.refill();
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::PcapWriter;
    use crate::NativeWriter;
    use hhh_nettypes::Nanos;

    fn packets(n: u64) -> Vec<PacketRecord> {
        (0..n).map(|i| PacketRecord::new(Nanos::from_micros(i * 10), i as u32, 1, 120)).collect()
    }

    #[test]
    fn pcap_source_round_trips_all_records() {
        let pkts = packets(10_000);
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_all_records(&pkts).unwrap();
        w.flush().unwrap();

        let got: Vec<PacketRecord> = PcapSource::open(&buf[..]).unwrap().read_chunk(777).collect();
        assert_eq!(got.len(), pkts.len());
        assert!(got.iter().zip(&pkts).all(|(a, b)| a.src == b.src && a.ts == b.ts));
    }

    #[test]
    fn native_source_round_trips_all_records() {
        let pkts = packets(5_000);
        let mut buf = Vec::new();
        let mut w = NativeWriter::new(&mut buf).unwrap();
        w.write_all_records(&pkts).unwrap();
        w.into_inner().unwrap();

        let got: Vec<PacketRecord> = NativeSource::open(&buf[..]).unwrap().collect();
        assert_eq!(got, pkts);
    }

    #[test]
    fn truncated_native_trace_ends_early_with_error() {
        let pkts = packets(100);
        let mut buf = Vec::new();
        let mut w = NativeWriter::new(&mut buf).unwrap();
        w.write_all_records(&pkts).unwrap();
        w.into_inner().unwrap();
        buf.truncate(buf.len() - 7); // tear the last record

        let mut src = NativeSource::open(&buf[..]).unwrap();
        let got: Vec<PacketRecord> = src.by_ref().collect();
        assert_eq!(got.len(), 99, "every complete record before the tear is delivered");
        assert!(src.error().is_some(), "the tear is kept for inspection");
    }
}
