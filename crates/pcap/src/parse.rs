//! Zero-copy header views: Ethernet (+ 802.1Q), IPv4, IPv6, TCP, UDP.
//!
//! Each view wraps a byte slice and exposes typed accessors; validation
//! happens once in `new` (length and version checks), after which reads
//! are plain index math. Nothing is copied and nothing allocates — the
//! smoltcp idiom.

use hhh_nettypes::{Nanos, PacketRecord, Proto};

/// EtherType values this crate understands.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// IPv6.
    pub const IPV6: u16 = 0x86DD;
    /// 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
}

/// A parsed Ethernet II frame (possibly 802.1Q-tagged).
#[derive(Clone, Copy, Debug)]
pub struct EthernetView<'a> {
    buf: &'a [u8],
    /// Offset of the EtherType field after any VLAN tags.
    ethertype_at: usize,
}

impl<'a> EthernetView<'a> {
    /// Minimum frame header: two MACs + EtherType.
    pub const MIN_LEN: usize = 14;

    /// Parse a frame, skipping up to two VLAN tags.
    pub fn new(buf: &'a [u8]) -> Option<Self> {
        if buf.len() < Self::MIN_LEN {
            return None;
        }
        let mut at = 12;
        // Skip stacked VLAN tags (QinQ at most doubles).
        for _ in 0..2 {
            let et = u16::from_be_bytes([buf[at], buf[at + 1]]);
            if et == ethertype::VLAN {
                if buf.len() < at + 6 {
                    return None;
                }
                at += 4;
            } else {
                break;
            }
        }
        Some(EthernetView { buf, ethertype_at: at })
    }

    /// Destination MAC.
    pub fn dst_mac(&self) -> [u8; 6] {
        self.buf[0..6].try_into().expect("length checked")
    }

    /// Source MAC.
    pub fn src_mac(&self) -> [u8; 6] {
        self.buf[6..12].try_into().expect("length checked")
    }

    /// The EtherType after VLAN tags.
    pub fn ethertype(&self) -> u16 {
        u16::from_be_bytes([self.buf[self.ethertype_at], self.buf[self.ethertype_at + 1]])
    }

    /// The L3 payload.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.ethertype_at + 2..]
    }
}

/// A parsed IPv4 header.
#[derive(Clone, Copy, Debug)]
pub struct Ipv4View<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv4View<'a> {
    /// Parse and validate version, IHL and length.
    pub fn new(buf: &'a [u8]) -> Option<Self> {
        if buf.len() < 20 || buf[0] >> 4 != 4 {
            return None;
        }
        let ihl = ((buf[0] & 0x0F) as usize) * 4;
        if ihl < 20 || buf.len() < ihl {
            return None;
        }
        Some(Ipv4View { buf })
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        ((self.buf[0] & 0x0F) as usize) * 4
    }

    /// The Total Length field.
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// TTL.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// Protocol number.
    pub fn protocol(&self) -> u8 {
        self.buf[9]
    }

    /// Source address, host byte order.
    pub fn src(&self) -> u32 {
        u32::from_be_bytes(self.buf[12..16].try_into().expect("length checked"))
    }

    /// Destination address, host byte order.
    pub fn dst(&self) -> u32 {
        u32::from_be_bytes(self.buf[16..20].try_into().expect("length checked"))
    }

    /// The L4 payload (after options).
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len()..]
    }
}

/// A parsed IPv6 fixed header (extension headers are not walked; the
/// Next Header value is reported as-is).
#[derive(Clone, Copy, Debug)]
pub struct Ipv6View<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv6View<'a> {
    /// Parse and validate version and length.
    pub fn new(buf: &'a [u8]) -> Option<Self> {
        if buf.len() < 40 || buf[0] >> 4 != 6 {
            return None;
        }
        Some(Ipv6View { buf })
    }

    /// Next Header (the L4 protocol when no extension headers).
    pub fn next_header(&self) -> u8 {
        self.buf[6]
    }

    /// Source address as a `u128`.
    pub fn src(&self) -> u128 {
        u128::from_be_bytes(self.buf[8..24].try_into().expect("length checked"))
    }

    /// Destination address as a `u128`.
    pub fn dst(&self) -> u128 {
        u128::from_be_bytes(self.buf[24..40].try_into().expect("length checked"))
    }

    /// Payload after the fixed header.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[40..]
    }
}

/// Source and destination ports of a TCP or UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ports {
    /// Source port.
    pub src: u16,
    /// Destination port.
    pub dst: u16,
}

/// Parse the port pair from a TCP (proto 6) or UDP (proto 17) payload.
/// Returns `None` for other protocols or truncated headers.
pub fn transport_ports(proto: u8, l4: &[u8]) -> Option<Ports> {
    match proto {
        6 | 17 if l4.len() >= 4 => Some(Ports {
            src: u16::from_be_bytes([l4[0], l4[1]]),
            dst: u16::from_be_bytes([l4[2], l4[3]]),
        }),
        _ => None,
    }
}

/// Condense an Ethernet frame into a [`PacketRecord`].
///
/// `wire_len` should be the original (untruncated) frame length from the
/// capture record; `ts` the capture timestamp. Returns `None` for
/// non-IPv4 frames — the experiments are IPv4, and callers that care
/// about IPv6 use the views directly.
pub fn record_from_frame(ts: Nanos, wire_len: u32, frame: &[u8]) -> Option<PacketRecord> {
    let eth = EthernetView::new(frame)?;
    if eth.ethertype() != ethertype::IPV4 {
        return None;
    }
    let ip = Ipv4View::new(eth.payload())?;
    let ports = transport_ports(ip.protocol(), ip.payload()).unwrap_or(Ports { src: 0, dst: 0 });
    Some(PacketRecord::with_transport(
        ts,
        ip.src(),
        ip.dst(),
        wire_len,
        Proto::from_number(ip.protocol()),
        ports.src,
        ports.dst,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-assemble an Ethernet+IPv4+UDP frame.
    pub(crate) fn build_udp_frame(
        src: u32,
        dst: u32,
        sport: u16,
        dport: u16,
        payload_len: usize,
    ) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]); // dst mac
        f.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]); // src mac
        f.extend_from_slice(&ethertype::IPV4.to_be_bytes());
        let total = 20 + 8 + payload_len;
        f.push(0x45); // v4, ihl 5
        f.push(0);
        f.extend_from_slice(&(total as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0, 0, 0]); // id, flags
        f.push(64); // ttl
        f.push(17); // udp
        f.extend_from_slice(&[0, 0]); // checksum (not verified)
        f.extend_from_slice(&src.to_be_bytes());
        f.extend_from_slice(&dst.to_be_bytes());
        f.extend_from_slice(&sport.to_be_bytes());
        f.extend_from_slice(&dport.to_be_bytes());
        f.extend_from_slice(&((8 + payload_len) as u16).to_be_bytes());
        f.extend_from_slice(&[0, 0]);
        f.extend(std::iter::repeat_n(0xAB, payload_len));
        f
    }

    #[test]
    fn parse_plain_frame() {
        let f = build_udp_frame(0x0A000001, 0x0A000002, 1234, 53, 10);
        let eth = EthernetView::new(&f).unwrap();
        assert_eq!(eth.ethertype(), ethertype::IPV4);
        assert_eq!(eth.src_mac(), [0x02, 0, 0, 0, 0, 2]);
        assert_eq!(eth.dst_mac(), [0x02, 0, 0, 0, 0, 1]);
        let ip = Ipv4View::new(eth.payload()).unwrap();
        assert_eq!(ip.src(), 0x0A000001);
        assert_eq!(ip.dst(), 0x0A000002);
        assert_eq!(ip.protocol(), 17);
        assert_eq!(ip.ttl(), 64);
        assert_eq!(ip.total_len() as usize, 38);
        let ports = transport_ports(17, ip.payload()).unwrap();
        assert_eq!(ports, Ports { src: 1234, dst: 53 });
    }

    #[test]
    fn parse_vlan_tagged_frame() {
        let inner = build_udp_frame(1, 2, 10, 20, 0);
        // Splice a VLAN tag after the MACs.
        let mut f = inner[..12].to_vec();
        f.extend_from_slice(&ethertype::VLAN.to_be_bytes());
        f.extend_from_slice(&[0x00, 0x64]); // VID 100
        f.extend_from_slice(&inner[12..]);
        let eth = EthernetView::new(&f).unwrap();
        assert_eq!(eth.ethertype(), ethertype::IPV4);
        let ip = Ipv4View::new(eth.payload()).unwrap();
        assert_eq!(ip.src(), 1);
    }

    #[test]
    fn record_from_frame_condenses() {
        let f = build_udp_frame(0xC0A80001, 0x08080808, 5555, 443, 100);
        let r = record_from_frame(Nanos::from_secs(1), f.len() as u32, &f).unwrap();
        assert_eq!(r.src, 0xC0A80001);
        assert_eq!(r.dst, 0x08080808);
        assert_eq!(r.src_port, 5555);
        assert_eq!(r.dst_port, 443);
        assert_eq!(r.proto, Proto::Udp);
        assert_eq!(r.wire_len as usize, f.len());
    }

    #[test]
    fn rejects_short_and_wrong_version() {
        assert!(EthernetView::new(&[0u8; 10]).is_none());
        assert!(Ipv4View::new(&[0u8; 19]).is_none());
        let mut v6ish = [0u8; 20];
        v6ish[0] = 0x60;
        assert!(Ipv4View::new(&v6ish).is_none());
        let mut bad_ihl = [0u8; 20];
        bad_ihl[0] = 0x41; // ihl=1 → 4 bytes, invalid
        assert!(Ipv4View::new(&bad_ihl).is_none());
    }

    #[test]
    fn non_ipv4_yields_no_record() {
        let mut f = build_udp_frame(1, 2, 3, 4, 0);
        f[12] = 0x86;
        f[13] = 0xDD; // claim IPv6
        assert!(record_from_frame(Nanos::ZERO, f.len() as u32, &f).is_none());
    }

    #[test]
    fn ipv6_view_parses() {
        let mut b = vec![0u8; 48];
        b[0] = 0x60;
        b[6] = 6; // next header TCP
        b[8..24].copy_from_slice(&(0x2001_0db8_u128 << 96).to_be_bytes());
        b[24..40].copy_from_slice(&1u128.to_be_bytes());
        let v6 = Ipv6View::new(&b).unwrap();
        assert_eq!(v6.next_header(), 6);
        assert_eq!(v6.src() >> 96, 0x2001_0db8);
        assert_eq!(v6.dst(), 1);
        assert_eq!(v6.payload().len(), 8);
        assert!(Ipv6View::new(&b[..39]).is_none());
    }

    #[test]
    fn transport_ports_non_tcp_udp() {
        assert!(transport_ports(1, &[0u8; 8]).is_none()); // ICMP
        assert!(transport_ports(6, &[0u8; 3]).is_none()); // truncated
    }
}
