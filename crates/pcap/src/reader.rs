//! Classic pcap reading.

use crate::error::PcapError;
use crate::parse::record_from_frame;
use hhh_nettypes::{Nanos, PacketRecord};
use std::io::Read;

/// Frames larger than this indicate a corrupt stream, not a jumbo frame.
const MAX_SNAPLEN: u32 = 256 * 1024;

/// Timestamp resolution declared by a pcap file's magic number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsResolution {
    /// `0xA1B2C3D4` magic: seconds + microseconds.
    Micro,
    /// `0xA1B23C4D` magic: seconds + nanoseconds.
    Nano,
}

/// One raw captured frame: timestamp, original wire length, and the
/// (possibly snap-truncated) captured bytes.
#[derive(Clone, Debug)]
pub struct RawFrame {
    /// Capture timestamp (absolute, as stored in the file).
    pub ts: Nanos,
    /// Original length on the wire.
    pub wire_len: u32,
    /// Captured bytes (`len ≤ wire_len` under a snaplen).
    pub data: Box<[u8]>,
}

/// A streaming reader for classic pcap files.
///
/// Handles both byte orders and both timestamp resolutions. Only link
/// type 1 (Ethernet) is accepted, because that is what
/// [`record_from_frame`] understands; other link types fail fast with a
/// format error rather than silently mis-parsing.
#[derive(Debug)]
pub struct PcapReader<R> {
    inner: R,
    big_endian: bool,
    resolution: TsResolution,
    snaplen: u32,
    frames_read: u64,
}

impl<R: Read> PcapReader<R> {
    /// Read and validate the global header.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes"));
        let (big_endian, resolution) = match magic {
            0xA1B2_C3D4 => (false, TsResolution::Micro),
            0xA1B2_3C4D => (false, TsResolution::Nano),
            0xD4C3_B2A1 => (true, TsResolution::Micro),
            0x4D3C_B2A1 => (true, TsResolution::Nano),
            _ => return Err(PcapError::Format("unrecognized pcap magic")),
        };
        let u32_at = |b: &[u8], off: usize| -> u32 {
            let raw: [u8; 4] = b[off..off + 4].try_into().expect("4 bytes");
            if big_endian {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let snaplen = u32_at(&hdr, 16);
        let linktype = u32_at(&hdr, 20);
        if linktype != 1 {
            return Err(PcapError::Format("only Ethernet (linktype 1) captures are supported"));
        }
        Ok(PcapReader { inner, big_endian, resolution, snaplen, frames_read: 0 })
    }

    /// The file's declared snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The timestamp resolution in use.
    pub fn resolution(&self) -> TsResolution {
        self.resolution
    }

    /// Frames returned so far.
    pub fn frames_read(&self) -> u64 {
        self.frames_read
    }

    /// Read the next frame; `Ok(None)` at clean end-of-file.
    pub fn next_frame(&mut self) -> Result<Option<RawFrame>, PcapError> {
        let mut hdr = [0u8; 16];
        match self.inner.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let u32_at = |b: &[u8], off: usize| -> u32 {
            let raw: [u8; 4] = b[off..off + 4].try_into().expect("4 bytes");
            if self.big_endian {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let secs = u32_at(&hdr, 0) as u64;
        let frac = u32_at(&hdr, 4) as u64;
        let cap_len = u32_at(&hdr, 8);
        let wire_len = u32_at(&hdr, 12);
        if cap_len > MAX_SNAPLEN {
            return Err(PcapError::OversizedFrame { declared: cap_len });
        }
        let ts = match self.resolution {
            TsResolution::Micro => Nanos::from_nanos(secs * 1_000_000_000 + frac * 1_000),
            TsResolution::Nano => Nanos::from_nanos(secs * 1_000_000_000 + frac),
        };
        let mut data = vec![0u8; cap_len as usize];
        self.inner.read_exact(&mut data)?;
        self.frames_read += 1;
        Ok(Some(RawFrame { ts, wire_len, data: data.into_boxed_slice() }))
    }

    /// Read the next frame and condense it to a [`PacketRecord`],
    /// skipping frames that are not parseable IPv4 (the CAIDA-pipeline
    /// behaviour: non-IP traffic does not take part in HHH analysis).
    pub fn next_record(&mut self) -> Result<Option<PacketRecord>, PcapError> {
        loop {
            match self.next_frame()? {
                None => return Ok(None),
                Some(f) => {
                    if let Some(r) = record_from_frame(f.ts, f.wire_len, &f.data) {
                        return Ok(Some(r));
                    }
                }
            }
        }
    }

    /// Drain the file into a vector of records.
    pub fn read_all_records(&mut self) -> Result<Vec<PacketRecord>, PcapError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a 24-byte global header. The magic is written verbatim in
    /// little-endian byte order; when `be` is true the reader will see
    /// the byte-swapped value and treat the rest of the file as
    /// big-endian (so the remaining fields are emitted big-endian).
    fn minimal_header(magic: u32, be: bool) -> Vec<u8> {
        let mut h = Vec::with_capacity(24);
        h.extend_from_slice(&magic.to_le_bytes());
        let w16 = |v: u16, h: &mut Vec<u8>| {
            h.extend_from_slice(&if be { v.to_be_bytes() } else { v.to_le_bytes() })
        };
        w16(2, &mut h); // version major
        w16(4, &mut h); // version minor
        let w32 = |v: u32, h: &mut Vec<u8>| {
            h.extend_from_slice(&if be { v.to_be_bytes() } else { v.to_le_bytes() })
        };
        w32(0, &mut h); // thiszone
        w32(0, &mut h); // sigfigs
        w32(65535, &mut h); // snaplen
        w32(1, &mut h); // linktype ethernet
        h
    }

    #[test]
    fn rejects_bad_magic() {
        let data = [0u8; 24];
        assert!(matches!(PcapReader::new(&data[..]), Err(PcapError::Format(_))));
    }

    #[test]
    fn rejects_non_ethernet() {
        let mut h = minimal_header(0xA1B2_C3D4, false);
        h[20..24].copy_from_slice(&101u32.to_le_bytes()); // raw IP linktype
        assert!(matches!(PcapReader::new(&h[..]), Err(PcapError::Format(_))));
    }

    #[test]
    fn empty_file_yields_none() {
        let h = minimal_header(0xA1B2_C3D4, false);
        let mut r = PcapReader::new(&h[..]).unwrap();
        assert!(r.next_frame().unwrap().is_none());
        assert_eq!(r.frames_read(), 0);
    }

    #[test]
    fn big_endian_micro_frames_parse() {
        let mut file = minimal_header(0xD4C3_B2A1, true);
        // one frame: ts 3.000005s, 6 bytes
        file.extend_from_slice(&3u32.to_be_bytes());
        file.extend_from_slice(&5u32.to_be_bytes());
        file.extend_from_slice(&6u32.to_be_bytes());
        file.extend_from_slice(&6u32.to_be_bytes());
        file.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert_eq!(r.resolution(), TsResolution::Micro);
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.ts, Nanos::from_nanos(3_000_005_000));
        assert_eq!(f.wire_len, 6);
        assert_eq!(&f.data[..], &[1, 2, 3, 4, 5, 6]);
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_frame_detected() {
        let mut file = minimal_header(0xA1B2_C3D4, false);
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&(MAX_SNAPLEN + 1).to_le_bytes());
        file.extend_from_slice(&10u32.to_le_bytes());
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert!(matches!(r.next_frame(), Err(PcapError::OversizedFrame { .. })));
    }

    #[test]
    fn truncated_frame_body_is_io_error() {
        let mut file = minimal_header(0xA1B2_C3D4, false);
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&0u32.to_le_bytes());
        file.extend_from_slice(&100u32.to_le_bytes());
        file.extend_from_slice(&100u32.to_le_bytes());
        file.extend_from_slice(&[0u8; 10]); // 90 bytes short
        let mut r = PcapReader::new(&file[..]).unwrap();
        assert!(matches!(r.next_frame(), Err(PcapError::Io(_))));
    }
}
