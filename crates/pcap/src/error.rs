//! Error type for capture I/O.

use core::fmt;

/// Errors produced while reading or writing captures.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failed.
    Io(std::io::Error),
    /// The file is not a capture we understand (bad magic, truncated
    /// header, unsupported link type…). The message says which.
    Format(&'static str),
    /// A frame declared a capture length beyond the sanity limit,
    /// which almost always means a desynchronized or corrupt stream.
    OversizedFrame {
        /// The declared capture length.
        declared: u32,
    },
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "capture I/O error: {e}"),
            PcapError::Format(what) => write!(f, "malformed capture: {what}"),
            PcapError::OversizedFrame { declared } => {
                write!(f, "frame declares absurd capture length {declared}")
            }
        }
    }
}

impl std::error::Error for PcapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PcapError {
    fn from(e: std::io::Error) -> Self {
        PcapError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PcapError::Format("bad magic");
        assert!(e.to_string().contains("bad magic"));
        let e = PcapError::OversizedFrame { declared: 1 << 30 };
        assert!(e.to_string().contains("1073741824"));
        let e: PcapError = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(e.to_string().contains("eof"));
    }
}
