//! The native compact trace format.
//!
//! Synthetic experiment traces don't need Ethernet framing — they need
//! fast, dense sequential I/O. A native trace is a 16-byte header
//! followed by fixed-width 25-byte records, little-endian throughout:
//!
//! ```text
//! header:  magic "HHHT" | version u16 | reserved u16 | record count u64
//! record:  ts u64 (ns) | src u32 | dst u32 | wire_len u32 | sport u16 | dport u16 | proto u8
//! ```
//!
//! The count field is written as `u64::MAX` by streaming writers that
//! don't know the count up front; readers treat it as advisory.

use crate::error::PcapError;
use hhh_nettypes::{Nanos, PacketRecord, Proto};
use std::io::{Read, Write};

/// File magic: "HHHT".
pub const NATIVE_MAGIC: [u8; 4] = *b"HHHT";
/// Bytes per record.
pub const NATIVE_RECORD_LEN: usize = 25;
const VERSION: u16 = 1;

/// Streaming writer for the native format.
#[derive(Debug)]
pub struct NativeWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> NativeWriter<W> {
    /// Write the header (with an unknown advisory count).
    pub fn new(mut inner: W) -> Result<Self, PcapError> {
        inner.write_all(&NATIVE_MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        inner.write_all(&0u16.to_le_bytes())?;
        inner.write_all(&u64::MAX.to_le_bytes())?;
        Ok(NativeWriter { inner, written: 0 })
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Append one record.
    pub fn write_record(&mut self, r: &PacketRecord) -> Result<(), PcapError> {
        let mut buf = [0u8; NATIVE_RECORD_LEN];
        buf[0..8].copy_from_slice(&r.ts.as_nanos().to_le_bytes());
        buf[8..12].copy_from_slice(&r.src.to_le_bytes());
        buf[12..16].copy_from_slice(&r.dst.to_le_bytes());
        buf[16..20].copy_from_slice(&r.wire_len.to_le_bytes());
        buf[20..22].copy_from_slice(&r.src_port.to_le_bytes());
        buf[22..24].copy_from_slice(&r.dst_port.to_le_bytes());
        buf[24] = r.proto.number();
        self.inner.write_all(&buf)?;
        self.written += 1;
        Ok(())
    }

    /// Append many records.
    pub fn write_all_records(&mut self, records: &[PacketRecord]) -> Result<(), PcapError> {
        for r in records {
            self.write_record(r)?;
        }
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> Result<W, PcapError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader for the native format.
#[derive(Debug)]
pub struct NativeReader<R: Read> {
    inner: R,
    advisory_count: u64,
    read: u64,
}

impl<R: Read> NativeReader<R> {
    /// Read and validate the header.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 16];
        inner.read_exact(&mut hdr)?;
        if hdr[0..4] != NATIVE_MAGIC {
            return Err(PcapError::Format("not a native HHHT trace"));
        }
        let version = u16::from_le_bytes(hdr[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(PcapError::Format("unsupported native trace version"));
        }
        let advisory_count = u64::from_le_bytes(hdr[8..16].try_into().expect("8 bytes"));
        Ok(NativeReader { inner, advisory_count, read: 0 })
    }

    /// The advisory record count from the header (`u64::MAX` = unknown).
    pub fn advisory_count(&self) -> u64 {
        self.advisory_count
    }

    /// Records read so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    /// Read the next record; `Ok(None)` at clean end-of-file. EOF in
    /// the *middle* of a record is reported as an I/O error — a torn
    /// trace should never be mistaken for a complete one.
    pub fn next_record(&mut self) -> Result<Option<PacketRecord>, PcapError> {
        let mut buf = [0u8; NATIVE_RECORD_LEN];
        let mut filled = 0;
        while filled < NATIVE_RECORD_LEN {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(PcapError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "trace truncated mid-record",
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.read += 1;
        Ok(Some(PacketRecord {
            ts: Nanos::from_nanos(u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"))),
            src: u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
            dst: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
            wire_len: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            src_port: u16::from_le_bytes(buf[20..22].try_into().expect("2 bytes")),
            dst_port: u16::from_le_bytes(buf[22..24].try_into().expect("2 bytes")),
            proto: Proto::from_number(buf[24]),
        }))
    }

    /// Drain into a vector.
    pub fn read_all_records(&mut self) -> Result<Vec<PacketRecord>, PcapError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Iterator adapter over a native reader (errors terminate iteration
/// after yielding the error).
impl<R: Read> Iterator for NativeReader<R> {
    type Item = Result<PacketRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<PacketRecord> {
        (0..100u64)
            .map(|i| {
                PacketRecord::with_transport(
                    Nanos::from_micros(i * 37),
                    0x0A00_0000 | i as u32,
                    0xC0A8_0000 | (i as u32 % 7),
                    64 + (i as u32 * 13) % 1400,
                    if i % 2 == 0 { Proto::Udp } else { Proto::Tcp },
                    1024 + i as u16,
                    (i % 3) as u16 * 443,
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut w = NativeWriter::new(&mut buf).unwrap();
        w.write_all_records(&recs).unwrap();
        assert_eq!(w.written(), 100);
        w.into_inner().unwrap();
        assert_eq!(buf.len(), 16 + 100 * NATIVE_RECORD_LEN);

        let mut r = NativeReader::new(&buf[..]).unwrap();
        let back = r.read_all_records().unwrap();
        assert_eq!(back, recs);
        assert_eq!(r.records_read(), 100);
    }

    #[test]
    fn iterator_interface() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut w = NativeWriter::new(&mut buf).unwrap();
        w.write_all_records(&recs).unwrap();
        w.into_inner().unwrap();
        let r = NativeReader::new(&buf[..]).unwrap();
        let back: Result<Vec<_>, _> = r.collect();
        assert_eq!(back.unwrap(), recs);
    }

    #[test]
    fn rejects_wrong_magic() {
        let buf = b"NOPE\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff".to_vec();
        assert!(matches!(NativeReader::new(&buf[..]), Err(PcapError::Format(_))));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&NATIVE_MAGIC);
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(NativeReader::new(&buf[..]), Err(PcapError::Format(_))));
    }

    #[test]
    fn truncated_record_is_clean_eof_only_at_boundary() {
        let recs = sample_records();
        let mut buf = Vec::new();
        let mut w = NativeWriter::new(&mut buf).unwrap();
        w.write_all_records(&recs[..2]).unwrap();
        w.into_inner().unwrap();
        // Chop mid-record: the reader reports an I/O error, not silence.
        buf.truncate(16 + NATIVE_RECORD_LEN + 5);
        let mut r = NativeReader::new(&buf[..]).unwrap();
        assert!(r.next_record().unwrap().is_some());
        assert!(matches!(r.next_record(), Err(PcapError::Io(_))));
    }

    #[test]
    fn advisory_count_streaming_unknown() {
        let mut buf = Vec::new();
        let w = NativeWriter::new(&mut buf).unwrap();
        w.into_inner().unwrap();
        let r = NativeReader::new(&buf[..]).unwrap();
        assert_eq!(r.advisory_count(), u64::MAX);
    }
}
