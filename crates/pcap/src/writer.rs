//! Classic pcap writing: synthesizes Ethernet+IPv4+UDP/TCP frames from
//! [`PacketRecord`]s so that generated traces interoperate with
//! standard tooling (tcpdump, Wireshark, other analyzers).

use crate::error::PcapError;
use crate::parse::ethertype;
use hhh_nettypes::{PacketRecord, Proto};
use std::io::Write;

/// Nanosecond-resolution little-endian classic pcap writer.
///
/// Frames are materialized from records: real headers, zeroed
/// checksums, payload padded with zeros up to the record's `wire_len`
/// (capped by the snap length, mirroring a capture with `-s`).
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    inner: W,
    snaplen: u32,
    frames_written: u64,
    scratch: Vec<u8>,
}

impl<W: Write> PcapWriter<W> {
    /// Default snap length: enough for every header this crate emits.
    pub const DEFAULT_SNAPLEN: u32 = 262_144;

    /// Write the global header (nanosecond magic, Ethernet link type).
    pub fn new(inner: W) -> Result<Self, PcapError> {
        Self::with_snaplen(inner, Self::DEFAULT_SNAPLEN)
    }

    /// As [`PcapWriter::new`] with an explicit snap length.
    pub fn with_snaplen(mut inner: W, snaplen: u32) -> Result<Self, PcapError> {
        assert!(snaplen >= 64, "snaplen must cover at least the headers");
        inner.write_all(&0xA1B2_3C4Du32.to_le_bytes())?; // ns resolution
        inner.write_all(&2u16.to_le_bytes())?;
        inner.write_all(&4u16.to_le_bytes())?;
        inner.write_all(&0u32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&1u32.to_le_bytes())?; // ethernet
        Ok(PcapWriter { inner, snaplen, frames_written: 0, scratch: Vec::with_capacity(2048) })
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Serialize one record as an Ethernet+IPv4(+TCP/UDP) frame.
    pub fn write_record(&mut self, r: &PacketRecord) -> Result<(), PcapError> {
        self.scratch.clear();
        build_frame(&mut self.scratch, r);
        let wire_len = (r.wire_len as usize).max(self.scratch.len()) as u32;
        let cap_len = (wire_len.min(self.snaplen)) as usize;
        // Pad the synthetic frame with zeros up to cap_len.
        if self.scratch.len() < cap_len {
            self.scratch.resize(cap_len, 0);
        } else {
            self.scratch.truncate(cap_len);
        }

        let ns = r.ts.as_nanos();
        self.inner.write_all(&((ns / 1_000_000_000) as u32).to_le_bytes())?;
        self.inner.write_all(&((ns % 1_000_000_000) as u32).to_le_bytes())?;
        self.inner.write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.inner.write_all(&wire_len.to_le_bytes())?;
        self.inner.write_all(&self.scratch)?;
        self.frames_written += 1;
        Ok(())
    }

    /// Write a whole slice of records.
    pub fn write_all_records(&mut self, records: &[PacketRecord]) -> Result<(), PcapError> {
        for r in records {
            self.write_record(r)?;
        }
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<(), PcapError> {
        Ok(self.inner.flush()?)
    }

    /// Finish writing and hand back the underlying writer.
    pub fn into_inner(mut self) -> Result<W, PcapError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Assemble Ethernet + IPv4 + (UDP|TCP stub) headers for a record.
fn build_frame(buf: &mut Vec<u8>, r: &PacketRecord) {
    buf.extend_from_slice(&[0x02, 0, 0, 0, 0, 0xBB]); // dst mac (locally administered)
    buf.extend_from_slice(&[0x02, 0, 0, 0, 0, 0xAA]); // src mac
    buf.extend_from_slice(&ethertype::IPV4.to_be_bytes());

    let l4_len: usize = match r.proto {
        Proto::Tcp => 20,
        Proto::Udp => 8,
        _ => 0,
    };
    // IP total length: bounded by what wire_len allows, at least headers.
    let ip_total = (r.wire_len as usize).saturating_sub(14).max(20 + l4_len).min(65535);
    buf.push(0x45);
    buf.push(0);
    buf.extend_from_slice(&(ip_total as u16).to_be_bytes());
    buf.extend_from_slice(&[0, 0, 0x40, 0]); // id 0, DF
    buf.push(64); // ttl
    buf.push(r.proto.number());
    buf.extend_from_slice(&[0, 0]); // header checksum (zeroed)
    buf.extend_from_slice(&r.src.to_be_bytes());
    buf.extend_from_slice(&r.dst.to_be_bytes());

    match r.proto {
        Proto::Udp => {
            buf.extend_from_slice(&r.src_port.to_be_bytes());
            buf.extend_from_slice(&r.dst_port.to_be_bytes());
            buf.extend_from_slice(&((ip_total - 20) as u16).to_be_bytes());
            buf.extend_from_slice(&[0, 0]);
        }
        Proto::Tcp => {
            buf.extend_from_slice(&r.src_port.to_be_bytes());
            buf.extend_from_slice(&r.dst_port.to_be_bytes());
            buf.extend_from_slice(&[0; 8]); // seq, ack
            buf.push(0x50); // data offset 5
            buf.push(0x10); // ACK
            buf.extend_from_slice(&[0xFF, 0xFF]); // window
            buf.extend_from_slice(&[0, 0, 0, 0]); // checksum, urgent
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::PcapReader;
    use hhh_nettypes::Nanos;

    fn roundtrip(records: &[PacketRecord]) -> Vec<PacketRecord> {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.write_all_records(records).unwrap();
        assert_eq!(w.frames_written(), records.len() as u64);
        w.flush().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        r.read_all_records().unwrap()
    }

    #[test]
    fn udp_roundtrip_preserves_fields() {
        let recs = vec![
            PacketRecord::with_transport(
                Nanos::from_millis(1),
                0x0A000001,
                0xC0A80001,
                500,
                Proto::Udp,
                1111,
                53,
            ),
            PacketRecord::with_transport(
                Nanos::from_millis(2),
                0x0B000001,
                0xC0A80002,
                1500,
                Proto::Tcp,
                2222,
                443,
            ),
        ];
        let back = roundtrip(&recs);
        assert_eq!(back.len(), 2);
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.wire_len, b.wire_len);
            assert_eq!(a.src_port, b.src_port);
            assert_eq!(a.dst_port, b.dst_port);
            assert_eq!(a.proto, b.proto);
        }
    }

    #[test]
    fn nanosecond_timestamps_survive() {
        let recs = vec![PacketRecord::new(Nanos::from_nanos(1_234_567_891), 1, 2, 100)];
        let back = roundtrip(&recs);
        assert_eq!(back[0].ts, Nanos::from_nanos(1_234_567_891));
    }

    #[test]
    fn tiny_wire_len_grows_to_headers() {
        // wire_len smaller than the headers we synthesize: the written
        // frame still contains full headers, and wire_len reflects them.
        let recs = vec![PacketRecord::new(Nanos::ZERO, 1, 2, 10)];
        let back = roundtrip(&recs);
        assert!(back[0].wire_len >= 42, "grew to {}", back[0].wire_len);
    }

    #[test]
    fn snaplen_truncates_but_preserves_wire_len() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::with_snaplen(&mut buf, 64).unwrap();
        w.write_record(&PacketRecord::new(Nanos::ZERO, 1, 2, 1500)).unwrap();
        w.flush().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let f = r.next_frame().unwrap().unwrap();
        assert_eq!(f.data.len(), 64);
        assert_eq!(f.wire_len, 1500);
    }

    #[test]
    fn icmp_record_has_no_ports() {
        let recs = vec![PacketRecord::with_transport(Nanos::ZERO, 7, 8, 84, Proto::Icmp, 0, 0)];
        let back = roundtrip(&recs);
        assert_eq!(back[0].proto, Proto::Icmp);
        assert_eq!(back[0].src_port, 0);
    }
}
