//! The unified pipeline: **source → engine → sink**.
//!
//! One composable abstraction replaces the five `run_*` driver
//! functions. A [`Pipeline`] is built in three steps:
//!
//! ```
//! use hhh_core::{ExactHhh, Threshold};
//! use hhh_hierarchy::Ipv4Hierarchy;
//! use hhh_nettypes::{Measure, Nanos, PacketRecord, TimeSpan};
//! use hhh_window::{Disjoint, Pipeline};
//!
//! let packets: Vec<PacketRecord> =
//!     (0..1000).map(|i| PacketRecord::new(Nanos::from_millis(i), i as u32 % 7, 1, 100)).collect();
//! let mut det = ExactHhh::new(Ipv4Hierarchy::bytes());
//! let reports = Pipeline::new(packets.iter().copied())
//!     .engine(Disjoint::new(
//!         &mut det,
//!         TimeSpan::from_secs(1),
//!         TimeSpan::from_millis(500),
//!         &[Threshold::percent(5.0)],
//!         |p| p.src,
//!     ))
//!     .collect()
//!     .run();
//! assert_eq!(reports.len(), 1, "one series per threshold");
//! assert_eq!(reports[0].len(), 2, "two 500 ms windows");
//! ```
//!
//! * the **source** ([`PacketSource`]) is any packet iterator, a
//!   bounded channel fed from other threads
//!   ([`source::bounded`](crate::source::bounded)), or a capture file
//!   (`hhh-pcap`);
//! * the **engine** ([`Engine`]) is the window model × execution
//!   strategy: [`Disjoint`], [`SlidingExact`], [`MicroVaried`],
//!   [`Continuous`], and the multi-core [`ShardedDisjoint`],
//!   [`ShardedSliding`], [`ShardedContinuous`];
//! * the **sink** ([`ReportSink`](crate::ReportSink)) consumes reports
//!   as windows close: collect to `Vec`s ([`collect`](Pipeline::collect)),
//!   stream into a closure ([`FnSink`](crate::FnSink)), serialize the
//!   snapshot wire stream in either format
//!   ([`SnapshotSink`](crate::SnapshotSink)), or stream natively
//!   encoded v2 frames through a snapshot transport — file, TCP
//!   socket, or in-process channel
//!   ([`TransportSink`](crate::TransportSink)).
//!
//! Every engine consumes the stream once, chunk at a time, and pushes
//! each report the moment its window closes — so a sink can alert with
//! zero buffering while the stream is still flowing.

use crate::report::WindowReport;
use crate::sharded::{with_continuous_shards, with_shards, with_sliding_shards, DEFAULT_BATCH};
use crate::sink::{CollectSink, ReportSink};
use crate::source::Source;
use hhh_core::{
    discount_bottom_up, ContinuousDetector, HhhDetector, MergeableDetector, RestoredDetector,
    Threshold, WireSnapshot,
};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::{Measure, Nanos, PacketRecord, TimeSpan};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::str::FromStr;

/// Deliver a merged detector's state to the sink at a report point.
///
/// Frame-consuming sinks ([`ReportSink::wants_frames`]) get the
/// **natively encoded** v2 frame
/// ([`MergeableDetector::to_frame`], the `FrameEncode` path) — no JSON
/// rendered or parsed; everything else gets the JSON-bodied
/// [`snapshot`](MergeableDetector::snapshot) as before. Shared by
/// every sharded engine.
fn emit_state<P, D: MergeableDetector, K: ReportSink<P>>(
    sink: &mut K,
    detector: &D,
    start: Nanos,
    at: Nanos,
) {
    if sink.wants_frames() {
        if let Some(frame) = detector.to_frame(start, at) {
            sink.state_frame(&frame);
            return;
        }
    }
    if let Some(snap) = detector.snapshot() {
        sink.state(start, at, &snap);
    }
}

/// A fully described run: where packets come from, what computes on
/// them, where reports go. See the [module docs](self) for the model.
pub struct Pipeline<S, E, K> {
    source: S,
    engine: E,
    sink: K,
}

/// Placeholder for a [`Pipeline`] stage that has not been chosen yet.
pub struct Unset;

impl<S: Source> Pipeline<S, Unset, Unset> {
    /// Start a pipeline from a source (any `Iterator` qualifies — of
    /// `PacketRecord`s for the packet engines, of [`WireSnapshot`]s
    /// for [`FoldSnapshots`]).
    pub fn new(source: S) -> Self {
        Pipeline { source, engine: Unset, sink: Unset }
    }
}

impl<S, E, K> Pipeline<S, E, K> {
    /// Choose the engine (window model × execution strategy).
    pub fn engine<E2: Engine>(self, engine: E2) -> Pipeline<S, E2, K> {
        Pipeline { source: self.source, engine, sink: self.sink }
    }

    /// Choose the sink.
    pub fn sink<K2>(self, sink: K2) -> Pipeline<S, E, K2> {
        Pipeline { source: self.source, engine: self.engine, sink }
    }
}

impl<S, E: Engine, K> Pipeline<S, E, K> {
    /// Shorthand for `.sink(CollectSink::new())`: gather every report
    /// into one `Vec<WindowReport>` per series.
    pub fn collect(self) -> Pipeline<S, E, CollectSink<E::Prefix>> {
        self.sink(CollectSink::new())
    }
}

impl<S, E, K> Pipeline<S, E, K>
where
    S: Source<Item = E::In>,
    E: Engine,
    K: ReportSink<E::Prefix>,
{
    /// Consume the source through the engine, deliver every report to
    /// the sink, and return the sink's output.
    pub fn run(mut self) -> K::Output {
        self.sink.begin(self.engine.series());
        self.engine.run(self.source, &mut self.sink);
        self.sink.finish()
    }
}

/// A window model × execution strategy, runnable inside a
/// [`Pipeline`]. Engines are single-use: `run` consumes the engine and
/// the source.
pub trait Engine {
    /// The item type the engine consumes — [`PacketRecord`] for every
    /// packet engine, [`WireSnapshot`] for [`FoldSnapshots`]. The
    /// pipeline's source must yield exactly this type.
    type In;

    /// The prefix type of the reports this engine emits.
    type Prefix;

    /// Number of report series emitted (see
    /// [`ReportSink::accept`](crate::ReportSink::accept)).
    fn series(&self) -> usize;

    /// Drain the source, pushing reports into the sink as windows
    /// close.
    fn run<S: Source<Item = Self::In>, K: ReportSink<Self::Prefix>>(self, source: S, sink: &mut K);
}

/// Drive `f` over every item of a chunked source; `f` returning
/// `false` stops the stream (horizon reached).
fn for_each_item<S: Source>(mut source: S, mut f: impl FnMut(S::Item) -> bool) {
    let mut buf = Vec::new();
    while source.pull_chunk(&mut buf) {
        for p in buf.drain(..) {
            if !f(p) {
                return;
            }
        }
    }
}

/// Build an exact [`WindowReport`] from an item-count map (the sliding
/// and micro-varied engines keep exact rolling counts rather than a
/// detector).
fn exact_report<H: Hierarchy>(
    hierarchy: &H,
    counts: &HashMap<H::Item, u64>,
    total: u64,
    threshold: Threshold,
    index: u64,
    start: Nanos,
    end: Nanos,
) -> WindowReport<H::Prefix> {
    let levels = hierarchy.levels();
    let mut maps: Vec<HashMap<H::Prefix, u64>> = vec![HashMap::new(); levels];
    for (&item, &c) in counts.iter() {
        for (level, map) in maps.iter_mut().enumerate() {
            *map.entry(hierarchy.generalize(item, level)).or_default() += c;
        }
    }
    WindowReport {
        index,
        start,
        end,
        total,
        hhhs: discount_bottom_up(hierarchy, &maps, threshold.absolute(total)),
    }
}

// ---------------------------------------------------------------------
// Disjoint
// ---------------------------------------------------------------------

/// Disjoint (tumbling) windows over one windowed detector: report at
/// every boundary, then reset — the practice the paper quantifies the
/// cost of. One series per threshold. Packets after the last complete
/// window are ignored.
///
/// The detector can be owned or a `&mut` borrow (reusable afterwards).
pub struct Disjoint<H, D, F> {
    detector: D,
    horizon: TimeSpan,
    window: TimeSpan,
    thresholds: Vec<Threshold>,
    measure: Measure,
    key: F,
    _hierarchy: PhantomData<H>,
}

impl<H, D, F> Disjoint<H, D, F>
where
    H: Hierarchy,
    D: HhhDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    /// Windows of `window` length covering `horizon`, reporting each of
    /// `thresholds` (one output series per threshold, same order), with
    /// `key` extracting the item to aggregate (usually `|p| p.src`).
    pub fn new(
        detector: D,
        horizon: TimeSpan,
        window: TimeSpan,
        thresholds: &[Threshold],
        key: F,
    ) -> Self {
        Disjoint {
            detector,
            horizon,
            window,
            thresholds: thresholds.to_vec(),
            measure: Measure::Bytes,
            key,
            _hierarchy: PhantomData,
        }
    }

    /// Weigh packets by bytes (default) or packets.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }
}

impl<H, D, F> Engine for Disjoint<H, D, F>
where
    H: Hierarchy,
    D: HhhDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    type In = PacketRecord;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        self.thresholds.len()
    }

    fn run<S: Source<Item = PacketRecord>, K: ReportSink<H::Prefix>>(
        mut self,
        source: S,
        sink: &mut K,
    ) {
        let n_windows = self.horizon / self.window;
        let window = self.window;
        let thresholds = &self.thresholds;
        let detector = &mut self.detector;
        let mut cur: u64 = 0;

        let flush = |cur: u64, detector: &mut D, sink: &mut K| {
            for (ti, t) in thresholds.iter().enumerate() {
                sink.accept(
                    ti,
                    WindowReport {
                        index: cur,
                        start: Nanos::ZERO + window * cur,
                        end: Nanos::ZERO + window * (cur + 1),
                        total: detector.total(),
                        hhhs: detector.report(*t),
                    },
                );
            }
            detector.reset();
        };

        let measure = self.measure;
        let key = &self.key;
        for_each_item(source, |p| {
            let w = p.ts.bin_index(window);
            if w >= n_windows {
                return false; // time-sorted stream; the rest is partial tail
            }
            while cur < w {
                flush(cur, detector, sink);
                cur += 1;
            }
            detector.observe(key(&p), measure.weight(&p));
            true
        });
        while cur < n_windows {
            flush(cur, detector, sink);
            cur += 1;
        }
    }
}

// ---------------------------------------------------------------------
// SlidingExact
// ---------------------------------------------------------------------

/// Every sliding position evaluated **exactly** via rolling per-epoch
/// counts. Requires `window % step == 0`; one pass, exact output, one
/// series per threshold. Entry `i` of each series is sliding position
/// `i` (start = `i × step`).
pub struct SlidingExact<'h, H, F> {
    hierarchy: &'h H,
    horizon: TimeSpan,
    window: TimeSpan,
    step: TimeSpan,
    thresholds: Vec<Threshold>,
    measure: Measure,
    key: F,
}

impl<'h, H, F> SlidingExact<'h, H, F>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    /// Sliding `window` advancing by `step` over `horizon`.
    pub fn new(
        hierarchy: &'h H,
        horizon: TimeSpan,
        window: TimeSpan,
        step: TimeSpan,
        thresholds: &[Threshold],
        key: F,
    ) -> Self {
        assert!(!step.is_zero() && !window.is_zero(), "window and step must be non-zero");
        assert!(window % step == TimeSpan::ZERO, "step must divide the window length exactly");
        assert!(window <= horizon, "window longer than the horizon");
        SlidingExact {
            hierarchy,
            horizon,
            window,
            step,
            thresholds: thresholds.to_vec(),
            measure: Measure::Bytes,
            key,
        }
    }

    /// Weigh packets by bytes (default) or packets.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }
}

impl<H, F> Engine for SlidingExact<'_, H, F>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    type In = PacketRecord;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        self.thresholds.len()
    }

    fn run<S: Source<Item = PacketRecord>, K: ReportSink<H::Prefix>>(
        self,
        source: S,
        sink: &mut K,
    ) {
        let epw = self.window / self.step; // epochs per window
        let n_epochs = self.horizon / self.step;
        let hierarchy = self.hierarchy;
        let (window, step) = (self.window, self.step);
        let thresholds = &self.thresholds;

        let mut rolling: HashMap<H::Item, u64> = HashMap::new();
        let mut rolling_total: u64 = 0;
        let mut window_epochs: VecDeque<HashMap<H::Item, u64>> = VecDeque::new();
        let mut cur_epoch: u64 = 0;
        let mut cur_map: HashMap<H::Item, u64> = HashMap::new();

        let finalize_epoch = |cur_epoch: u64,
                              cur_map: &mut HashMap<H::Item, u64>,
                              rolling: &mut HashMap<H::Item, u64>,
                              rolling_total: &mut u64,
                              window_epochs: &mut VecDeque<HashMap<H::Item, u64>>,
                              sink: &mut K| {
            let finished = core::mem::take(cur_map);
            for (&k, &v) in &finished {
                *rolling.entry(k).or_default() += v;
                *rolling_total += v;
            }
            window_epochs.push_back(finished);
            if window_epochs.len() > epw as usize {
                let old = window_epochs.pop_front().expect("non-empty");
                for (k, v) in old {
                    let e = rolling.get_mut(&k).expect("rolling covers window epochs");
                    *e -= v;
                    *rolling_total -= v;
                    if *e == 0 {
                        rolling.remove(&k);
                    }
                }
            }
            if window_epochs.len() == epw as usize {
                let position = cur_epoch + 1 - epw;
                for (ti, t) in thresholds.iter().enumerate() {
                    sink.accept(
                        ti,
                        exact_report(
                            hierarchy,
                            rolling,
                            *rolling_total,
                            *t,
                            position,
                            Nanos::ZERO + step * position,
                            Nanos::ZERO + step * position + window,
                        ),
                    );
                }
            }
        };

        let measure = self.measure;
        let key = &self.key;
        for_each_item(source, |p| {
            let e = p.ts.bin_index(step);
            if e >= n_epochs {
                return false;
            }
            while cur_epoch < e {
                finalize_epoch(
                    cur_epoch,
                    &mut cur_map,
                    &mut rolling,
                    &mut rolling_total,
                    &mut window_epochs,
                    sink,
                );
                cur_epoch += 1;
            }
            *cur_map.entry(key(&p)).or_default() += measure.weight(&p);
            true
        });
        while cur_epoch < n_epochs {
            finalize_epoch(
                cur_epoch,
                &mut cur_map,
                &mut rolling,
                &mut rolling_total,
                &mut window_epochs,
                sink,
            );
            cur_epoch += 1;
        }
    }
}

// ---------------------------------------------------------------------
// MicroVaried
// ---------------------------------------------------------------------

/// A disjoint baseline window evaluated against micro-shortened
/// variants in a single pass (Fig. 3's setup). For each baseline
/// window `[k·b, (k+1)·b)` and each delta `d`, the variant window is
/// `[k·b, (k+1)·b − d)`. Exact.
///
/// Series layout: series `0` is the baseline; series `1 + i` is the
/// `i`-th delta (request order), index-aligned with the baseline.
pub struct MicroVaried<'h, H, F> {
    hierarchy: &'h H,
    horizon: TimeSpan,
    base: TimeSpan,
    deltas: Vec<TimeSpan>,
    threshold: Threshold,
    measure: Measure,
    key: F,
}

impl<'h, H, F> MicroVaried<'h, H, F>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    /// Baseline windows of `base` length with variants shortened by
    /// each of `deltas` (all `< base`).
    pub fn new(
        hierarchy: &'h H,
        horizon: TimeSpan,
        base: TimeSpan,
        deltas: &[TimeSpan],
        threshold: Threshold,
        key: F,
    ) -> Self {
        assert!(!deltas.is_empty(), "need at least one delta");
        assert!(deltas.iter().all(|d| *d < base), "delta must be < base window");
        MicroVaried {
            hierarchy,
            horizon,
            base,
            deltas: deltas.to_vec(),
            threshold,
            measure: Measure::Bytes,
            key,
        }
    }

    /// Weigh packets by bytes (default) or packets.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }
}

impl<H, F> Engine for MicroVaried<'_, H, F>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    type In = PacketRecord;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        1 + self.deltas.len()
    }

    fn run<S: Source<Item = PacketRecord>, K: ReportSink<H::Prefix>>(
        self,
        source: S,
        sink: &mut K,
    ) {
        let base = self.base;
        let max_delta = *self.deltas.iter().max().expect("non-empty");
        let n_windows = self.horizon / base;
        let hierarchy = self.hierarchy;
        let threshold = self.threshold;
        // Delta series in ascending-delta order for incremental
        // subtraction, remembering each one's output series.
        let mut ordered: Vec<usize> = (0..self.deltas.len()).collect();
        ordered.sort_by_key(|&i| self.deltas[i]);
        let deltas = &self.deltas;

        let mut counts: HashMap<H::Item, u64> = HashMap::new();
        let mut total: u64 = 0;
        // Packets in the window's final `max_delta`, with their offset
        // from the window end (so variant subtraction is a filter, not
        // a scan of the whole window).
        let mut tail: Vec<(TimeSpan, H::Item, u64)> = Vec::new();
        let mut cur: u64 = 0;

        let ordered = &ordered;
        let flush = |cur: u64,
                     counts: &mut HashMap<H::Item, u64>,
                     total: &mut u64,
                     tail: &mut Vec<(TimeSpan, H::Item, u64)>,
                     sink: &mut K| {
            let start = Nanos::ZERO + base * cur;
            let end = start + base;
            sink.accept(0, exact_report(hierarchy, counts, *total, threshold, cur, start, end));
            // Subtract tail packets incrementally, smallest delta
            // first: each delta removes the packets in
            // (prev, delta] of offset-from-end.
            let mut variant_counts = counts.clone();
            let mut variant_total = *total;
            let mut tail_iter = {
                let mut t = core::mem::take(tail);
                t.sort_by_key(|e| e.0); // offset_from_end ascending
                t.into_iter().peekable()
            };
            for &vi in ordered {
                let delta = deltas[vi];
                while let Some(&(off, _, _)) = tail_iter.peek() {
                    // A packet with offset exactly `delta` sits at the
                    // variant's (exclusive) end boundary: excluded.
                    if off <= delta {
                        let (_, item, w) = tail_iter.next().expect("peeked");
                        let e = variant_counts.get_mut(&item).expect("tail item counted");
                        *e -= w;
                        variant_total -= w;
                        if *e == 0 {
                            variant_counts.remove(&item);
                        }
                    } else {
                        break;
                    }
                }
                sink.accept(
                    1 + vi,
                    exact_report(
                        hierarchy,
                        &variant_counts,
                        variant_total,
                        threshold,
                        cur,
                        start,
                        end - delta,
                    ),
                );
            }
            counts.clear();
            *total = 0;
        };

        let measure = self.measure;
        let key = &self.key;
        for_each_item(source, |p| {
            let w = p.ts.bin_index(base);
            if w >= n_windows {
                return false;
            }
            while cur < w {
                flush(cur, &mut counts, &mut total, &mut tail, sink);
                cur += 1;
            }
            let item = key(&p);
            let weight = measure.weight(&p);
            *counts.entry(item).or_default() += weight;
            total += weight;
            let window_end = Nanos::ZERO + base * (w + 1);
            let offset_from_end = window_end - p.ts;
            if offset_from_end <= max_delta {
                tail.push((offset_from_end, item, weight));
            }
            true
        });
        while cur < n_windows {
            flush(cur, &mut counts, &mut total, &mut tail, sink);
            cur += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Continuous
// ---------------------------------------------------------------------

/// A **windowless** (continuous) detector probed at arbitrary instants
/// (sorted ascending). Single series; entry `i` is probe `i`, with
/// `start == end == probes[i]`.
pub struct Continuous<H, C, F> {
    detector: C,
    probes: Vec<Nanos>,
    threshold: Threshold,
    measure: Measure,
    key: F,
    _hierarchy: PhantomData<H>,
}

impl<H, C, F> Continuous<H, C, F>
where
    H: Hierarchy,
    C: ContinuousDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    /// Probe `detector` at each of `probes` while streaming packets
    /// through it.
    pub fn new(detector: C, probes: &[Nanos], threshold: Threshold, key: F) -> Self {
        assert!(probes.windows(2).all(|w| w[0] <= w[1]), "probe instants must be sorted");
        Continuous {
            detector,
            probes: probes.to_vec(),
            threshold,
            measure: Measure::Bytes,
            key,
            _hierarchy: PhantomData,
        }
    }

    /// Weigh packets by bytes (default) or packets.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }
}

impl<H, C, F> Engine for Continuous<H, C, F>
where
    H: Hierarchy,
    C: ContinuousDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    type In = PacketRecord;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        1
    }

    fn run<S: Source<Item = PacketRecord>, K: ReportSink<H::Prefix>>(
        mut self,
        source: S,
        sink: &mut K,
    ) {
        let probes = &self.probes;
        let detector = &mut self.detector;
        let threshold = self.threshold;
        let mut next = 0usize;
        let probe = |next: usize, detector: &C, sink: &mut K| {
            sink.accept(
                0,
                WindowReport {
                    index: next as u64,
                    start: probes[next],
                    end: probes[next],
                    total: detector.decayed_total(probes[next]) as u64,
                    hhhs: detector.report_at(probes[next], threshold),
                },
            );
        };
        let measure = self.measure;
        let key = &self.key;
        for_each_item(source, |p| {
            while next < probes.len() && probes[next] <= p.ts {
                probe(next, detector, sink);
                next += 1;
            }
            detector.observe(p.ts, key(&p), measure.weight(&p));
            true
        });
        while next < probes.len() {
            probe(next, detector, sink);
            next += 1;
        }
    }
}

// ---------------------------------------------------------------------
// ShardedDisjoint
// ---------------------------------------------------------------------

/// Disjoint windows with ingestion hash-partitioned by key across one
/// worker thread per shard detector, fed in batches; at every boundary
/// the shard states are merged, the merged detector reports (and its
/// [`snapshot`](MergeableDetector::snapshot), when supported, goes to
/// the sink), and all shards reset.
///
/// With exact detectors the output is identical to [`Disjoint`] on the
/// same stream (merge is lossless); with approximate ones it is
/// identical up to the merge's additive error growth.
pub struct ShardedDisjoint<H, D, F> {
    detectors: Vec<D>,
    horizon: TimeSpan,
    window: TimeSpan,
    thresholds: Vec<Threshold>,
    batch: usize,
    measure: Measure,
    key: F,
    _hierarchy: PhantomData<H>,
}

impl<H, D, F> ShardedDisjoint<H, D, F>
where
    H: Hierarchy,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    /// One shard per detector in `detectors` (identically configured).
    pub fn new(
        detectors: Vec<D>,
        horizon: TimeSpan,
        window: TimeSpan,
        thresholds: &[Threshold],
        key: F,
    ) -> Self {
        assert!(!detectors.is_empty(), "need at least one shard detector");
        ShardedDisjoint {
            detectors,
            horizon,
            window,
            thresholds: thresholds.to_vec(),
            batch: DEFAULT_BATCH,
            measure: Measure::Bytes,
            key,
            _hierarchy: PhantomData,
        }
    }

    /// Packets per scatter batch (default
    /// [`DEFAULT_BATCH`](crate::sharded::DEFAULT_BATCH)).
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be non-zero");
        self.batch = batch;
        self
    }

    /// Weigh packets by bytes (default) or packets.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }
}

impl<H, D, F> Engine for ShardedDisjoint<H, D, F>
where
    H: Hierarchy,
    H::Item: Send,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    type In = PacketRecord;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        self.thresholds.len()
    }

    fn run<S: Source<Item = PacketRecord>, K: ReportSink<H::Prefix>>(
        self,
        source: S,
        sink: &mut K,
    ) {
        let n_windows = self.horizon / self.window;
        let window = self.window;
        let thresholds = &self.thresholds;
        let batch = self.batch;
        let measure = self.measure;
        let key = &self.key;

        with_shards(self.detectors, |pool| {
            let mut pending: Vec<(H::Item, u64)> = Vec::with_capacity(batch);
            let mut cur: u64 = 0;

            let flush_window = |cur: u64,
                                pending: &mut Vec<(H::Item, u64)>,
                                pool: &mut crate::sharded::ShardPool<H, D>,
                                sink: &mut K| {
                if !pending.is_empty() {
                    pool.observe_batch(pending);
                    pending.clear();
                }
                let merged = pool.merged_snapshot();
                let end = Nanos::ZERO + window * (cur + 1);
                for (ti, t) in thresholds.iter().enumerate() {
                    sink.accept(
                        ti,
                        WindowReport {
                            index: cur,
                            start: Nanos::ZERO + window * cur,
                            end,
                            total: merged.total(),
                            hhhs: merged.report(*t),
                        },
                    );
                }
                emit_state(sink, &merged, Nanos::ZERO + window * cur, end);
                pool.reset();
            };

            for_each_item(source, |p| {
                let w = p.ts.bin_index(window);
                if w >= n_windows {
                    return false; // time-sorted stream; the rest is partial tail
                }
                while cur < w {
                    flush_window(cur, &mut pending, pool, sink);
                    cur += 1;
                }
                pending.push((key(&p), measure.weight(&p)));
                if pending.len() >= batch {
                    pool.observe_batch(&pending);
                    pending.clear();
                }
                true
            });
            while cur < n_windows {
                flush_window(cur, &mut pending, pool, sink);
                cur += 1;
            }
        });
    }
}

// ---------------------------------------------------------------------
// ShardedSliding
// ---------------------------------------------------------------------

/// Sharded counterpart of [`SlidingExact`], generalized to **any
/// mergeable windowed detector**: a sliding window whose step divides
/// its length is a union of whole epochs, so each shard keeps a ring
/// of `window/step` detectors (one per in-window epoch) and the state
/// at any position is the merge of all rings across all shards.
///
/// With [`ExactHhh`](hhh_core::ExactHhh) shard detectors the output is
/// report-for-report identical to [`SlidingExact`]; approximate
/// mergeable detectors trade exactness for bounded state exactly as
/// they do in disjoint windows.
///
/// ## Per-position cost
///
/// The engine never re-merges the whole ring per position when the
/// detector kind supports [`retract`](MergeableDetector::retract) (the
/// exact kinds). It maintains one cross-shard **rolling** state — the
/// merge of every closed in-window epoch — and each step touches only
/// the epoch delta: workers hand back the *epoch that just closed*
/// (epoch-sized, `step/window` of the window state), which is merged
/// in; the epoch sliding out of the window is retracted. Per position
/// that is `O(shards)` epoch-sized merges plus one window-sized clone
/// for the report — down from the naive `shards × window/step`
/// window-sized merges, and independent of the window/step ratio.
///
/// At one shard the engine skips the cross-shard state: the worker's
/// own rolling detector already answers a window request in O(1)
/// window-sized ops and the reply is moved, not merged.
///
/// Detectors without `retract` (the lossy summaries, where merge order
/// matters) keep the full slot-order ring merge per position,
/// preserving their byte-for-byte report stability.
pub struct ShardedSliding<H, D, F> {
    rings: Vec<Vec<D>>,
    horizon: TimeSpan,
    window: TimeSpan,
    step: TimeSpan,
    thresholds: Vec<Threshold>,
    batch: usize,
    measure: Measure,
    force_ring_merge: bool,
    key: F,
    _hierarchy: PhantomData<H>,
}

impl<H, D, F> ShardedSliding<H, D, F>
where
    H: Hierarchy,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    /// `shards` shard rings of `window/step` detectors each, every
    /// detector built by `make(shard_index)` (identically configured —
    /// per-shard seeds are fine, the merge contracts allow it).
    pub fn new(
        shards: usize,
        make: impl Fn(usize) -> D,
        horizon: TimeSpan,
        window: TimeSpan,
        step: TimeSpan,
        thresholds: &[Threshold],
        key: F,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(!step.is_zero() && !window.is_zero(), "window and step must be non-zero");
        assert!(window % step == TimeSpan::ZERO, "step must divide the window length exactly");
        assert!(window <= horizon, "window longer than the horizon");
        let epw = (window / step) as usize;
        let rings = (0..shards).map(|s| (0..epw).map(|_| make(s)).collect()).collect();
        ShardedSliding {
            rings,
            horizon,
            window,
            step,
            thresholds: thresholds.to_vec(),
            batch: DEFAULT_BATCH,
            measure: Measure::Bytes,
            force_ring_merge: false,
            key,
            _hierarchy: PhantomData,
        }
    }

    /// Take the full slot-order ring merge at every position even for
    /// retractable kinds — the pre-incremental cost model. A
    /// **measurement knob**: the reports are identical either way (the
    /// parity tests pin both paths), this only exists so benchmarks can
    /// quantify what the incremental rolling state saves.
    pub fn force_ring_merge(mut self) -> Self {
        self.force_ring_merge = true;
        self
    }

    /// Packets per scatter batch (default
    /// [`DEFAULT_BATCH`](crate::sharded::DEFAULT_BATCH)).
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be non-zero");
        self.batch = batch;
        self
    }

    /// Weigh packets by bytes (default) or packets.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }
}

impl<H, D, F> Engine for ShardedSliding<H, D, F>
where
    H: Hierarchy,
    H::Item: Send,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    type In = PacketRecord;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        self.thresholds.len()
    }

    fn run<S: Source<Item = PacketRecord>, K: ReportSink<H::Prefix>>(
        self,
        source: S,
        sink: &mut K,
    ) {
        let epw = self.window / self.step;
        let n_epochs = self.horizon / self.step;
        let (window, step) = (self.window, self.step);
        let thresholds = &self.thresholds;
        let batch = self.batch;
        let measure = self.measure;
        let key = &self.key;

        // Probe invertibility once, on an empty detector (kinds either
        // always or never support retraction). When supported, `empty`
        // seeds the engine's cross-shard rolling state. At one shard
        // the worker's own rolling state already answers a window
        // request in O(1) window-sized ops and the reply is moved, not
        // merged — a cross-shard rolling state could only add work, so
        // the engine maintains one only when there are shard states to
        // fold.
        let shards = self.rings.len();
        let mut empty = self.rings[0][0].clone();
        empty.reset();
        let incremental = shards > 1 && !self.force_ring_merge && {
            let probe = empty.clone();
            empty.retract(&probe)
        };

        with_sliding_shards(self.rings, |pool| {
            let mut pending: Vec<(H::Item, u64)> = Vec::with_capacity(batch);
            let mut cur_epoch: u64 = 0;
            // Incremental path state: `rolling` is the merge of every
            // closed in-window epoch across all shards; `closed` holds
            // those cross-shard epoch states so the one sliding out of
            // the window can be retracted.
            let mut rolling = empty;
            let mut closed: VecDeque<D> = VecDeque::with_capacity(epw as usize);

            let emit = |cur_epoch: u64, merged: &D, sink: &mut K| {
                let position = cur_epoch + 1 - epw;
                let end = Nanos::ZERO + step * position + window;
                for (ti, t) in thresholds.iter().enumerate() {
                    sink.accept(
                        ti,
                        WindowReport {
                            index: position,
                            start: Nanos::ZERO + step * position,
                            end,
                            total: merged.total(),
                            hhhs: merged.report(*t),
                        },
                    );
                }
                emit_state(sink, merged, Nanos::ZERO + step * position, end);
            };

            let boundary = |cur_epoch: u64,
                            pending: &mut Vec<(H::Item, u64)>,
                            pool: &mut crate::sharded::SlidingShardPool<H, D>,
                            sink: &mut K,
                            rolling: &mut D,
                            closed: &mut VecDeque<D>| {
                if !pending.is_empty() {
                    pool.observe_batch(pending);
                    pending.clear();
                }
                let report = cur_epoch + 1 >= epw;
                if incremental {
                    // O(shards) epoch-sized merges: harvest the epoch
                    // that just closed (workers rotate as part of the
                    // same message) and fold it into the rolling state,
                    // which then *is* the window state — report from it
                    // by reference (no window-sized clone), and only
                    // then retract the epoch sliding out.
                    let epoch = pool.close_epoch();
                    rolling.merge(&epoch);
                    closed.push_back(epoch);
                    if report {
                        emit(cur_epoch, rolling, sink);
                    }
                    if closed.len() as u64 == epw {
                        let old = closed.pop_front().expect("just checked non-empty");
                        let ok = rolling.retract(&old);
                        debug_assert!(ok, "retract support cannot change mid-run");
                    }
                } else {
                    // Non-retractable fallback: full slot-order ring
                    // merge (stable for lossy summaries), then rotate.
                    if report {
                        emit(cur_epoch, &pool.merged_window(), sink);
                    }
                    pool.advance();
                }
            };

            for_each_item(source, |p| {
                let e = p.ts.bin_index(step);
                if e >= n_epochs {
                    return false;
                }
                while cur_epoch < e {
                    boundary(cur_epoch, &mut pending, pool, sink, &mut rolling, &mut closed);
                    cur_epoch += 1;
                }
                pending.push((key(&p), measure.weight(&p)));
                if pending.len() >= batch {
                    pool.observe_batch(&pending);
                    pending.clear();
                }
                true
            });
            while cur_epoch < n_epochs {
                boundary(cur_epoch, &mut pending, pool, sink, &mut rolling, &mut closed);
                cur_epoch += 1;
            }
        });
    }
}

// ---------------------------------------------------------------------
// ShardedContinuous
// ---------------------------------------------------------------------

/// Sharded counterpart of [`Continuous`]: ingestion hash-partitioned by
/// key across one worker thread per windowless shard detector; at each
/// probe instant the shard states are merged (decaying both sides to a
/// common time) and the merged detector answers — plus its
/// [`snapshot`](MergeableDetector::snapshot) when supported.
///
/// Requires a continuous detector that is also mergeable, e.g.
/// [`TdbfHhh`](hhh_core::TdbfHhh). Key-partitioning keeps per-prefix
/// decayed estimates additive across shards, so the merged report
/// matches the unsharded detector's (bit-exactly at one shard;
/// set-identically at several, where float summation order may differ
/// in the last ulp).
pub struct ShardedContinuous<H, C, F> {
    detectors: Vec<C>,
    probes: Vec<Nanos>,
    threshold: Threshold,
    batch: usize,
    measure: Measure,
    key: F,
    _hierarchy: PhantomData<H>,
}

impl<H, C, F> ShardedContinuous<H, C, F>
where
    H: Hierarchy,
    C: ContinuousDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    /// One shard per detector in `detectors` (identically configured).
    pub fn new(detectors: Vec<C>, probes: &[Nanos], threshold: Threshold, key: F) -> Self {
        assert!(!detectors.is_empty(), "need at least one shard detector");
        assert!(probes.windows(2).all(|w| w[0] <= w[1]), "probe instants must be sorted");
        ShardedContinuous {
            detectors,
            probes: probes.to_vec(),
            threshold,
            batch: DEFAULT_BATCH,
            measure: Measure::Bytes,
            key,
            _hierarchy: PhantomData,
        }
    }

    /// Packets per scatter batch (default
    /// [`DEFAULT_BATCH`](crate::sharded::DEFAULT_BATCH)).
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be non-zero");
        self.batch = batch;
        self
    }

    /// Weigh packets by bytes (default) or packets.
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }
}

impl<H, C, F> Engine for ShardedContinuous<H, C, F>
where
    H: Hierarchy,
    H::Item: Send,
    C: ContinuousDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    type In = PacketRecord;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        1
    }

    fn run<S: Source<Item = PacketRecord>, K: ReportSink<H::Prefix>>(
        self,
        source: S,
        sink: &mut K,
    ) {
        let probes = &self.probes;
        let threshold = self.threshold;
        let batch = self.batch;
        let measure = self.measure;
        let key = &self.key;

        with_continuous_shards(self.detectors, |pool| {
            let mut pending: Vec<(Nanos, H::Item, u64)> = Vec::with_capacity(batch);
            let mut next = 0usize;

            let probe = |next: usize,
                         pending: &mut Vec<(Nanos, H::Item, u64)>,
                         pool: &mut crate::sharded::ContinuousShardPool<H, C>,
                         sink: &mut K| {
                if !pending.is_empty() {
                    pool.observe_batch(pending);
                    pending.clear();
                }
                let merged = pool.merged_snapshot();
                sink.accept(
                    0,
                    WindowReport {
                        index: next as u64,
                        start: probes[next],
                        end: probes[next],
                        total: merged.decayed_total(probes[next]) as u64,
                        hhhs: merged.report_at(probes[next], threshold),
                    },
                );
                // Windowless probe: the state covers "now"; start and
                // report point coincide.
                emit_state(sink, &merged, probes[next], probes[next]);
            };

            for_each_item(source, |p| {
                while next < probes.len() && probes[next] <= p.ts {
                    probe(next, &mut pending, pool, sink);
                    next += 1;
                }
                pending.push((p.ts, key(&p), measure.weight(&p)));
                if pending.len() >= batch {
                    pool.observe_batch(&pending);
                    pending.clear();
                }
                true
            });
            while next < probes.len() {
                probe(next, &mut pending, pool, sink);
                next += 1;
            }
        });
    }
}

// ---------------------------------------------------------------------
// FoldSnapshots
// ---------------------------------------------------------------------

/// Replay a pipeline from **previously captured detector snapshots**
/// instead of packets: the engine consumes [`WireSnapshot`]s (what a
/// [`SnapshotSource`](crate::SnapshotSource) yields from a stream in
/// either wire format), folds every snapshot taken at the same report
/// point into one restored detector with the round-trip codec, and
/// emits the merged report — the in-process face of cross-process
/// aggregation (`hhh-agg` drives the same fold over many streams at
/// once). Binary (v2) snapshots decode straight into detectors, no
/// JSON detour.
///
/// Snapshots must arrive grouped by report point (`at`
/// non-decreasing — **enforced**: an out-of-order snapshot panics, so
/// concatenating shard streams cannot silently masquerade as merging
/// them), which any stream a `SnapshotSink` wrote already satisfies;
/// interleave K shard streams by merging them sorted by `at` (or let
/// `hhh-agg` do it). One series per threshold. Report `index` is the
/// 0-based report-point ordinal; `start`/`end` are the window bounds
/// the snapshots carry (`start == end == at` only for windowless
/// probes and pre-geometry v1 streams).
///
/// Folding applies the in-process merge algebra, so mixed kinds or
/// mismatched configurations at one report point are programmer error —
/// the engine panics with the underlying
/// [`SnapshotError`](hhh_core::SnapshotError), exactly as the
/// in-process merges panic on mismatched configuration. Use `hhh-agg`
/// for the error-returning flavor.
pub struct FoldSnapshots<'h, H> {
    hierarchy: &'h H,
    thresholds: Vec<Threshold>,
}

impl<'h, H: Hierarchy> FoldSnapshots<'h, H> {
    /// Fold snapshots over `hierarchy`, reporting each of `thresholds`
    /// (one output series per threshold, same order).
    pub fn new(hierarchy: &'h H, thresholds: &[Threshold]) -> Self {
        assert!(!thresholds.is_empty(), "need at least one threshold");
        FoldSnapshots { hierarchy, thresholds: thresholds.to_vec() }
    }
}

impl<H> Engine for FoldSnapshots<'_, H>
where
    H: Hierarchy,
    H::Item: FromStr,
    H::Prefix: FromStr,
{
    type In = WireSnapshot;
    type Prefix = H::Prefix;

    fn series(&self) -> usize {
        self.thresholds.len()
    }

    fn run<S: Source<Item = WireSnapshot>, K: ReportSink<H::Prefix>>(
        self,
        source: S,
        sink: &mut K,
    ) {
        let hierarchy = self.hierarchy;
        let thresholds = &self.thresholds;
        // Per-kind report ordinals — the same numbering `hhh-agg`
        // renders, so `index` means "this kind's n-th report point" on
        // both paths.
        let mut ordinals: Vec<(&'static str, u64)> = Vec::new();
        // All the folds in flight at the current report point, one per
        // detector kind in first-seen order — a stream may carry
        // several kinds side by side (hhh-agg accepts the same). Each
        // fold keeps the window start its first snapshot carried.
        let mut at: Option<Nanos> = None;
        let mut folds: Vec<(Nanos, RestoredDetector<H>)> = Vec::new();

        let flush = |ordinals: &mut Vec<(&'static str, u64)>,
                     at: Nanos,
                     folds: &mut Vec<(Nanos, RestoredDetector<H>)>,
                     sink: &mut K| {
            for (start, merged) in folds.drain(..) {
                let kind = merged.kind();
                let index = match ordinals.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, n)) => n,
                    None => {
                        ordinals.push((kind, 0));
                        &mut ordinals.last_mut().expect("just pushed").1
                    }
                };
                for (ti, t) in thresholds.iter().enumerate() {
                    sink.accept(
                        ti,
                        WindowReport {
                            index: *index,
                            start,
                            end: at,
                            total: merged.total(),
                            hhhs: merged.report(at, *t),
                        },
                    );
                }
                if sink.wants_frames() {
                    match merged.to_frame(start, at) {
                        Ok(frame) => sink.state_frame(&frame),
                        Err(e) => panic!("re-encoding a folded state at {at}: {e}"),
                    }
                } else {
                    sink.state(start, at, &merged.snapshot());
                }
                *index += 1;
            }
        };

        for_each_item(source, |s: WireSnapshot| {
            if at != Some(s.at()) {
                if let Some(prev) = at {
                    assert!(
                        s.at() > prev,
                        "snapshots must arrive grouped by report point: {} after {prev} \
                         (concatenated shard streams? interleave them sorted by at, \
                         or use hhh-agg)",
                        s.at(),
                    );
                    flush(&mut ordinals, prev, &mut folds, sink);
                }
                at = Some(s.at());
            }
            match folds.iter_mut().find(|(_, f)| f.kind() == s.kind()) {
                Some((_, merged)) => merged
                    .fold_wire(hierarchy, &s)
                    .unwrap_or_else(|e| panic!("snapshot fold at {}: {e}", s.at())),
                None => folds.push((
                    s.start(),
                    RestoredDetector::from_wire(hierarchy, &s)
                        .unwrap_or_else(|e| panic!("snapshot restore at {}: {e}", s.at())),
                )),
            }
            true
        });
        if let Some(prev) = at {
            flush(&mut ordinals, prev, &mut folds, sink);
        }
    }
}
