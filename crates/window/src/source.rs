//! Pipeline sources: where a [`Pipeline`](crate::Pipeline) pulls its
//! input stream from.
//!
//! The pipeline consumes its input **chunk at a time** through the
//! generic [`Source`] trait, which keeps the engine loop batch-friendly
//! (one virtual call per chunk, not per item) and makes the source
//! swappable. A source carries its item type: packet engines consume
//! `Source<Item = PacketRecord>` ([`PacketSource`] is the alias bound),
//! and the snapshot-fold engine consumes
//! `Source<Item = WireSnapshot>` — previously captured detector
//! states replayed off the wire (v1 JSON lines or v2 binary frames).
//!
//! * any `Iterator` is a source of its items (blanket impl) —
//!   generated traces, slices, adapters;
//! * [`ChannelSource`] is fed by a [`PacketFeeder`] over a **bounded**
//!   channel, so threads, sockets, or a pcap tail can push packets into
//!   a running pipeline with back-pressure: when the analysis side
//!   falls behind, `send` blocks instead of buffering unboundedly;
//! * [`SnapshotSource`] reads a snapshot stream in either wire format
//!   (what a [`SnapshotSink`](crate::SnapshotSink) wrote, or what
//!   `hhh-agg` re-emitted), sniffing v1 JSONL vs v2 binary frames off
//!   the first byte, and yields the [`WireSnapshot`]s in it;
//! * `hhh-pcap` provides chunked file sources (`PcapSource`,
//!   `NativeSource`) over the capture formats.
//!
//! Packet sources must yield packets in non-decreasing timestamp order
//! — the same contract the window drivers have always had. Snapshot
//! sources must yield snapshots in non-decreasing `at` order (JSONL
//! files written by a pipeline already are).

use hhh_core::snapshot::binary::{self, SnapshotFrame, FRAME_HEADER_LEN, REPORT_KIND};
use hhh_core::{parse_state_line, SnapshotError, WireFormat, WireSnapshot};
use hhh_nettypes::PacketRecord;
use std::io::BufRead;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::time::Instant;

/// Default items per chunk pulled from a source. Matches the sharded
/// pipeline's batch sizing rationale: large enough to amortize per-chunk
/// overhead, small enough to stay cache-resident.
pub const DEFAULT_CHUNK: usize = 8192;

/// A pull-based, chunked stream of items.
///
/// Blanket-implemented for every `Iterator` (generated traces, slices,
/// `hhh-pcap`'s file sources, [`SnapshotSource`]), so most concrete
/// source types only implement `Iterator` and inherit the chunked
/// protocol. Sources with their own latency story — like
/// [`ChannelSource`], which must hand over partial chunks rather than
/// block a live feed — implement `pull_chunk` directly.
pub trait Source {
    /// The item type the source yields (what the engine's
    /// [`Engine::In`](crate::Engine::In) must match).
    type Item;

    /// Append the next chunk of items to `buf` (the caller hands in
    /// an empty buffer) and return `true`, or return `false` when the
    /// stream is exhausted. Implementations choose their own chunk
    /// size; an implementation must not return `true` with an empty
    /// `buf`.
    fn pull_chunk(&mut self, buf: &mut Vec<Self::Item>) -> bool;
}

/// Every iterator is a source of its items: chunks of [`DEFAULT_CHUNK`].
impl<I: Iterator> Source for I {
    type Item = I::Item;

    fn pull_chunk(&mut self, buf: &mut Vec<I::Item>) -> bool {
        buf.extend(self.by_ref().take(DEFAULT_CHUNK));
        !buf.is_empty()
    }
}

/// A [`Source`] of time-sorted [`PacketRecord`]s — the bound every
/// packet-consuming engine states. Blanket-implemented, never
/// implemented by hand: implement [`Source`] (or just `Iterator`) and
/// this alias follows.
pub trait PacketSource: Source<Item = PacketRecord> {}

impl<T: Source<Item = PacketRecord>> PacketSource for T {}

/// Create a bounded feeder/source pair: the [`PacketFeeder`] half goes
/// to the producing thread (socket reader, pcap tail, generator), the
/// [`ChannelSource`] half goes to [`Pipeline::new`](crate::Pipeline).
///
/// `capacity` is the number of in-flight *batches* (of up to `batch`
/// packets each) the queue holds before `send` blocks — the
/// back-pressure bound. Total buffered packets ≤ `capacity × batch`.
///
/// ```
/// use hhh_window::source::bounded;
///
/// let (mut feeder, source) = bounded(4, 1024);
/// let producer = std::thread::spawn(move || {
///     use hhh_nettypes::{Nanos, PacketRecord};
///     for i in 0..10_000u64 {
///         feeder.send(PacketRecord::new(Nanos::from_micros(i), i as u32, 1, 100));
///     }
///     // feeder drops here: flushes the tail and closes the stream.
/// });
/// use hhh_window::Source;
/// let mut source = source;
/// let mut n = 0usize;
/// let mut buf = Vec::new();
/// while source.pull_chunk(&mut buf) {
///     n += buf.len();
///     buf.clear();
/// }
/// producer.join().unwrap();
/// assert_eq!(n, 10_000);
/// ```
pub fn bounded(capacity: usize, batch: usize) -> (PacketFeeder, ChannelSource) {
    assert!(capacity > 0, "channel capacity must be non-zero");
    assert!(batch > 0, "batch size must be non-zero");
    let (tx, rx) = sync_channel(capacity);
    (
        PacketFeeder { tx, buf: Vec::with_capacity(batch), batch, stats: FeederStats::default() },
        ChannelSource { rx },
    )
}

/// What a [`PacketFeeder`] observed about its own sending — the
/// producer-side view of the back-pressure seam. `stall_seconds` is
/// time spent blocked on a full channel: zero means the pipeline kept
/// up with the offered rate; anything else is how far past saturation
/// the producer pushed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FeederStats {
    /// Packets that reached the channel (buffered tail not yet
    /// flushed is excluded).
    pub packets: u64,
    /// Batches pushed down the channel.
    pub batches: u64,
    /// Seconds spent blocked in `send`/`flush` on a full channel.
    pub stall_seconds: f64,
}

/// The producing half of [`bounded`]: buffers packets into batches and
/// pushes them down the bounded channel, blocking when the pipeline is
/// `capacity` batches behind.
pub struct PacketFeeder {
    tx: SyncSender<Vec<PacketRecord>>,
    buf: Vec<PacketRecord>,
    batch: usize,
    stats: FeederStats,
}

impl PacketFeeder {
    /// Queue one packet; blocks on a full channel (back-pressure).
    /// Returns `false` when the consuming pipeline has hung up (the
    /// producer should stop).
    pub fn send(&mut self, p: PacketRecord) -> bool {
        self.buf.push(p);
        if self.buf.len() >= self.batch {
            return self.flush();
        }
        true
    }

    /// Queue a whole batch (chunked internally).
    pub fn send_batch(&mut self, packets: &[PacketRecord]) -> bool {
        for &p in packets {
            if !self.send(p) {
                return false;
            }
        }
        true
    }

    /// Push any buffered packets now instead of waiting for a full
    /// batch. Returns `false` when the consumer has hung up.
    pub fn flush(&mut self) -> bool {
        if self.buf.is_empty() {
            return true;
        }
        let send = std::mem::replace(&mut self.buf, Vec::with_capacity(self.batch));
        let n = send.len() as u64;
        // Try the fast path first so an uncontended send pays no clock
        // reads; only a full channel starts the stall stopwatch.
        let ok = match self.tx.try_send(send) {
            Ok(()) => true,
            Err(TrySendError::Full(send)) => {
                let blocked = Instant::now();
                let ok = self.tx.send(send).is_ok();
                self.stats.stall_seconds += blocked.elapsed().as_secs_f64();
                ok
            }
            Err(TrySendError::Disconnected(_)) => false,
        };
        if ok {
            self.stats.packets += n;
            self.stats.batches += 1;
        }
        ok
    }

    /// The feeder's send/stall counters so far.
    pub fn stats(&self) -> FeederStats {
        self.stats
    }
}

impl Drop for PacketFeeder {
    /// Flush the buffered tail so dropping the feeder cleanly ends the
    /// stream (the channel closes when the last sender drops).
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// The consuming half of [`bounded`]: a [`Source`] over the fed
/// packets, ending when the last [`PacketFeeder`] is dropped.
///
/// Each [`pull_chunk`](Source::pull_chunk) **blocks only for the
/// first queued batch** (an empty queue with live feeders means the
/// producer is slower than the pipeline — wait, don't spin), then
/// drains whatever else is already queued without blocking. A slow
/// feeder therefore never delays reports for windows that have already
/// closed: every fed batch reaches the engine as soon as the engine
/// asks, rather than once [`DEFAULT_CHUNK`] packets accumulate.
pub struct ChannelSource {
    rx: Receiver<Vec<PacketRecord>>,
}

impl Source for ChannelSource {
    type Item = PacketRecord;

    fn pull_chunk(&mut self, buf: &mut Vec<PacketRecord>) -> bool {
        // Block for the first non-empty batch (feeders never send
        // empty ones; the guard is defensive).
        let first = loop {
            match self.rx.recv() {
                Ok(batch) if batch.is_empty() => continue,
                Ok(batch) => break batch,
                Err(_) => return false,
            }
        };
        if buf.is_empty() {
            *buf = first;
        } else {
            buf.extend_from_slice(&first);
        }
        // Opportunistically drain what is already queued.
        while buf.len() < DEFAULT_CHUNK {
            match self.rx.try_recv() {
                Ok(batch) => buf.extend_from_slice(&batch),
                Err(_) => break,
            }
        }
        true
    }
}

/// One record of a snapshot stream, either wire format.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamRecord {
    /// A report record: the `{"type":"report",…}` JSON line it renders
    /// as (binary streams carry the line verbatim inside a frame).
    Report(String),
    /// A state record (a v1 line or a v2 frame, undecoded).
    State(WireSnapshot),
}

/// A [`Source`] of [`WireSnapshot`]s read from a snapshot stream —
/// the decode side of what [`SnapshotSink`](crate::SnapshotSink)
/// writes, in **either** wire format.
///
/// The format is sniffed from the first byte: v1 JSONL starts with
/// `{` (or whitespace), v2 binary with the frame magic. `report`
/// records riding in the same stream are skipped by the iterator
/// (use [`next_record`](Self::next_record) to see them, e.g. for
/// transcoding); `state` records are yielded undecoded, so the fold
/// path can go binary body → detector without a JSON detour. The
/// stream ends at end-of-input **or at the first malformed record**:
/// engines cannot carry errors, so the error is kept for inspection
/// via [`error`](Self::error) — strict callers (like `hhh-agg`) check
/// it after the run, the way the pcap sources expose torn captures.
///
/// Feed the pipeline `&mut source` (every `&mut Iterator` is itself an
/// iterator, hence a source) so `error()` is still reachable after the
/// run.
pub struct SnapshotSource<R: BufRead> {
    input: R,
    format: Option<WireFormat>,
    line: String,
    /// 1-based record ordinal (line number for JSONL, frame ordinal
    /// for binary).
    line_no: usize,
    error: Option<(usize, SnapshotError)>,
}

impl SnapshotSource<std::io::BufReader<std::fs::File>> {
    /// Open a snapshot stream file at `path` — the path-based thin
    /// wrapper over the file transport. For sockets and channels use
    /// [`TransportSource`](crate::TransportSource) over the matching
    /// [`transport`](crate::transport) instead.
    pub fn open(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufReader::new(std::fs::File::open(path)?)))
    }
}

impl<R: BufRead> SnapshotSource<R> {
    /// Read snapshots from a buffered reader (a file, stdin, a
    /// `&[u8]`…).
    pub fn new(input: R) -> Self {
        SnapshotSource { input, format: None, line: String::new(), line_no: 0, error: None }
    }

    /// The first decode error, with its 1-based record number —
    /// `None` after a clean end-of-stream. I/O errors surface as
    /// [`SnapshotError::Transport`] (typed by [`std::io::ErrorKind`]).
    pub fn error(&self) -> Option<&(usize, SnapshotError)> {
        self.error.as_ref()
    }

    /// The sniffed wire format — `None` until the first record (or
    /// byte) has been read.
    pub fn format(&self) -> Option<WireFormat> {
        self.format
    }

    /// 1-based ordinal of the most recently read record (line number
    /// for JSONL, frame ordinal for binary) — what error reports
    /// should point at.
    pub fn record_no(&self) -> usize {
        self.line_no
    }

    fn fail(&mut self, e: SnapshotError) -> Option<StreamRecord> {
        self.error = Some((self.line_no.max(1), e));
        None
    }

    /// Sniff the stream format off the first buffered byte. Anything
    /// that cannot start a JSON line is handed to the frame decoder,
    /// which reports garbage as a bad-magic error.
    fn sniff(&mut self) -> Result<Option<WireFormat>, SnapshotError> {
        let buf = self.input.fill_buf().map_err(|e| SnapshotError::transport("read", &e))?;
        Ok(match buf.first() {
            None => None, // empty stream
            Some(b'{' | b' ' | b'\t' | b'\r' | b'\n') => Some(WireFormat::Json),
            Some(_) => Some(WireFormat::Binary),
        })
    }

    /// Read up to `buf.len()` bytes, tolerating short reads (the fill
    /// loop shared with the transports). Returns the bytes actually
    /// read (0 = clean end of stream).
    fn read_fully(&mut self, buf: &mut [u8]) -> Result<usize, SnapshotError> {
        crate::transport::fill_from(&mut self.input, buf)
            .map_err(|e| SnapshotError::transport("read", &e))
    }

    /// The next record of the stream (reports included), or `None` at
    /// end-of-stream / first error.
    pub fn next_record(&mut self) -> Option<StreamRecord> {
        self.next_impl(true)
    }

    /// `want_reports = false` is the fold path: report records are
    /// still validated but skipped without materializing their line
    /// (no per-report allocation on the hot iterator).
    fn next_impl(&mut self, want_reports: bool) -> Option<StreamRecord> {
        if self.error.is_some() {
            return None;
        }
        if self.format.is_none() {
            match self.sniff() {
                Ok(None) => return None,
                Ok(some) => self.format = some,
                Err(e) => return self.fail(e),
            }
        }
        match self.format.expect("sniffed above") {
            WireFormat::Json => self.next_json_record(want_reports),
            WireFormat::Binary => loop {
                match self.next_frame_record(want_reports) {
                    Some(None) => continue, // skipped report frame
                    Some(Some(record)) => return Some(record),
                    None => return None,
                }
            },
        }
    }

    fn next_json_record(&mut self, want_reports: bool) -> Option<StreamRecord> {
        loop {
            self.line.clear();
            self.line_no += 1;
            match self.input.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => {
                    return self.fail(SnapshotError::transport("read", &e));
                }
            }
            let text = self.line.trim();
            if text.is_empty() {
                continue;
            }
            match parse_state_line(text) {
                Ok(Some(s)) => return Some(StreamRecord::State(WireSnapshot::Json(s))),
                Ok(None) if want_reports => return Some(StreamRecord::Report(text.to_string())),
                Ok(None) => continue, // report line, fold path: no copy
                Err(e) => {
                    let line_no = self.line_no;
                    self.error = Some((line_no, e));
                    return None;
                }
            }
        }
    }

    /// One frame: `None` = end/error, `Some(None)` = validated report
    /// frame the caller did not ask for.
    fn next_frame_record(&mut self, want_reports: bool) -> Option<Option<StreamRecord>> {
        self.line_no += 1;
        let mut header = [0u8; FRAME_HEADER_LEN];
        match self.read_fully(&mut header) {
            Ok(0) => return None, // clean end at a frame boundary
            Ok(n) if n < FRAME_HEADER_LEN => {
                self.fail(SnapshotError::Parse { offset: n, what: "truncated frame" });
                return None;
            }
            Ok(_) => {}
            Err(e) => {
                self.fail(e);
                return None;
            }
        }
        let len = match binary::payload_len(&header) {
            Ok(len) => len,
            Err(e) => {
                self.fail(e);
                return None;
            }
        };
        let mut payload = vec![0u8; len];
        match self.read_fully(&mut payload) {
            Ok(n) if n < len => {
                self.fail(SnapshotError::Parse { offset: n, what: "truncated frame" });
                return None;
            }
            Ok(_) => {}
            Err(e) => {
                self.fail(e);
                return None;
            }
        }
        let frame = match SnapshotFrame::decode_payload(&payload) {
            Ok(frame) => frame,
            Err(e) => {
                self.fail(e);
                return None;
            }
        };
        if frame.kind == REPORT_KIND {
            match frame.report_line() {
                Ok(line) if want_reports => Some(Some(StreamRecord::Report(line.to_string()))),
                Ok(_) => Some(None), // validated, fold path: no copy
                Err(e) => {
                    self.fail(e);
                    None
                }
            }
        } else {
            Some(Some(StreamRecord::State(WireSnapshot::Binary(frame))))
        }
    }
}

impl<R: BufRead> Iterator for SnapshotSource<R> {
    type Item = WireSnapshot;

    fn next(&mut self) -> Option<WireSnapshot> {
        loop {
            match self.next_impl(false)? {
                StreamRecord::State(s) => return Some(s),
                StreamRecord::Report(_) => continue, // unreachable with want_reports=false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_nettypes::Nanos;

    fn pkt(i: u64) -> PacketRecord {
        PacketRecord::new(Nanos::from_micros(i), i as u32, 1, 100)
    }

    #[test]
    fn iterator_source_chunks_everything() {
        let pkts: Vec<PacketRecord> = (0..20_000).map(pkt).collect();
        let mut src = pkts.iter().copied();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while src.pull_chunk(&mut buf) {
            assert!(!buf.is_empty());
            assert!(buf.len() <= DEFAULT_CHUNK);
            got.append(&mut buf);
        }
        assert_eq!(got, pkts);
    }

    #[test]
    fn channel_source_delivers_in_order_and_ends() {
        let (mut feeder, mut source) = bounded(2, 64);
        let handle = std::thread::spawn(move || {
            for i in 0..1000 {
                assert!(feeder.send(pkt(i)));
            }
        });
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while source.pull_chunk(&mut buf) {
            got.append(&mut buf);
        }
        handle.join().unwrap();
        assert_eq!(got.len(), 1000);
        assert!(got.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn drop_without_flush_still_delivers_tail() {
        let (mut feeder, mut source) = bounded(4, 100);
        for i in 0..42 {
            feeder.send(pkt(i)); // never fills a batch
        }
        drop(feeder);
        let mut buf = Vec::new();
        assert!(source.pull_chunk(&mut buf));
        assert_eq!(buf.len(), 42);
        buf.clear();
        assert!(!source.pull_chunk(&mut buf));
    }

    #[test]
    fn channel_source_hands_over_partial_chunks_without_waiting() {
        // The live-feed latency contract: once a batch is queued, a
        // pull must return it even though the feeder is still alive
        // and far fewer than DEFAULT_CHUNK packets exist.
        let (mut feeder, mut source) = bounded(4, 10);
        for i in 0..10 {
            assert!(feeder.send(pkt(i))); // 10th send flushes the batch
        }
        let mut buf = Vec::new();
        assert!(source.pull_chunk(&mut buf), "queued batch must be delivered");
        assert_eq!(buf.len(), 10, "partial chunk handed over, not held for DEFAULT_CHUNK");
        drop(feeder);
        buf.clear();
        assert!(!source.pull_chunk(&mut buf));
    }

    #[test]
    fn feeder_stats_count_packets_and_stall_time() {
        let (mut feeder, mut source) = bounded(1, 10);
        for i in 0..10 {
            assert!(feeder.send(pkt(i))); // fills the only slot
        }
        let stats = feeder.stats();
        assert_eq!(stats.packets, 10);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.stall_seconds, 0.0, "uncontended sends must not count as stall");
        // The channel is full: the next flush must block until the
        // consumer drains, and the blocked time must be recorded.
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            let mut buf = Vec::new();
            while source.pull_chunk(&mut buf) {
                buf.clear();
            }
        });
        for i in 10..20 {
            assert!(feeder.send(pkt(i)));
        }
        let stats = feeder.stats();
        assert_eq!(stats.packets, 20);
        assert_eq!(stats.batches, 2);
        assert!(stats.stall_seconds > 0.04, "blocked send must register: {stats:?}");
        drop(feeder);
        consumer.join().unwrap();
    }

    #[test]
    fn hung_up_consumer_reported_to_feeder() {
        let (mut feeder, source) = bounded(1, 1);
        drop(source);
        assert!(!feeder.send(pkt(0)), "send into a dropped source must report hang-up");
    }

    #[test]
    fn snapshot_source_reads_state_lines_and_skips_reports() {
        let text = "\
{\"type\":\"report\",\"series\":0,\"index\":0,\"start_ns\":0,\"end_ns\":1,\"total\":5,\"hhhs\":[]}\n\
{\"type\":\"state\",\"at_ns\":1000000000,\"snapshot\":{\"v\":1,\"kind\":\"exact\",\"total\":5,\
\"state\":{\"counts\":[[\"7\",5]]}}}\n\
\n\
{\"type\":\"state\",\"at_ns\":2000000000,\"start_ns\":1000000000,\"snapshot\":{\"v\":1,\
\"kind\":\"exact\",\"total\":9,\"state\":{\"counts\":[[\"7\",9]]}}}\n";
        let mut src = SnapshotSource::new(text.as_bytes());
        let got: Vec<WireSnapshot> = (&mut src).collect();
        assert!(src.error().is_none());
        assert_eq!(src.format(), Some(WireFormat::Json));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].at(), Nanos::from_secs(1));
        assert_eq!(got[0].start(), Nanos::from_secs(1), "missing start_ns defaults to at");
        assert_eq!(got[0].total(), 5);
        assert_eq!(got[1].at(), Nanos::from_secs(2));
        assert_eq!(got[1].start(), Nanos::from_secs(1));
        assert_eq!(got[1].kind(), "exact");
    }

    #[test]
    fn snapshot_source_stops_at_garbage_and_reports_the_line() {
        let text = "{\"type\":\"report\",\"series\":0}\nnot json\n";
        let mut src = SnapshotSource::new(text.as_bytes());
        assert_eq!((&mut src).count(), 0);
        let (line, err) = src.error().expect("garbage must be reported");
        assert_eq!(*line, 2);
        assert!(matches!(err, SnapshotError::Parse { .. }));
    }

    #[test]
    fn snapshot_source_sniffs_and_reads_binary_frames() {
        use hhh_core::DetectorSnapshot;
        let snap = DetectorSnapshot {
            kind: "exact".into(),
            total: 5,
            state_json: "{\"counts\":[[\"7\",5]]}".into(),
        };
        let mut bytes = Vec::new();
        bytes.extend_from_slice(
            &SnapshotFrame::report(
                "{\"type\":\"report\",\"series\":0}",
                Nanos::ZERO,
                Nanos::ZERO,
                5,
            )
            .encode(),
        );
        bytes.extend_from_slice(&snap.to_frame(Nanos::ZERO, Nanos::from_secs(1)).unwrap().encode());
        let mut src = SnapshotSource::new(bytes.as_slice());
        let got: Vec<WireSnapshot> = (&mut src).collect();
        assert!(src.error().is_none(), "{:?}", src.error());
        assert_eq!(src.format(), Some(WireFormat::Binary));
        assert_eq!(got.len(), 1, "report frames are skipped by the iterator");
        assert_eq!(got[0].kind(), "exact");
        assert_eq!(got[0].at(), Nanos::from_secs(1));
        assert_eq!(got[0].to_stamped().unwrap().snapshot, snap);
    }

    #[test]
    fn snapshot_source_reports_binary_garbage_and_truncation() {
        // Garbage bytes sniff as binary and fail with a bad magic.
        let mut src = SnapshotSource::new(&b"nonsense bytes"[..]);
        assert_eq!((&mut src).count(), 0);
        let (_, err) = src.error().expect("garbage must be reported");
        assert_eq!(*err, SnapshotError::Parse { offset: 0, what: "bad frame magic" });

        // A frame cut mid-payload is a truncation error, not a hang.
        let snap = hhh_core::DetectorSnapshot {
            kind: "exact".into(),
            total: 5,
            state_json: "{\"counts\":[[\"7\",5]]}".into(),
        };
        let full = snap.to_frame(Nanos::ZERO, Nanos::ZERO).unwrap().encode();
        let mut src = SnapshotSource::new(&full[..full.len() - 3]);
        assert_eq!((&mut src).count(), 0);
        let (_, err) = src.error().expect("truncation must be reported");
        assert!(matches!(err, SnapshotError::Parse { what: "truncated frame", .. }), "{err:?}");
    }
}
