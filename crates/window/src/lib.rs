//! # hhh-window
//!
//! The window execution engine: everything Figure 1 of the paper
//! sketches, as one composable **pipeline**.
//!
//! ```text
//! Pipeline::new(source).engine(engine).sink(sink).run()
//! ```
//!
//! * **Sources** ([`source`]) — any `Iterator` ([`Source`] is generic
//!   over its item type): packet iterators (generated traces, slices),
//!   a bounded channel with back-pressure fed from other threads
//!   ([`source::bounded`]), the chunked capture-file sources in
//!   `hhh-pcap`, or [`SnapshotSource`] replaying previously captured
//!   detector snapshots off a JSONL stream.
//! * **Engines** ([`pipeline`]) — the window model × execution
//!   strategy:
//!   [`Disjoint`] resets the detector at every boundary (the practice
//!   the paper critiques); [`SlidingExact`] evaluates every sliding
//!   position exactly via rolling per-epoch counts; [`MicroVaried`]
//!   evaluates a baseline window length against slightly-shorter
//!   variants in one pass (Fig. 3's setup); [`Continuous`] probes a
//!   windowless detector at arbitrary instants; and the multi-core
//!   [`ShardedDisjoint`], [`ShardedSliding`] and [`ShardedContinuous`]
//!   hash-partition the stream by key across worker threads and merge
//!   shard states at report points ([`sharded`] holds the thread
//!   pools); [`FoldSnapshots`] consumes *snapshots* instead of packets
//!   and folds every report point's states with the round-trip codec —
//!   cross-process aggregation as a pipeline stage (the `hhh-agg`
//!   crate drives the same fold over many streams).
//! * **Sinks** ([`sink`]) — collect to `Vec`s ([`CollectSink`]),
//!   stream into a closure ([`FnSink`]), or write the snapshot wire
//!   stream — serialized merged-detector state for cross-process
//!   aggregation — in either format ([`SnapshotSink`]): v1 JSON lines
//!   or v2 binary frames (the hot aggregation path).
//! * **Transports** ([`transport`]) — the snapshot stream over any
//!   medium behind one [`FrameWrite`]/[`FrameRead`] interface: files
//!   ([`FileTransport`]), TCP sockets ([`TcpTransport`] with
//!   reconnect-with-backoff, [`TcpFrameListener`] with multi-client
//!   accept), and in-process channels ([`mem_transport`]), with
//!   [`TransportSink`]/[`TransportSource`] as the pipeline faces.
//!   Frames carry detectors' **native** encodes (`FrameEncode`) — no
//!   JSON between a shard's state and the aggregator's fold.
//!
//! The pre-pipeline `run_*` drivers survive in [`driver`] as thin
//! deprecated wrappers (the module docs there have the migration
//! table).
//!
//! ## Exactness of the sliding engines
//!
//! When the step divides the window length, a sliding window is a union
//! of whole *epochs* (step-sized bins), so per-epoch exact counts give
//! *exact* per-position HHH sets with one pass over the trace and
//! O(window/step) rolling state — no approximation anywhere. The
//! paper's 5/10/20 s windows with a 1 s step satisfy this; the engines
//! assert it. [`ShardedSliding`] runs the same epoch decomposition as
//! a ring of mergeable detectors per shard, which makes the sliding
//! schedule multi-core for *any* mergeable detector — and
//! report-for-report identical to [`SlidingExact`] when the detectors
//! are exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod filter;
pub mod geometry;
pub mod pipeline;
mod report;
pub mod sharded;
pub mod sink;
pub mod source;
pub mod transport;

pub use filter::{PacketGate, RuleFilter};
pub use pipeline::{
    Continuous, Disjoint, Engine, FoldSnapshots, MicroVaried, Pipeline, ShardedContinuous,
    ShardedDisjoint, ShardedSliding, SlidingExact,
};
pub use report::{PrefixSet, WindowReport};
pub use sharded::{
    shard_of, with_continuous_shards, with_shards, with_sliding_shards, ContinuousShardPool,
    ShardPool, SlidingShardPool, DEFAULT_BATCH,
};
pub use sink::{
    render_report_line, CollectSink, FnSink, JsonSnapshotSink, ReportSink, SnapshotSink,
};
pub use source::{
    bounded, ChannelSource, FeederStats, PacketFeeder, PacketSource, SnapshotSource, Source,
    StreamRecord, DEFAULT_CHUNK,
};
pub use transport::{
    ack_frame, hello_frame, mem_transport, parse_ack, read_frame_from, resume_hello_frame,
    FileTransport, FrameHub, FrameRead, FrameSpool, FrameStream, FrameWrite, HubEvent, HubHandle,
    MemFrameReader, MemFrameWriter, TcpFrameListener, TcpTransport, TransportError, TransportSink,
    TransportSource, ACK_KIND, HELLO_KIND,
};

#[allow(deprecated)]
pub use sharded::run_sharded_disjoint;
