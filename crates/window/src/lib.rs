//! # hhh-window
//!
//! The window execution engine: everything Figure 1 of the paper
//! sketches, as code.
//!
//! * [`geometry`] — where windows *are*: disjoint (tumbling) windows,
//!   sliding windows with a step, and micro-varied window lengths
//!   (Fig. 1a/1b/1c).
//! * [`driver`] — running a detector over a packet stream under a
//!   window model: [`run_disjoint`](driver::run_disjoint) resets the
//!   detector at every boundary (the practice the paper critiques);
//!   [`run_sliding_exact`](driver::run_sliding_exact) evaluates every
//!   sliding position exactly via rolling per-epoch counts;
//!   [`run_microvaried`](driver::run_microvaried) evaluates a baseline
//!   window length against slightly-shorter variants in one pass
//!   (Fig. 3's setup);
//!   [`run_continuous`](driver::run_continuous) probes a windowless
//!   detector at arbitrary instants.
//! * [`sharded`] — batched multi-core ingestion: hash-partition the
//!   stream by key across shard detectors on worker threads, feed them
//!   batch-at-a-time, and merge shard states at report points
//!   ([`run_sharded_disjoint`](sharded::run_sharded_disjoint) mirrors
//!   the disjoint driver; `with_shards` exposes the pool directly).
//!
//! ## Exactness of the sliding driver
//!
//! When the step divides the window length, a sliding window is a union
//! of whole *epochs* (step-sized bins), so per-epoch exact counts give
//! *exact* per-position HHH sets with one pass over the trace and
//! O(window/step) rolling state — no approximation anywhere. The
//! paper's 5/10/20 s windows with a 1 s step satisfy this; the driver
//! asserts it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod geometry;
mod report;
pub mod sharded;

pub use report::{PrefixSet, WindowReport};
pub use sharded::{run_sharded_disjoint, with_shards, ShardPool};
