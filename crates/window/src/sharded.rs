//! Sharded multi-core ingestion: hash-partition a packet stream by key
//! into `K` shard detectors on their own threads, feed them
//! batch-at-a-time, and merge shard states at report points.
//!
//! This is the execution model RHHH and MVPipe argue line-rate HHH
//! detection needs: per-packet work stays on one core's cache-warm
//! detector, cross-core traffic is one `Vec` hand-off per batch, and
//! correctness rests on [`MergeableDetector`]:
//!
//! * partitioning is **by key**, so each shard sees a disjoint
//!   sub-stream — exactly the precondition the merge contracts demand;
//! * an exact detector merged across shards is bit-identical to one
//!   detector fed the whole stream, so [`run_sharded_disjoint`] with
//!   [`ExactHhh`](hhh_core::ExactHhh) reproduces
//!   [`run_disjoint`](crate::driver::run_disjoint) verbatim;
//! * approximate detectors keep their error bounds, additively.
//!
//! The worker protocol is deliberately dumb (one `mpsc` channel per
//! shard, FIFO): a [`Msg::Batch`] is followed eventually by a
//! [`Msg::Snapshot`], and FIFO ordering makes the snapshot observe
//! every batch sent before it — no barriers, no shared state, no
//! unsafe.

use crate::report::WindowReport;
use hhh_core::{HhhDetector, MergeableDetector, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::{Measure, Nanos, PacketRecord, TimeSpan};
use hhh_sketches::hash::hash_of;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Default packets per batch: big enough to amortize the channel
/// hand-off and the batched detectors' per-batch setup, small enough to
/// stay resident in L2 (8192 × 12 B ≈ 96 KiB).
pub const DEFAULT_BATCH: usize = 8192;

/// Seed for the shard-partitioning hash. Fixed and *distinct from any
/// sketch seed*, so shard assignment is uncorrelated with in-detector
/// bucketing.
const SHARD_SEED: u64 = 0x5AAD_ED01;

/// The shard a key belongs to among `shards` shards.
#[inline]
pub fn shard_of<T: core::hash::Hash>(item: &T, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // Widening multiply maps the hash uniformly onto [0, shards).
    ((hash_of(item, SHARD_SEED) as u128 * shards as u128) >> 64) as usize
}

enum Msg<I, D> {
    /// Observe a batch of `(item, weight)` pairs.
    Batch(Vec<(I, u64)>),
    /// Clone the current detector state back through the channel.
    Snapshot(Sender<D>),
    /// Forget everything (window boundary).
    Reset,
}

/// Handle to a running shard pool: scatter batches in, pull merged
/// snapshots out. Created by [`with_shards`].
pub struct ShardPool<H: Hierarchy, D> {
    senders: Vec<Sender<Msg<H::Item, D>>>,
    /// Per-shard scatter buffers, reused across batches.
    scatter: Vec<Vec<(H::Item, u64)>>,
}

impl<H, D> ShardPool<H, D>
where
    H: Hierarchy,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
{
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Scatter one batch to the shard workers by key hash and return
    /// once it is *enqueued* (workers process asynchronously).
    pub fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        let k = self.senders.len();
        if k == 1 {
            // Single shard: skip the scatter pass.
            self.senders[0].send(Msg::Batch(batch.to_vec())).expect("shard worker hung up");
            return;
        }
        for &(item, weight) in batch {
            self.scatter[shard_of(&item, k)].push((item, weight));
        }
        for (sub, tx) in self.scatter.iter_mut().zip(&self.senders) {
            if !sub.is_empty() {
                // Hand the filled buffer to the worker and leave a
                // same-capacity replacement behind, so the next
                // scatter pass fills it without growth reallocations.
                let send = std::mem::replace(sub, Vec::with_capacity(sub.capacity()));
                tx.send(Msg::Batch(send)).expect("shard worker hung up");
            }
        }
    }

    /// Wait for every shard to drain its queue, then fold all shard
    /// states into one detector (shard 0's state merged with the
    /// rest). The pooled detectors keep running — this is a read point,
    /// not a stop.
    pub fn merged_snapshot(&self) -> D {
        let receivers: Vec<Receiver<D>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = channel();
                tx.send(Msg::Snapshot(reply_tx)).expect("shard worker hung up");
                reply_rx
            })
            .collect();
        let mut merged: Option<D> = None;
        for rx in receivers {
            let shard_state = rx.recv().expect("shard worker died before snapshot");
            match &mut merged {
                None => merged = Some(shard_state),
                Some(m) => m.merge(&shard_state),
            }
        }
        merged.expect("at least one shard")
    }

    /// Reset every shard detector (window boundary). FIFO ordering
    /// makes this safe to call right after a batch: the reset lands
    /// after it.
    pub fn reset(&self) {
        for tx in &self.senders {
            tx.send(Msg::Reset).expect("shard worker hung up");
        }
    }
}

/// Run `body` against a pool of shard detectors, one worker thread per
/// detector. Workers shut down (and the threads join) when `body`
/// returns.
///
/// ```
/// use hhh_core::ExactHhh;
/// use hhh_hierarchy::Ipv4Hierarchy;
/// use hhh_window::sharded::with_shards;
///
/// let detectors: Vec<_> =
///     (0..4).map(|_| ExactHhh::new(Ipv4Hierarchy::bytes())).collect();
/// let merged = with_shards(detectors, |pool| {
///     pool.observe_batch(&[(0x0A010101, 900), (0x14000001, 100)]);
///     pool.merged_snapshot()
/// });
/// use hhh_core::HhhDetector;
/// assert_eq!(HhhDetector::<Ipv4Hierarchy>::total(&merged), 1000);
/// ```
pub fn with_shards<H, D, R, F>(detectors: Vec<D>, body: F) -> R
where
    H: Hierarchy,
    H::Item: Send,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: FnOnce(&mut ShardPool<H, D>) -> R,
{
    assert!(!detectors.is_empty(), "need at least one shard detector");
    let k = detectors.len();
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(k);
        for mut detector in detectors {
            let (tx, rx) = channel::<Msg<H::Item, D>>();
            senders.push(tx);
            scope.spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Batch(batch) => detector.observe_batch(&batch),
                        Msg::Snapshot(reply) => {
                            // A dropped reply receiver just means the
                            // caller stopped caring; keep serving.
                            let _ = reply.send(detector.clone());
                        }
                        Msg::Reset => detector.reset(),
                    }
                }
            });
        }
        let mut pool = ShardPool { senders, scatter: vec![Vec::new(); k] };
        let result = body(&mut pool);
        drop(pool); // closes the channels; workers drain and exit
        result
    })
}

/// Sharded counterpart of [`run_disjoint`](crate::driver::run_disjoint):
/// same window geometry, same report/reset schedule, but ingestion is
/// hash-partitioned across `detectors.len()` shard threads and fed in
/// `batch`-sized chunks; at every boundary the shard states are merged
/// and the merged detector reports.
///
/// With exact detectors the output is identical to `run_disjoint` on
/// the same stream (merge is lossless); with approximate ones it is
/// identical up to the merge's additive error growth.
#[allow(clippy::too_many_arguments)] // mirrors run_disjoint's natural parameter list
pub fn run_sharded_disjoint<H, D, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    window: TimeSpan,
    hierarchy: &H,
    detectors: Vec<D>,
    thresholds: &[Threshold],
    measure: Measure,
    key: F,
    batch: usize,
) -> Vec<Vec<WindowReport<H::Prefix>>>
where
    H: Hierarchy,
    H::Item: Send,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    let _ = hierarchy;
    assert!(batch > 0, "batch size must be non-zero");
    let n_windows = horizon / window;
    let mut out: Vec<Vec<WindowReport<H::Prefix>>> =
        thresholds.iter().map(|_| Vec::with_capacity(n_windows as usize)).collect();

    with_shards(detectors, |pool| {
        let mut pending: Vec<(H::Item, u64)> = Vec::with_capacity(batch);
        let mut cur: u64 = 0;

        let flush_window =
            |cur: u64,
             pending: &mut Vec<(H::Item, u64)>,
             pool: &mut ShardPool<H, D>,
             out: &mut Vec<Vec<WindowReport<H::Prefix>>>| {
                if !pending.is_empty() {
                    pool.observe_batch(pending);
                    pending.clear();
                }
                let merged = pool.merged_snapshot();
                for (ti, t) in thresholds.iter().enumerate() {
                    out[ti].push(WindowReport {
                        index: cur,
                        start: Nanos::ZERO + window * cur,
                        end: Nanos::ZERO + window * (cur + 1),
                        total: merged.total(),
                        hhhs: merged.report(*t),
                    });
                }
                pool.reset();
            };

        for p in packets {
            let w = p.ts.bin_index(window);
            if w >= n_windows {
                break; // time-sorted stream; the rest is partial tail
            }
            while cur < w {
                flush_window(cur, &mut pending, pool, &mut out);
                cur += 1;
            }
            pending.push((key(&p), measure.weight(&p)));
            if pending.len() >= batch {
                pool.observe_batch(&pending);
                pending.clear();
            }
        }
        while cur < n_windows {
            flush_window(cur, &mut pending, pool, &mut out);
            cur += 1;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_disjoint;
    use hhh_core::ExactHhh;
    use hhh_hierarchy::Ipv4Hierarchy;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn h() -> Ipv4Hierarchy {
        Ipv4Hierarchy::bytes()
    }

    fn stream(secs: u64, pps: u64, seed: u64) -> Vec<PacketRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = secs * pps;
        (0..n)
            .map(|i| {
                let ts = Nanos::from_nanos(i * 1_000_000_000 / pps + rng.gen_range(0..1000));
                let src: u32 = if rng.gen::<f64>() < 0.25 {
                    0x0A010101
                } else {
                    (rng.gen_range(10u32..60) << 24) | rng.gen_range(0..2048)
                };
                PacketRecord::new(ts, src, 1, 100 + rng.gen_range(0..900))
            })
            .collect()
    }

    #[test]
    fn shard_partition_is_total_and_stable() {
        for k in [1usize, 2, 4, 8] {
            for item in 0..1000u32 {
                let s = shard_of(&item, k);
                assert!(s < k);
                assert_eq!(s, shard_of(&item, k), "assignment must be stable");
            }
        }
    }

    #[test]
    fn shard_partition_is_roughly_balanced() {
        let k = 4;
        let mut counts = [0usize; 4];
        for item in 0..100_000u32 {
            counts[shard_of(&item, k)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - 25_000.0).abs() / 25_000.0;
            assert!(rel < 0.05, "shard {i} holds {c} of 100k keys");
        }
    }

    #[test]
    fn pool_snapshot_equals_unsharded_for_exact() {
        let batches: Vec<Vec<(u32, u64)>> = (0..10)
            .map(|b| (0..500).map(|i| ((b * 7 + i) % 313, 1 + (i % 9) as u64)).collect())
            .collect();
        let mut single = ExactHhh::new(h());
        for batch in &batches {
            HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut single, batch);
        }
        let detectors: Vec<_> = (0..4).map(|_| ExactHhh::new(h())).collect();
        let merged = with_shards(detectors, |pool| {
            for batch in &batches {
                pool.observe_batch(batch);
            }
            pool.merged_snapshot()
        });
        assert_eq!(
            HhhDetector::<Ipv4Hierarchy>::total(&single),
            HhhDetector::<Ipv4Hierarchy>::total(&merged),
        );
        let t = Threshold::percent(1.0);
        assert_eq!(single.report(t), merged.report(t));
    }

    #[test]
    fn sharded_disjoint_matches_run_disjoint_exactly() {
        let pkts = stream(12, 500, 42);
        let horizon = TimeSpan::from_secs(12);
        let window = TimeSpan::from_secs(4);
        let ts = [Threshold::percent(1.0), Threshold::percent(5.0)];
        let mut single = ExactHhh::new(h());
        let reference = run_disjoint(
            pkts.iter().copied(),
            horizon,
            window,
            &h(),
            &mut single,
            &ts,
            Measure::Bytes,
            |p| p.src,
        );
        for k in [1usize, 2, 4] {
            let detectors: Vec<_> = (0..k).map(|_| ExactHhh::new(h())).collect();
            let sharded = run_sharded_disjoint(
                pkts.iter().copied(),
                horizon,
                window,
                &h(),
                detectors,
                &ts,
                Measure::Bytes,
                |p| p.src,
                // Deliberately small batch so several batches per
                // window (and window-boundary flushes) are exercised.
                257,
            );
            assert_eq!(reference.len(), sharded.len());
            for (ti, (r_windows, s_windows)) in reference.iter().zip(&sharded).enumerate() {
                assert_eq!(r_windows.len(), s_windows.len(), "threshold {ti}, k={k}");
                for (r, s) in r_windows.iter().zip(s_windows) {
                    assert_eq!(r.index, s.index);
                    assert_eq!(r.total, s.total, "window {} k={k}", r.index);
                    assert_eq!(r.hhhs, s.hhhs, "window {} k={k}", r.index);
                }
            }
        }
    }

    #[test]
    fn reset_between_windows_isolates_them() {
        // One packet per window; each window's report must only see
        // its own packet.
        let pkts: Vec<PacketRecord> = (0..4u64)
            .map(|i| {
                PacketRecord::new(Nanos::from_millis(i * 1000 + 500), 0x0A000000 + i as u32, 1, 100)
            })
            .collect();
        let detectors: Vec<_> = (0..2).map(|_| ExactHhh::new(h())).collect();
        let reports = run_sharded_disjoint(
            pkts.iter().copied(),
            TimeSpan::from_secs(4),
            TimeSpan::from_secs(1),
            &h(),
            detectors,
            &[Threshold::percent(50.0)],
            Measure::Bytes,
            |p| p.src,
            DEFAULT_BATCH,
        );
        assert_eq!(reports[0].len(), 4);
        for r in &reports[0] {
            assert_eq!(r.total, 100, "window {} leaked traffic", r.index);
        }
    }

    #[test]
    fn empty_stream_yields_empty_windows() {
        let detectors: Vec<_> = (0..3).map(|_| ExactHhh::new(h())).collect();
        let reports = run_sharded_disjoint(
            std::iter::empty(),
            TimeSpan::from_secs(6),
            TimeSpan::from_secs(2),
            &h(),
            detectors,
            &[Threshold::percent(5.0)],
            Measure::Bytes,
            |p: &PacketRecord| p.src,
            DEFAULT_BATCH,
        );
        assert_eq!(reports[0].len(), 3);
        assert!(reports[0].iter().all(|r| r.total == 0 && r.is_empty()));
    }
}
