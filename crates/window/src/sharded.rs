//! Sharded multi-core ingestion: hash-partition a packet stream by key
//! into `K` shard detectors on their own threads, feed them
//! batch-at-a-time, and merge shard states at report points.
//!
//! This is the execution model RHHH and MVPipe argue line-rate HHH
//! detection needs: per-packet work stays on one core's cache-warm
//! detector, cross-core traffic is one `Vec` hand-off per batch, and
//! correctness rests on [`MergeableDetector`]:
//!
//! * partitioning is **by key**, so each shard sees a disjoint
//!   sub-stream — exactly the precondition the merge contracts demand;
//! * an exact detector merged across shards is bit-identical to one
//!   detector fed the whole stream, so [`run_sharded_disjoint`] with
//!   [`ExactHhh`](hhh_core::ExactHhh) reproduces
//!   [`run_disjoint`](crate::driver::run_disjoint) verbatim;
//! * approximate detectors keep their error bounds, additively.
//!
//! The worker protocol is deliberately dumb (one `mpsc` channel per
//! shard, FIFO): a [`Msg::Batch`] is followed eventually by a
//! [`Msg::Snapshot`], and FIFO ordering makes the snapshot observe
//! every batch sent before it — no barriers, no shared state, no
//! unsafe.

use crate::report::WindowReport;
use hhh_core::{ContinuousDetector, HhhDetector, MergeableDetector, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::{Measure, Nanos, PacketRecord, TimeSpan};
use hhh_sketches::hash::hash_of;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Default packets per batch: big enough to amortize the channel
/// hand-off and the batched detectors' per-batch setup, small enough to
/// stay resident in L2 (8192 × 12 B ≈ 96 KiB).
pub const DEFAULT_BATCH: usize = 8192;

/// Seed for the shard-partitioning hash. Fixed and *distinct from any
/// sketch seed*, so shard assignment is uncorrelated with in-detector
/// bucketing.
const SHARD_SEED: u64 = 0x5AAD_ED01;

/// The shard a key belongs to among `shards` shards.
///
/// The hash and its seed are **fixed**: the mapping is stable
/// across runs, hosts and versions of this crate (pinned by a golden
/// test), so operators can reason about shard placement. Correctness
/// never depends on *which* shard a key lands on, though — the merge
/// contracts only require that the partition be **disjoint** (each key
/// always on the same shard within a run), so any stable hash would
/// merge to the same answer.
#[inline]
pub fn shard_of<T: core::hash::Hash>(item: &T, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // Widening multiply maps the hash uniformly onto [0, shards).
    ((hash_of(item, SHARD_SEED) as u128 * shards as u128) >> 64) as usize
}

/// Scatter `batch` into per-shard buffers by `shard_key` and send each
/// non-empty sub-batch to its worker, wrapped by `wrap`. The shared
/// scatter pass of every pool: one shard skips the scatter entirely;
/// otherwise filled buffers are handed to workers and replaced with
/// same-capacity empties, so steady-state scattering never reallocates.
fn scatter_to_workers<T: Copy, M>(
    senders: &[Sender<M>],
    scatter: &mut [Vec<T>],
    batch: &[T],
    shard_key: impl Fn(&T, usize) -> usize,
    wrap: impl Fn(Vec<T>) -> M,
) {
    let k = senders.len();
    if k == 1 {
        senders[0].send(wrap(batch.to_vec())).expect("shard worker hung up");
        return;
    }
    for &t in batch {
        scatter[shard_key(&t, k)].push(t);
    }
    for (sub, tx) in scatter.iter_mut().zip(senders) {
        if !sub.is_empty() {
            let send = std::mem::replace(sub, Vec::with_capacity(sub.capacity()));
            tx.send(wrap(send)).expect("shard worker hung up");
        }
    }
}

/// Ask every worker for its state (via the message `request` builds
/// around a reply channel) and fold the replies into one detector.
/// FIFO channels make the reply observe every batch sent before the
/// request; requests go out to all workers before any reply is
/// awaited, so shards quiesce concurrently.
fn merged_reply<D: MergeableDetector, M>(
    senders: &[Sender<M>],
    request: impl Fn(Sender<D>) -> M,
) -> D {
    let receivers: Vec<Receiver<D>> = senders
        .iter()
        .map(|tx| {
            let (reply_tx, reply_rx) = channel();
            tx.send(request(reply_tx)).expect("shard worker hung up");
            reply_rx
        })
        .collect();
    let mut merged: Option<D> = None;
    for rx in receivers {
        let shard_state = rx.recv().expect("shard worker died before snapshot");
        match &mut merged {
            None => merged = Some(shard_state),
            Some(m) => m.merge(&shard_state),
        }
    }
    merged.expect("at least one shard")
}

enum Msg<I, D> {
    /// Observe a batch of `(item, weight)` pairs.
    Batch(Vec<(I, u64)>),
    /// Clone the current detector state back through the channel.
    Snapshot(Sender<D>),
    /// Forget everything (window boundary).
    Reset,
}

/// Handle to a running shard pool: scatter batches in, pull merged
/// snapshots out. Created by [`with_shards`].
pub struct ShardPool<H: Hierarchy, D> {
    senders: Vec<Sender<Msg<H::Item, D>>>,
    /// Per-shard scatter buffers, reused across batches.
    scatter: Vec<Vec<(H::Item, u64)>>,
}

impl<H, D> ShardPool<H, D>
where
    H: Hierarchy,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
{
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Scatter one batch to the shard workers by key hash and return
    /// once it is *enqueued* (workers process asynchronously).
    pub fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        scatter_to_workers(
            &self.senders,
            &mut self.scatter,
            batch,
            |(item, _), k| shard_of(item, k),
            Msg::Batch,
        );
    }

    /// Wait for every shard to drain its queue, then fold all shard
    /// states into one detector (shard 0's state merged with the
    /// rest). The pooled detectors keep running — this is a read point,
    /// not a stop.
    pub fn merged_snapshot(&self) -> D {
        merged_reply(&self.senders, Msg::Snapshot)
    }

    /// Reset every shard detector (window boundary). FIFO ordering
    /// makes this safe to call right after a batch: the reset lands
    /// after it.
    pub fn reset(&self) {
        for tx in &self.senders {
            tx.send(Msg::Reset).expect("shard worker hung up");
        }
    }
}

/// Run `body` against a pool of shard detectors, one worker thread per
/// detector. Workers shut down (and the threads join) when `body`
/// returns.
///
/// ```
/// use hhh_core::ExactHhh;
/// use hhh_hierarchy::Ipv4Hierarchy;
/// use hhh_window::sharded::with_shards;
///
/// let detectors: Vec<_> =
///     (0..4).map(|_| ExactHhh::new(Ipv4Hierarchy::bytes())).collect();
/// let merged = with_shards(detectors, |pool| {
///     pool.observe_batch(&[(0x0A010101, 900), (0x14000001, 100)]);
///     pool.merged_snapshot()
/// });
/// use hhh_core::HhhDetector;
/// assert_eq!(HhhDetector::<Ipv4Hierarchy>::total(&merged), 1000);
/// ```
pub fn with_shards<H, D, R, F>(detectors: Vec<D>, body: F) -> R
where
    H: Hierarchy,
    H::Item: Send,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: FnOnce(&mut ShardPool<H, D>) -> R,
{
    assert!(!detectors.is_empty(), "need at least one shard detector");
    let k = detectors.len();
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(k);
        for mut detector in detectors {
            let (tx, rx) = channel::<Msg<H::Item, D>>();
            senders.push(tx);
            scope.spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Batch(batch) => detector.observe_batch(&batch),
                        Msg::Snapshot(reply) => {
                            // A dropped reply receiver just means the
                            // caller stopped caring; keep serving.
                            let _ = reply.send(detector.clone());
                        }
                        Msg::Reset => detector.reset(),
                    }
                }
            });
        }
        let mut pool = ShardPool { senders, scatter: vec![Vec::new(); k] };
        let result = body(&mut pool);
        drop(pool); // closes the channels; workers drain and exit
        result
    })
}

/// Run `body` against a pool of **epoch rings**: per shard, `epw`
/// windowed detectors — one per step-sized epoch of a sliding window —
/// on one worker thread. This is the execution substrate of the
/// sharded sliding engine
/// ([`ShardedSliding`](crate::pipeline::ShardedSliding)): a sliding
/// window is a union of whole epochs, so the window state at any
/// position is the merge of the ring's detectors, across all shards.
///
/// ## Incremental ring deltas
///
/// Detectors whose merges are *invertible*
/// ([`MergeableDetector::retract`] — the exact detectors) get the
/// rolling-window optimization: each worker keeps one **rolling**
/// detector holding the merge of every closed in-window epoch, and a
/// step only touches the epoch delta — the epoch that just closed is
/// merged in, the epoch that slid out is retracted. A window request
/// is then a single clone + merge of the still-open epoch instead of
/// `window/step` merges, so per-position cost no longer grows with
/// the window/step ratio. Detectors without `retract` (the lossy
/// summaries, where merge order matters) keep the full ring merge in
/// slot order, preserving their byte-for-byte report stability.
///
/// Every inner `Vec` must have the same length (`epw`). Workers shut
/// down when `body` returns.
pub fn with_sliding_shards<H, D, R, F>(rings: Vec<Vec<D>>, body: F) -> R
where
    H: Hierarchy,
    H::Item: Send,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: FnOnce(&mut SlidingShardPool<H, D>) -> R,
{
    assert!(!rings.is_empty(), "need at least one shard ring");
    let epw = rings[0].len();
    assert!(epw > 0, "epoch rings must be non-empty");
    assert!(rings.iter().all(|r| r.len() == epw), "all shard rings must have equal length");
    let k = rings.len();
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(k);
        for mut ring in rings {
            let (tx, rx) = channel::<SlidingMsg<H::Item, D>>();
            senders.push(tx);
            scope.spawn(move || {
                let mut cur = 0usize;
                // Probe invertibility on empty states: detectors
                // either always or never support retraction.
                let mut rolling = {
                    let mut empty = ring[0].clone();
                    empty.reset();
                    let probe = empty.clone();
                    empty.retract(&probe).then_some(empty)
                };
                // `rolling` (when Some) is the merge of every ring
                // slot except `cur` — the closed in-window epochs.
                // Fresh slots are all empty, so starting from an empty
                // detector is that merge.
                while let Ok(msg) = rx.recv() {
                    match msg {
                        SlidingMsg::Batch(batch) => ring[cur].observe_batch(&batch),
                        SlidingMsg::Advance => {
                            rotate_ring::<H, D>(&mut ring, &mut cur, &mut rolling);
                        }
                        SlidingMsg::CloseEpoch(reply) => {
                            // Hand the epoch that just ended to the
                            // caller (epoch-sized — a fraction
                            // `step/window` of the full window state),
                            // then rotate exactly as Advance would.
                            let _ = reply.send(ring[cur].clone());
                            rotate_ring::<H, D>(&mut ring, &mut cur, &mut rolling);
                        }
                        SlidingMsg::Window(reply) => {
                            let merged = match &rolling {
                                Some(r) => {
                                    // Closed epochs + the open one.
                                    let mut m = r.clone();
                                    m.merge(&ring[cur]);
                                    m
                                }
                                None => {
                                    // Full ring merge in slot order
                                    // (stable for lossy summaries).
                                    let mut m = ring[0].clone();
                                    for d in &ring[1..] {
                                        m.merge(d);
                                    }
                                    m
                                }
                            };
                            let _ = reply.send(merged);
                        }
                    }
                }
            });
        }
        let mut pool = SlidingShardPool { senders, scatter: vec![Vec::new(); k] };
        let result = body(&mut pool);
        drop(pool);
        result
    })
}

/// Epoch-boundary rotation shared by [`SlidingMsg::Advance`] and
/// [`SlidingMsg::CloseEpoch`]: close the current epoch into the rolling
/// state (when the kind is retractable), rotate onto the slot holding
/// the epoch that slid out of the window, retract it, and reset it for
/// the new epoch.
fn rotate_ring<H, D>(ring: &mut [D], cur: &mut usize, rolling: &mut Option<D>)
where
    H: Hierarchy,
    D: HhhDetector<H> + MergeableDetector,
{
    if let Some(r) = rolling.as_mut() {
        // The current epoch closes into the rolling state…
        r.merge(&ring[*cur]);
    }
    *cur = (*cur + 1) % ring.len();
    if let Some(r) = rolling.as_mut() {
        // …and the slot we rotated onto holds the epoch sliding out of
        // the window: retract it before it is reset.
        let ok = r.retract(&ring[*cur]);
        debug_assert!(ok, "retract support cannot change mid-run");
    }
    ring[*cur].reset();
}

enum SlidingMsg<I, D> {
    /// Observe a batch on the worker's *current* epoch detector.
    Batch(Vec<(I, u64)>),
    /// Epoch boundary: rotate to the next ring slot, resetting it (it
    /// held the epoch that just slid out of the window).
    Advance,
    /// Epoch boundary *with harvest*: reply with a clone of the epoch
    /// that just ended (epoch-sized, not window-sized), then rotate as
    /// [`SlidingMsg::Advance`] would. Lets a caller maintain the
    /// cross-shard window state incrementally instead of pulling
    /// window-sized states per position.
    CloseEpoch(Sender<D>),
    /// Merge the whole ring — the sliding-window state — and reply.
    Window(Sender<D>),
}

/// Handle to a running sliding shard pool; created by
/// [`with_sliding_shards`].
pub struct SlidingShardPool<H: Hierarchy, D> {
    senders: Vec<Sender<SlidingMsg<H::Item, D>>>,
    scatter: Vec<Vec<(H::Item, u64)>>,
}

impl<H, D> SlidingShardPool<H, D>
where
    H: Hierarchy,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
{
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Scatter a batch of observations (all belonging to the current
    /// epoch) to the shard workers by key hash.
    pub fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        scatter_to_workers(
            &self.senders,
            &mut self.scatter,
            batch,
            |(item, _), k| shard_of(item, k),
            SlidingMsg::Batch,
        );
    }

    /// Epoch boundary: every worker rotates its ring by one slot,
    /// resetting the slot that just slid out of the window.
    pub fn advance(&self) {
        for tx in &self.senders {
            tx.send(SlidingMsg::Advance).expect("shard worker hung up");
        }
    }

    /// The sliding-window state: every worker merges its ring, then the
    /// per-shard states are merged across shards.
    pub fn merged_window(&self) -> D {
        merged_reply(&self.senders, SlidingMsg::Window)
    }

    /// Epoch boundary *with harvest*: every worker replies with a clone
    /// of the epoch that just ended, then rotates as [`advance`] would;
    /// the per-shard epoch states are merged across shards and
    /// returned. The reply is **epoch-sized** — `step/window` of the
    /// full window state — so a caller that maintains its own rolling
    /// window state (merge the returned epoch in, retract the epoch
    /// sliding out) pays O(shards) epoch-sized merges per position
    /// instead of O(shards) window-sized ones.
    ///
    /// [`advance`]: SlidingShardPool::advance
    pub fn close_epoch(&self) -> D {
        merged_reply(&self.senders, SlidingMsg::CloseEpoch)
    }
}

/// Run `body` against a pool of **continuous** (windowless) shard
/// detectors, one worker thread per detector — the substrate of the
/// sharded continuous engine
/// ([`ShardedContinuous`](crate::pipeline::ShardedContinuous)).
/// Observations carry timestamps; snapshots can be taken at any
/// instant and merged (the merge decays both sides to a common time).
pub fn with_continuous_shards<H, C, R, F>(detectors: Vec<C>, body: F) -> R
where
    H: Hierarchy,
    H::Item: Send,
    C: ContinuousDetector<H> + MergeableDetector + Clone + Send,
    F: FnOnce(&mut ContinuousShardPool<H, C>) -> R,
{
    assert!(!detectors.is_empty(), "need at least one shard detector");
    let k = detectors.len();
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(k);
        for mut detector in detectors {
            let (tx, rx) = channel::<ContinuousMsg<H::Item, C>>();
            senders.push(tx);
            scope.spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ContinuousMsg::Batch(batch) => detector.observe_batch(&batch),
                        ContinuousMsg::Snapshot(reply) => {
                            let _ = reply.send(detector.clone());
                        }
                    }
                }
            });
        }
        let mut pool = ContinuousShardPool { senders, scatter: vec![Vec::new(); k] };
        let result = body(&mut pool);
        drop(pool);
        result
    })
}

enum ContinuousMsg<I, C> {
    /// Observe a batch of timestamped `(ts, item, weight)` triples.
    Batch(Vec<(Nanos, I, u64)>),
    /// Clone the current detector state back through the channel.
    Snapshot(Sender<C>),
}

/// Handle to a running continuous shard pool; created by
/// [`with_continuous_shards`].
pub struct ContinuousShardPool<H: Hierarchy, C> {
    senders: Vec<Sender<ContinuousMsg<H::Item, C>>>,
    scatter: Vec<Vec<(Nanos, H::Item, u64)>>,
}

impl<H, C> ContinuousShardPool<H, C>
where
    H: Hierarchy,
    C: ContinuousDetector<H> + MergeableDetector + Clone + Send,
{
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Scatter a batch of timestamped observations to the shard
    /// workers by key hash (timestamps non-decreasing, as on the wire).
    pub fn observe_batch(&mut self, batch: &[(Nanos, H::Item, u64)]) {
        scatter_to_workers(
            &self.senders,
            &mut self.scatter,
            batch,
            |(_, item, _), k| shard_of(item, k),
            ContinuousMsg::Batch,
        );
    }

    /// Wait for every shard to drain its queue, then fold all shard
    /// states into one detector. The pooled detectors keep running —
    /// this is a read point, not a stop.
    pub fn merged_snapshot(&self) -> C {
        merged_reply(&self.senders, ContinuousMsg::Snapshot)
    }
}

/// Sharded counterpart of [`run_disjoint`](crate::driver::run_disjoint):
/// same window geometry, same report/reset schedule, but ingestion is
/// hash-partitioned across `detectors.len()` shard threads and fed in
/// `batch`-sized chunks; at every boundary the shard states are merged
/// and the merged detector reports.
///
/// With exact detectors the output is identical to `run_disjoint` on
/// the same stream (merge is lossless); with approximate ones it is
/// identical up to the merge's additive error growth.
#[deprecated(
    since = "0.2.0",
    note = "compose `Pipeline::new(packets).engine(ShardedDisjoint::new(…).batch(n)).collect()\
            .run()` instead"
)]
#[allow(clippy::too_many_arguments)] // preserved legacy signature
pub fn run_sharded_disjoint<H, D, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    window: TimeSpan,
    hierarchy: &H,
    detectors: Vec<D>,
    thresholds: &[Threshold],
    measure: Measure,
    key: F,
    batch: usize,
) -> Vec<Vec<WindowReport<H::Prefix>>>
where
    H: Hierarchy,
    H::Item: Send,
    D: HhhDetector<H> + MergeableDetector + Clone + Send,
    F: Fn(&PacketRecord) -> H::Item,
{
    let _ = hierarchy;
    crate::pipeline::Pipeline::new(packets)
        .engine(
            crate::pipeline::ShardedDisjoint::new(detectors, horizon, window, thresholds, key)
                .batch(batch)
                .measure(measure),
        )
        .collect()
        .run()
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are exactly what these tests pin down
mod tests {
    use super::*;
    use crate::driver::run_disjoint;
    use hhh_core::ExactHhh;
    use hhh_hierarchy::Ipv4Hierarchy;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn h() -> Ipv4Hierarchy {
        Ipv4Hierarchy::bytes()
    }

    fn stream(secs: u64, pps: u64, seed: u64) -> Vec<PacketRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = secs * pps;
        (0..n)
            .map(|i| {
                let ts = Nanos::from_nanos(i * 1_000_000_000 / pps + rng.gen_range(0..1000));
                let src: u32 = if rng.gen::<f64>() < 0.25 {
                    0x0A010101
                } else {
                    (rng.gen_range(10u32..60) << 24) | rng.gen_range(0..2048)
                };
                PacketRecord::new(ts, src, 1, 100 + rng.gen_range(0..900))
            })
            .collect()
    }

    /// Golden pin of the hash→shard mapping: `shard_of` is part of the
    /// operational surface (operators reason about shard placement, and
    /// a run restarted on another host must partition identically), so
    /// its exact values are frozen here. Merge *correctness* does not
    /// depend on the mapping — only on its disjointness — so if this
    /// test ever needs updating, that is an operational compatibility
    /// break, not a correctness bug; bump it consciously.
    #[test]
    fn shard_of_mapping_is_pinned() {
        let keys = [0u32, 1, 7, 42, 0x0A01_0101, 0x1400_0001, 0xDEAD_BEEF, 0xFFFF_FFFF];
        let golden: [(usize, [usize; 8]); 3] = [
            (2, [1, 0, 0, 1, 0, 0, 0, 0]),
            (4, [3, 1, 0, 2, 1, 1, 0, 0]),
            (8, [6, 3, 0, 4, 2, 2, 1, 1]),
        ];
        for (k, want) in golden {
            let got: Vec<usize> = keys.iter().map(|i| shard_of(i, k)).collect();
            assert_eq!(got, want, "hash→shard mapping changed at K={k}");
        }
    }
    #[test]
    fn shard_partition_is_total_and_stable() {
        for k in [1usize, 2, 4, 8] {
            for item in 0..1000u32 {
                let s = shard_of(&item, k);
                assert!(s < k);
                assert_eq!(s, shard_of(&item, k), "assignment must be stable");
            }
        }
    }

    #[test]
    fn shard_partition_is_roughly_balanced() {
        let k = 4;
        let mut counts = [0usize; 4];
        for item in 0..100_000u32 {
            counts[shard_of(&item, k)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - 25_000.0).abs() / 25_000.0;
            assert!(rel < 0.05, "shard {i} holds {c} of 100k keys");
        }
    }

    #[test]
    fn pool_snapshot_equals_unsharded_for_exact() {
        let batches: Vec<Vec<(u32, u64)>> = (0..10)
            .map(|b| (0..500).map(|i| ((b * 7 + i) % 313, 1 + (i % 9) as u64)).collect())
            .collect();
        let mut single = ExactHhh::new(h());
        for batch in &batches {
            HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut single, batch);
        }
        let detectors: Vec<_> = (0..4).map(|_| ExactHhh::new(h())).collect();
        let merged = with_shards(detectors, |pool| {
            for batch in &batches {
                pool.observe_batch(batch);
            }
            pool.merged_snapshot()
        });
        assert_eq!(
            HhhDetector::<Ipv4Hierarchy>::total(&single),
            HhhDetector::<Ipv4Hierarchy>::total(&merged),
        );
        let t = Threshold::percent(1.0);
        assert_eq!(single.report(t), merged.report(t));
    }

    #[test]
    fn sharded_disjoint_matches_run_disjoint_exactly() {
        let pkts = stream(12, 500, 42);
        let horizon = TimeSpan::from_secs(12);
        let window = TimeSpan::from_secs(4);
        let ts = [Threshold::percent(1.0), Threshold::percent(5.0)];
        let mut single = ExactHhh::new(h());
        let reference = run_disjoint(
            pkts.iter().copied(),
            horizon,
            window,
            &h(),
            &mut single,
            &ts,
            Measure::Bytes,
            |p| p.src,
        );
        for k in [1usize, 2, 4] {
            let detectors: Vec<_> = (0..k).map(|_| ExactHhh::new(h())).collect();
            let sharded = run_sharded_disjoint(
                pkts.iter().copied(),
                horizon,
                window,
                &h(),
                detectors,
                &ts,
                Measure::Bytes,
                |p| p.src,
                // Deliberately small batch so several batches per
                // window (and window-boundary flushes) are exercised.
                257,
            );
            assert_eq!(reference.len(), sharded.len());
            for (ti, (r_windows, s_windows)) in reference.iter().zip(&sharded).enumerate() {
                assert_eq!(r_windows.len(), s_windows.len(), "threshold {ti}, k={k}");
                for (r, s) in r_windows.iter().zip(s_windows) {
                    assert_eq!(r.index, s.index);
                    assert_eq!(r.total, s.total, "window {} k={k}", r.index);
                    assert_eq!(r.hhhs, s.hhhs, "window {} k={k}", r.index);
                }
            }
        }
    }

    #[test]
    fn reset_between_windows_isolates_them() {
        // One packet per window; each window's report must only see
        // its own packet.
        let pkts: Vec<PacketRecord> = (0..4u64)
            .map(|i| {
                PacketRecord::new(Nanos::from_millis(i * 1000 + 500), 0x0A000000 + i as u32, 1, 100)
            })
            .collect();
        let detectors: Vec<_> = (0..2).map(|_| ExactHhh::new(h())).collect();
        let reports = run_sharded_disjoint(
            pkts.iter().copied(),
            TimeSpan::from_secs(4),
            TimeSpan::from_secs(1),
            &h(),
            detectors,
            &[Threshold::percent(50.0)],
            Measure::Bytes,
            |p| p.src,
            DEFAULT_BATCH,
        );
        assert_eq!(reports[0].len(), 4);
        for r in &reports[0] {
            assert_eq!(r.total, 100, "window {} leaked traffic", r.index);
        }
    }

    #[test]
    fn empty_stream_yields_empty_windows() {
        let detectors: Vec<_> = (0..3).map(|_| ExactHhh::new(h())).collect();
        let reports = run_sharded_disjoint(
            std::iter::empty(),
            TimeSpan::from_secs(6),
            TimeSpan::from_secs(2),
            &h(),
            detectors,
            &[Threshold::percent(5.0)],
            Measure::Bytes,
            |p: &PacketRecord| p.src,
            DEFAULT_BATCH,
        );
        assert_eq!(reports[0].len(), 3);
        assert!(reports[0].iter().all(|r| r.total == 0 && r.is_empty()));
    }
}
