//! Window geometry: the intervals, before any traffic is involved.

use hhh_nettypes::{Nanos, TimeSpan};

/// One concrete window position: a half-open interval `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpan {
    /// Position index within its schedule (0-based).
    pub index: u64,
    /// Inclusive start.
    pub start: Nanos,
    /// Exclusive end.
    pub end: Nanos,
}

impl WindowSpan {
    /// Does the instant fall inside the window?
    #[inline]
    pub fn contains(&self, t: Nanos) -> bool {
        t >= self.start && t < self.end
    }

    /// The window's length.
    pub fn len(&self) -> TimeSpan {
        self.end - self.start
    }
}

/// The disjoint (tumbling) schedule: `[0, w), [w, 2w), …` — Fig. 1a.
/// Only *complete* windows within `[0, horizon)` are produced; a
/// trailing partial window is not a comparable measurement interval and
/// is dropped (documented paper-consistent choice).
pub fn disjoint(horizon: TimeSpan, window: TimeSpan) -> Vec<WindowSpan> {
    assert!(!window.is_zero(), "window length must be non-zero");
    let n = horizon / window;
    (0..n)
        .map(|i| WindowSpan {
            index: i,
            start: Nanos::ZERO + window * i,
            end: Nanos::ZERO + window * (i + 1),
        })
        .collect()
}

/// The sliding schedule with a step: `[0, w), [s, w+s), …` — Fig. 1b.
/// Again only complete windows within the horizon.
pub fn sliding(horizon: TimeSpan, window: TimeSpan, step: TimeSpan) -> Vec<WindowSpan> {
    assert!(!window.is_zero(), "window length must be non-zero");
    assert!(!step.is_zero(), "step must be non-zero");
    assert!(window <= horizon, "window longer than the horizon");
    let n = (horizon - window) / step + 1;
    (0..n)
        .map(|i| WindowSpan {
            index: i,
            start: Nanos::ZERO + step * i,
            end: Nanos::ZERO + step * i + window,
        })
        .collect()
}

/// The micro-varied schedule — Fig. 1c: windows share the baseline's
/// start points (every `base` seconds) but are `delta` shorter, so each
/// variant window is a strict prefix of its baseline window.
pub fn microvaried(horizon: TimeSpan, base: TimeSpan, delta: TimeSpan) -> Vec<WindowSpan> {
    assert!(delta < base, "delta must be smaller than the base window");
    disjoint(horizon, base)
        .into_iter()
        .map(|w| WindowSpan { index: w.index, start: w.start, end: w.end - delta })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disjoint_partitions_the_horizon() {
        let ws = disjoint(TimeSpan::from_secs(60), TimeSpan::from_secs(10));
        assert_eq!(ws.len(), 6);
        assert_eq!(ws[0].start, Nanos::ZERO);
        assert_eq!(ws[5].end, Nanos::from_secs(60));
        for pair in ws.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "gap or overlap");
        }
    }

    #[test]
    fn disjoint_drops_partial_tail() {
        let ws = disjoint(TimeSpan::from_secs(25), TimeSpan::from_secs(10));
        assert_eq!(ws.len(), 2, "the trailing 5 s fragment is not a window");
    }

    #[test]
    fn sliding_covers_every_offset() {
        let ws = sliding(TimeSpan::from_secs(30), TimeSpan::from_secs(10), TimeSpan::from_secs(1));
        assert_eq!(ws.len(), 21); // starts 0..=20
        assert!(ws.iter().all(|w| w.len() == TimeSpan::from_secs(10)));
        assert_eq!(ws.last().unwrap().end, Nanos::from_secs(30));
    }

    #[test]
    fn disjoint_is_a_subset_of_sliding() {
        // The formal reason hidden HHHs are one-directional: every
        // disjoint window is also a sliding position when step divides
        // the window length.
        let h = TimeSpan::from_secs(60);
        let w = TimeSpan::from_secs(5);
        let d = disjoint(h, w);
        let s = sliding(h, w, TimeSpan::from_secs(1));
        for dw in &d {
            assert!(
                s.iter().any(|sw| sw.start == dw.start && sw.end == dw.end),
                "disjoint window {dw:?} missing from sliding schedule"
            );
        }
    }

    #[test]
    fn microvaried_shares_starts_and_shrinks_ends() {
        let base = TimeSpan::from_secs(10);
        let delta = TimeSpan::from_millis(40);
        let b = disjoint(TimeSpan::from_secs(120), base);
        let v = microvaried(TimeSpan::from_secs(120), base, delta);
        assert_eq!(b.len(), v.len());
        for (bw, vw) in b.iter().zip(&v) {
            assert_eq!(bw.start, vw.start);
            assert_eq!(bw.end - vw.end, delta);
            assert_eq!(vw.len(), TimeSpan::from_millis(9_960));
        }
    }

    #[test]
    fn contains_is_half_open() {
        let w = WindowSpan { index: 0, start: Nanos::from_secs(1), end: Nanos::from_secs(2) };
        assert!(w.contains(Nanos::from_secs(1)));
        assert!(!w.contains(Nanos::from_secs(2)));
        assert!(w.contains(Nanos::from_nanos(1_999_999_999)));
    }

    proptest! {
        #[test]
        fn every_instant_in_exactly_one_disjoint_window(
            t_ms in 0u64..60_000,
            w_s in 1u64..30,
        ) {
            let ws = disjoint(TimeSpan::from_secs(60), TimeSpan::from_secs(w_s));
            let t = Nanos::from_millis(t_ms);
            let containing = ws.iter().filter(|w| w.contains(t)).count();
            // Instants beyond the last complete window are in none.
            let horizon_covered = Nanos::ZERO + TimeSpan::from_secs((60 / w_s) * w_s);
            if t < horizon_covered {
                prop_assert_eq!(containing, 1);
            } else {
                prop_assert_eq!(containing, 0);
            }
        }

        #[test]
        fn sliding_position_count_formula(w_s in 1u64..30, step_ms in prop::sample::select(vec![250u64, 500, 1000, 2000])) {
            let horizon = TimeSpan::from_secs(60);
            let ws = sliding(horizon, TimeSpan::from_secs(w_s), TimeSpan::from_millis(step_ms));
            let expect = (60_000 - w_s * 1000) / step_ms + 1;
            prop_assert_eq!(ws.len() as u64, expect);
        }
    }
}
