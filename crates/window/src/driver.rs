//! Legacy window drivers: thin **deprecated** wrappers over the
//! unified [`Pipeline`](crate::Pipeline) API.
//!
//! Each `run_*` function composes the equivalent pipeline — same
//! geometry, same report schedule — and exists only so pre-pipeline
//! call sites keep compiling (with a deprecation warning). Note the
//! output shape: a collected pipeline always returns one
//! `Vec<WindowReport>` **per series**, so the flat-returning legacy
//! functions need a final step ([`run_continuous`] is `.remove(0)` of
//! its single series; [`run_microvaried`] repackages series 0 /
//! 1 + i into [`MicroVariedRun`]). Migrate:
//!
//! | Legacy driver | Pipeline composition |
//! |---------------|----------------------|
//! | [`run_disjoint`] | `Pipeline::new(src).engine(Disjoint::new(det, horizon, window, ts, key)).collect().run()` |
//! | [`run_sliding_exact`] | `…engine(SlidingExact::new(&h, horizon, window, step, ts, key))…` |
//! | [`run_microvaried`] | `…engine(MicroVaried::new(&h, horizon, base, deltas, t, key))…` — series 0 = baseline, 1 + i = delta i |
//! | [`run_continuous`] | `…engine(Continuous::new(det, probes, t, key))….remove(0)` |
//! | [`run_sharded_disjoint`](crate::sharded::run_sharded_disjoint) | `…engine(ShardedDisjoint::new(dets, horizon, window, ts, key).batch(n))…` |
//!
//! The pipeline shape is also what unlocks everything the flat
//! drivers never could: swap `.collect()` for a
//! [`SnapshotSink`](crate::SnapshotSink) to write the snapshot wire
//! stream, or a [`TransportSink`](crate::TransportSink) over
//! [`TcpTransport`](crate::TcpTransport) /
//! [`mem_transport`](crate::mem_transport) to stream natively encoded
//! v2 frames to an aggregator over a socket or channel (see
//! [`transport`](crate::transport)) — the legacy signatures return
//! collected `Vec`s and cannot.

use crate::pipeline::{Continuous, Disjoint, MicroVaried, Pipeline, SlidingExact};
use crate::report::WindowReport;
use hhh_core::{ContinuousDetector, HhhDetector, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::{Measure, Nanos, PacketRecord, TimeSpan};

/// Run a windowed detector over **disjoint** windows: report at every
/// boundary, then reset. Packets after the last complete window are
/// ignored, matching [`geometry::disjoint`](crate::geometry::disjoint).
///
/// Returns one vector of [`WindowReport`]s per requested threshold
/// (same order), each with one entry per window.
#[deprecated(
    since = "0.2.0",
    note = "compose `Pipeline::new(packets).engine(Disjoint::new(…)).collect().run()` instead"
)]
#[allow(clippy::too_many_arguments)] // preserved legacy signature
pub fn run_disjoint<H, D, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    window: TimeSpan,
    hierarchy: &H,
    detector: &mut D,
    thresholds: &[Threshold],
    measure: Measure,
    key: F,
) -> Vec<Vec<WindowReport<H::Prefix>>>
where
    H: Hierarchy,
    D: HhhDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    let _ = hierarchy;
    Pipeline::new(packets)
        .engine(Disjoint::new(detector, horizon, window, thresholds, key).measure(measure))
        .collect()
        .run()
}

/// Evaluate **every sliding position exactly** via rolling per-epoch
/// counts. Requires `window % step == 0` (the paper's 5/10/20 s windows
/// with a 1 s step all qualify); one pass, exact output.
///
/// Returns one vector of reports per threshold; entry `i` of each is
/// sliding position `i` (start = `i × step`).
#[deprecated(
    since = "0.2.0",
    note = "compose `Pipeline::new(packets).engine(SlidingExact::new(…)).collect().run()` instead"
)]
#[allow(clippy::too_many_arguments)] // preserved legacy signature
pub fn run_sliding_exact<H, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    window: TimeSpan,
    step: TimeSpan,
    hierarchy: &H,
    thresholds: &[Threshold],
    measure: Measure,
    key: F,
) -> Vec<Vec<WindowReport<H::Prefix>>>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    Pipeline::new(packets)
        .engine(
            SlidingExact::new(hierarchy, horizon, window, step, thresholds, key).measure(measure),
        )
        .collect()
        .run()
}

/// The result of a micro-variation run (Fig. 3's setup): the baseline
/// windows plus, for each delta, the same windows shortened by that
/// delta (same start points).
#[derive(Clone, Debug)]
pub struct MicroVariedRun<P> {
    /// Baseline (full-length) window reports.
    pub baseline: Vec<WindowReport<P>>,
    /// For each requested delta (same order): the shortened-window
    /// reports, index-aligned with `baseline`.
    pub variants: Vec<(TimeSpan, Vec<WindowReport<P>>)>,
}

/// Evaluate a disjoint baseline window against micro-shortened variants
/// in a single pass. For each baseline window `[k·b, (k+1)·b)` and each
/// delta `d`, the variant window is `[k·b, (k+1)·b − d)`. Exact.
#[deprecated(
    since = "0.2.0",
    note = "compose `Pipeline::new(packets).engine(MicroVaried::new(…)).collect().run()` instead \
            (series 0 = baseline, series 1 + i = delta i)"
)]
#[allow(clippy::too_many_arguments)] // preserved legacy signature
pub fn run_microvaried<H, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    base: TimeSpan,
    deltas: &[TimeSpan],
    hierarchy: &H,
    threshold: Threshold,
    measure: Measure,
    key: F,
) -> MicroVariedRun<H::Prefix>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    let mut series = Pipeline::new(packets)
        .engine(MicroVaried::new(hierarchy, horizon, base, deltas, threshold, key).measure(measure))
        .collect()
        .run();
    let baseline = std::mem::take(&mut series[0]);
    let variants =
        deltas.iter().enumerate().map(|(i, d)| (*d, std::mem::take(&mut series[1 + i]))).collect();
    MicroVariedRun { baseline, variants }
}

/// Drive a **windowless** (continuous) detector and collect reports at
/// the given probe instants (must be sorted ascending).
#[deprecated(
    since = "0.2.0",
    note = "compose `Pipeline::new(packets).engine(Continuous::new(…)).collect().run()` instead"
)]
pub fn run_continuous<H, D, F>(
    packets: impl Iterator<Item = PacketRecord>,
    probes: &[Nanos],
    detector: &mut D,
    threshold: Threshold,
    measure: Measure,
    key: F,
) -> Vec<WindowReport<H::Prefix>>
where
    H: Hierarchy,
    D: ContinuousDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    Pipeline::new(packets)
        .engine(Continuous::new(detector, probes, threshold, key).measure(measure))
        .collect()
        .run()
        .remove(0)
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers are exactly what these tests pin down
mod tests {
    use super::*;
    use hhh_core::ExactHhh;
    use hhh_hierarchy::Ipv4Hierarchy;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn h() -> Ipv4Hierarchy {
        Ipv4Hierarchy::bytes()
    }

    /// A deterministic pseudo-random packet stream over `secs` seconds.
    fn stream(secs: u64, pps: u64, seed: u64) -> Vec<PacketRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = secs * pps;
        (0..n)
            .map(|i| {
                let ts = Nanos::from_nanos(i * 1_000_000_000 / pps + rng.gen_range(0..1000));
                let src: u32 = if rng.gen::<f64>() < 0.3 {
                    0x0A010101 // persistent heavy
                } else {
                    (rng.gen_range(10u32..50) << 24) | rng.gen_range(0..4096)
                };
                PacketRecord::new(ts, src, 1, 100 + rng.gen_range(0..900))
            })
            .collect()
    }

    /// Brute force: exact HHH of packets in [start, end).
    fn brute(pkts: &[PacketRecord], start: Nanos, end: Nanos, t: Threshold) -> (u64, Vec<String>) {
        let mut d = ExactHhh::new(h());
        for p in pkts.iter().filter(|p| p.ts >= start && p.ts < end) {
            hhh_core::HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, p.wire_len as u64);
        }
        use hhh_core::HhhDetector;
        let mut v: Vec<String> = d.report(t).iter().map(|r| r.prefix.to_string()).collect();
        v.sort();
        (d.total(), v)
    }

    fn names(r: &WindowReport<hhh_nettypes::Ipv4Prefix>) -> Vec<String> {
        let mut v: Vec<String> = r.hhhs.iter().map(|x| x.prefix.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn disjoint_driver_matches_brute_force() {
        let pkts = stream(12, 400, 1);
        let horizon = TimeSpan::from_secs(12);
        let window = TimeSpan::from_secs(5);
        let t = Threshold::percent(5.0);
        let mut det = ExactHhh::new(h());
        let reports = run_disjoint(
            pkts.iter().copied(),
            horizon,
            window,
            &h(),
            &mut det,
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(reports.len(), 1);
        let reports = &reports[0];
        assert_eq!(reports.len(), 2, "12 s / 5 s = 2 complete windows");
        for r in reports {
            let (total, truth) = brute(&pkts, r.start, r.end, t);
            assert_eq!(r.total, total, "window {} total", r.index);
            assert_eq!(names(r), truth, "window {} HHH set", r.index);
        }
    }

    #[test]
    fn sliding_driver_matches_brute_force() {
        let pkts = stream(10, 300, 2);
        let horizon = TimeSpan::from_secs(10);
        let window = TimeSpan::from_secs(4);
        let step = TimeSpan::from_secs(1);
        let t = Threshold::percent(5.0);
        let reports = run_sliding_exact(
            pkts.iter().copied(),
            horizon,
            window,
            step,
            &h(),
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        let reports = &reports[0];
        assert_eq!(reports.len(), 7, "(10−4)/1 + 1 positions");
        for r in reports {
            let (total, truth) = brute(&pkts, r.start, r.end, t);
            assert_eq!(r.total, total, "position {} total", r.index);
            assert_eq!(names(r), truth, "position {} HHH set", r.index);
        }
    }

    #[test]
    fn sliding_first_position_aligned_with_disjoint() {
        let pkts = stream(10, 200, 3);
        let horizon = TimeSpan::from_secs(10);
        let window = TimeSpan::from_secs(5);
        let t = Threshold::percent(10.0);
        let mut det = ExactHhh::new(h());
        let disj = run_disjoint(
            pkts.iter().copied(),
            horizon,
            window,
            &h(),
            &mut det,
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        let slid = run_sliding_exact(
            pkts.iter().copied(),
            horizon,
            window,
            TimeSpan::from_secs(5), // step = window: sliding == disjoint
            &h(),
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(disj[0].len(), slid[0].len());
        for (d, s) in disj[0].iter().zip(&slid[0]) {
            assert_eq!(d.total, s.total);
            assert_eq!(names(d), names(s));
        }
    }

    #[test]
    fn multiple_thresholds_one_pass() {
        let pkts = stream(6, 300, 4);
        let ts = [Threshold::percent(1.0), Threshold::percent(5.0), Threshold::percent(10.0)];
        let mut det = ExactHhh::new(h());
        let reports = run_disjoint(
            pkts.iter().copied(),
            TimeSpan::from_secs(6),
            TimeSpan::from_secs(3),
            &h(),
            &mut det,
            &ts,
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(reports.len(), 3);
        // Lower thresholds report supersets.
        for ((r1, r5), _r10) in reports[0].iter().zip(&reports[1]).zip(&reports[2]) {
            let p1 = r1.prefix_set();
            let p5 = r5.prefix_set();
            assert!(r1.len() >= r5.len());
            // Threshold monotonicity of HHH counts, not necessarily of
            // the sets themselves (discounting can promote ancestors);
            // at minimum the level-0 heavies at 5% appear at 1%.
            for p in &p5 {
                if r5.hhhs.iter().any(|r| r.prefix == *p && r.level == 0) {
                    assert!(p1.contains(p), "5% host HHH missing at 1%");
                }
            }
        }
    }

    #[test]
    fn microvaried_matches_brute_force() {
        let pkts = stream(9, 500, 5);
        let horizon = TimeSpan::from_secs(9);
        let base = TimeSpan::from_secs(3);
        let deltas =
            [TimeSpan::from_millis(100), TimeSpan::from_millis(40), TimeSpan::from_millis(10)];
        let t = Threshold::percent(5.0);
        let run = run_microvaried(
            pkts.iter().copied(),
            horizon,
            base,
            &deltas,
            &h(),
            t,
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(run.baseline.len(), 3);
        assert_eq!(run.variants.len(), 3);
        // Deltas preserved in request order.
        assert_eq!(run.variants[0].0, TimeSpan::from_millis(100));
        for (k, b) in run.baseline.iter().enumerate() {
            let (total, truth) = brute(&pkts, b.start, b.end, t);
            assert_eq!(b.total, total);
            assert_eq!(names(b), truth, "baseline window {k}");
        }
        for (delta, reports) in &run.variants {
            for r in reports {
                let (total, truth) = brute(&pkts, r.start, r.end, t);
                assert_eq!(r.total, total, "delta {delta} window {}", r.index);
                assert_eq!(names(r), truth, "delta {delta} window {}", r.index);
                assert_eq!(r.end - r.start, base - *delta);
            }
        }
    }

    #[test]
    fn continuous_driver_probes_in_order() {
        use hhh_core::{TdbfHhh, TdbfHhhConfig};
        let pkts = stream(10, 200, 6);
        let probes: Vec<Nanos> = (1..10).map(Nanos::from_secs).collect();
        let mut det = TdbfHhh::new(
            h(),
            TdbfHhhConfig { half_life: TimeSpan::from_secs(2), ..TdbfHhhConfig::default() },
        );
        let reports = run_continuous(
            pkts.iter().copied(),
            &probes,
            &mut det,
            Threshold::percent(10.0),
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(reports.len(), 9);
        // The persistent 30% source must appear once decay has settled.
        let hits = reports
            .iter()
            .skip(2)
            .filter(|r| r.hhhs.iter().any(|x| x.prefix.to_string() == "10.1.1.1/32"))
            .count();
        assert!(hits >= 6, "persistent heavy found in only {hits}/7 probes");
    }

    #[test]
    fn empty_stream_yields_empty_windows() {
        let mut det = ExactHhh::new(h());
        let reports = run_disjoint(
            std::iter::empty(),
            TimeSpan::from_secs(10),
            TimeSpan::from_secs(2),
            &h(),
            &mut det,
            &[Threshold::percent(5.0)],
            Measure::Bytes,
            |p: &PacketRecord| p.src,
        );
        assert_eq!(reports[0].len(), 5);
        assert!(reports[0].iter().all(|r| r.total == 0 && r.is_empty()));
    }
}
