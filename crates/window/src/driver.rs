//! Window drivers: feeding packet streams through detectors under a
//! window model.
//!
//! All drivers are generic over the hierarchy, a key-extraction closure
//! (`&PacketRecord → item`, usually `|p| p.src`), and the [`Measure`]
//! (bytes for the paper's experiments). They consume the stream once.

use crate::geometry;
use crate::report::WindowReport;
use hhh_core::{discount_bottom_up, ContinuousDetector, HhhDetector, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::{Measure, Nanos, PacketRecord, TimeSpan};
use std::collections::{HashMap, VecDeque};

/// Run a windowed detector over **disjoint** windows: report at every
/// boundary, then reset — the practice the paper quantifies the cost
/// of. Packets after the last complete window are ignored, matching
/// [`geometry::disjoint`].
///
/// Returns one vector of [`WindowReport`]s per requested threshold
/// (same order), each with one entry per window.
#[allow(clippy::too_many_arguments)] // horizon/window/thresholds/measure/key are the experiment's natural parameters
pub fn run_disjoint<H, D, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    window: TimeSpan,
    hierarchy: &H,
    detector: &mut D,
    thresholds: &[Threshold],
    measure: Measure,
    key: F,
) -> Vec<Vec<WindowReport<H::Prefix>>>
where
    H: Hierarchy,
    D: HhhDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    let _ = hierarchy;
    let n_windows = horizon / window;
    let mut out: Vec<Vec<WindowReport<H::Prefix>>> =
        thresholds.iter().map(|_| Vec::with_capacity(n_windows as usize)).collect();
    let mut cur: u64 = 0;

    let flush = |cur: u64, detector: &mut D, out: &mut Vec<Vec<WindowReport<H::Prefix>>>| {
        for (ti, t) in thresholds.iter().enumerate() {
            out[ti].push(WindowReport {
                index: cur,
                start: Nanos::ZERO + window * cur,
                end: Nanos::ZERO + window * (cur + 1),
                total: detector.total(),
                hhhs: detector.report(*t),
            });
        }
        detector.reset();
    };

    for p in packets {
        let w = p.ts.bin_index(window);
        if w >= n_windows {
            break; // packets are time-sorted; the rest is partial tail
        }
        while cur < w {
            flush(cur, detector, &mut out);
            cur += 1;
        }
        detector.observe(key(&p), measure.weight(&p));
    }
    while cur < n_windows {
        flush(cur, detector, &mut out);
        cur += 1;
    }
    out
}

/// Evaluate **every sliding position exactly** via rolling per-epoch
/// counts. Requires `window % step == 0` (the paper's 5/10/20 s windows
/// with a 1 s step all qualify); one pass, exact output.
///
/// Returns one vector of reports per threshold; entry `i` of each is
/// sliding position `i` (start = `i × step`).
#[allow(clippy::too_many_arguments)]
pub fn run_sliding_exact<H, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    window: TimeSpan,
    step: TimeSpan,
    hierarchy: &H,
    thresholds: &[Threshold],
    measure: Measure,
    key: F,
) -> Vec<Vec<WindowReport<H::Prefix>>>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    assert!(!step.is_zero() && !window.is_zero(), "window and step must be non-zero");
    assert!(window % step == TimeSpan::ZERO, "step must divide the window length exactly");
    assert!(window <= horizon, "window longer than the horizon");
    let epw = window / step; // epochs per window
    let n_epochs = horizon / step;
    let n_positions = n_epochs - epw + 1;

    let mut out: Vec<Vec<WindowReport<H::Prefix>>> =
        thresholds.iter().map(|_| Vec::with_capacity(n_positions as usize)).collect();

    let mut rolling: HashMap<H::Item, u64> = HashMap::new();
    let mut rolling_total: u64 = 0;
    let mut window_epochs: VecDeque<HashMap<H::Item, u64>> = VecDeque::new();
    let mut cur_epoch: u64 = 0;
    let mut cur_map: HashMap<H::Item, u64> = HashMap::new();

    let finalize_epoch = |cur_epoch: u64,
                          cur_map: &mut HashMap<H::Item, u64>,
                          rolling: &mut HashMap<H::Item, u64>,
                          rolling_total: &mut u64,
                          window_epochs: &mut VecDeque<HashMap<H::Item, u64>>,
                          out: &mut Vec<Vec<WindowReport<H::Prefix>>>| {
        let finished = core::mem::take(cur_map);
        for (&k, &v) in &finished {
            *rolling.entry(k).or_default() += v;
            *rolling_total += v;
        }
        window_epochs.push_back(finished);
        if window_epochs.len() > epw as usize {
            let old = window_epochs.pop_front().expect("non-empty");
            for (k, v) in old {
                let e = rolling.get_mut(&k).expect("rolling covers window epochs");
                *e -= v;
                *rolling_total -= v;
                if *e == 0 {
                    rolling.remove(&k);
                }
            }
        }
        if window_epochs.len() == epw as usize {
            let position = cur_epoch + 1 - epw;
            // Build level maps once, then discount per threshold.
            let levels = hierarchy.levels();
            let mut maps: Vec<HashMap<H::Prefix, u64>> = vec![HashMap::new(); levels];
            for (&item, &c) in rolling.iter() {
                for (level, map) in maps.iter_mut().enumerate() {
                    *map.entry(hierarchy.generalize(item, level)).or_default() += c;
                }
            }
            for (ti, t) in thresholds.iter().enumerate() {
                let t_abs = t.absolute(*rolling_total);
                out[ti].push(WindowReport {
                    index: position,
                    start: Nanos::ZERO + step * position,
                    end: Nanos::ZERO + step * position + window,
                    total: *rolling_total,
                    hhhs: discount_bottom_up(hierarchy, &maps, t_abs),
                });
            }
        }
    };

    for p in packets {
        let e = p.ts.bin_index(step);
        if e >= n_epochs {
            break;
        }
        while cur_epoch < e {
            finalize_epoch(
                cur_epoch,
                &mut cur_map,
                &mut rolling,
                &mut rolling_total,
                &mut window_epochs,
                &mut out,
            );
            cur_epoch += 1;
        }
        *cur_map.entry(key(&p)).or_default() += measure.weight(&p);
    }
    while cur_epoch < n_epochs {
        finalize_epoch(
            cur_epoch,
            &mut cur_map,
            &mut rolling,
            &mut rolling_total,
            &mut window_epochs,
            &mut out,
        );
        cur_epoch += 1;
    }
    out
}

/// The result of a micro-variation run (Fig. 3's setup): the baseline
/// windows plus, for each delta, the same windows shortened by that
/// delta (same start points).
#[derive(Clone, Debug)]
pub struct MicroVariedRun<P> {
    /// Baseline (full-length) window reports.
    pub baseline: Vec<WindowReport<P>>,
    /// For each requested delta (same order): the shortened-window
    /// reports, index-aligned with `baseline`.
    pub variants: Vec<(TimeSpan, Vec<WindowReport<P>>)>,
}

/// Evaluate a disjoint baseline window against micro-shortened variants
/// in a single pass. For each baseline window `[k·b, (k+1)·b)` and each
/// delta `d`, the variant window is `[k·b, (k+1)·b − d)`. Exact.
#[allow(clippy::too_many_arguments)]
pub fn run_microvaried<H, F>(
    packets: impl Iterator<Item = PacketRecord>,
    horizon: TimeSpan,
    base: TimeSpan,
    deltas: &[TimeSpan],
    hierarchy: &H,
    threshold: Threshold,
    measure: Measure,
    key: F,
) -> MicroVariedRun<H::Prefix>
where
    H: Hierarchy,
    F: Fn(&PacketRecord) -> H::Item,
{
    assert!(!deltas.is_empty(), "need at least one delta");
    let mut deltas_sorted: Vec<TimeSpan> = deltas.to_vec();
    deltas_sorted.sort();
    assert!(*deltas_sorted.last().expect("non-empty") < base, "delta must be < base window");
    let max_delta = *deltas_sorted.last().expect("non-empty");

    let spans = geometry::disjoint(horizon, base);
    let n_windows = spans.len() as u64;

    let mut baseline = Vec::with_capacity(spans.len());
    let mut variants: Vec<(TimeSpan, Vec<WindowReport<H::Prefix>>)> =
        deltas.iter().map(|d| (*d, Vec::with_capacity(spans.len()))).collect();

    let mut counts: HashMap<H::Item, u64> = HashMap::new();
    let mut total: u64 = 0;
    // Packets in the window's final `max_delta`, with their offset from
    // the window end (so variant subtraction is a filter, not a scan of
    // the whole window).
    let mut tail: Vec<(TimeSpan, H::Item, u64)> = Vec::new();
    let mut cur: u64 = 0;

    let report_from =
        |counts: &HashMap<H::Item, u64>, total: u64, index: u64, start: Nanos, end: Nanos| {
            let levels = hierarchy.levels();
            let mut maps: Vec<HashMap<H::Prefix, u64>> = vec![HashMap::new(); levels];
            for (&item, &c) in counts.iter() {
                for (level, map) in maps.iter_mut().enumerate() {
                    *map.entry(hierarchy.generalize(item, level)).or_default() += c;
                }
            }
            WindowReport {
                index,
                start,
                end,
                total,
                hhhs: discount_bottom_up(hierarchy, &maps, threshold.absolute(total)),
            }
        };

    let flush = |cur: u64,
                 counts: &mut HashMap<H::Item, u64>,
                 total: &mut u64,
                 tail: &mut Vec<(TimeSpan, H::Item, u64)>,
                 baseline: &mut Vec<WindowReport<H::Prefix>>,
                 variants: &mut Vec<(TimeSpan, Vec<WindowReport<H::Prefix>>)>| {
        let start = Nanos::ZERO + base * cur;
        let end = start + base;
        baseline.push(report_from(counts, *total, cur, start, end));
        // Subtract tail packets incrementally, smallest delta first:
        // each delta removes the packets in [base − delta, base − prev).
        tail.sort_by_key(|e| core::cmp::Reverse(e.0));
        let mut variant_counts = counts.clone();
        let mut variant_total = *total;
        let mut ordered: Vec<usize> = (0..variants.len()).collect();
        ordered.sort_by_key(|&i| variants[i].0);
        let mut prev = TimeSpan::ZERO;
        let mut tail_iter = {
            // offset_from_end ascending
            let mut t = core::mem::take(tail);
            t.sort_by_key(|e| e.0);
            t.into_iter().peekable()
        };
        for vi in ordered {
            let delta = variants[vi].0;
            while let Some(&(off, _, _)) = tail_iter.peek() {
                // A packet with offset exactly `delta` sits at the
                // variant's (exclusive) end boundary and is excluded.
                if off <= delta {
                    let (_, item, w) = tail_iter.next().expect("peeked");
                    let e = variant_counts.get_mut(&item).expect("tail item counted");
                    *e -= w;
                    variant_total -= w;
                    if *e == 0 {
                        variant_counts.remove(&item);
                    }
                } else {
                    break;
                }
            }
            variants[vi].1.push(report_from(
                &variant_counts,
                variant_total,
                cur,
                start,
                end - delta,
            ));
            prev = delta;
        }
        let _ = prev;
        counts.clear();
        *total = 0;
    };

    for p in packets {
        let w = p.ts.bin_index(base);
        if w >= n_windows {
            break;
        }
        while cur < w {
            flush(cur, &mut counts, &mut total, &mut tail, &mut baseline, &mut variants);
            cur += 1;
        }
        let item = key(&p);
        let weight = measure.weight(&p);
        *counts.entry(item).or_default() += weight;
        total += weight;
        let window_end = Nanos::ZERO + base * (w + 1);
        let offset_from_end = window_end - p.ts;
        if offset_from_end <= max_delta {
            tail.push((offset_from_end, item, weight));
        }
    }
    while cur < n_windows {
        flush(cur, &mut counts, &mut total, &mut tail, &mut baseline, &mut variants);
        cur += 1;
    }

    MicroVariedRun { baseline, variants }
}

/// Drive a **windowless** (continuous) detector and collect reports at
/// the given probe instants (must be sorted ascending).
pub fn run_continuous<H, D, F>(
    packets: impl Iterator<Item = PacketRecord>,
    probes: &[Nanos],
    detector: &mut D,
    threshold: Threshold,
    measure: Measure,
    key: F,
) -> Vec<WindowReport<H::Prefix>>
where
    H: Hierarchy,
    D: ContinuousDetector<H>,
    F: Fn(&PacketRecord) -> H::Item,
{
    assert!(probes.windows(2).all(|w| w[0] <= w[1]), "probe instants must be sorted");
    let mut out = Vec::with_capacity(probes.len());
    let mut next = 0usize;
    for p in packets {
        while next < probes.len() && probes[next] <= p.ts {
            out.push(WindowReport {
                index: next as u64,
                start: probes[next],
                end: probes[next],
                total: detector.decayed_total(probes[next]) as u64,
                hhhs: detector.report_at(probes[next], threshold),
            });
            next += 1;
        }
        detector.observe(p.ts, key(&p), measure.weight(&p));
    }
    while next < probes.len() {
        out.push(WindowReport {
            index: next as u64,
            start: probes[next],
            end: probes[next],
            total: detector.decayed_total(probes[next]) as u64,
            hhhs: detector.report_at(probes[next], threshold),
        });
        next += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::ExactHhh;
    use hhh_hierarchy::Ipv4Hierarchy;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn h() -> Ipv4Hierarchy {
        Ipv4Hierarchy::bytes()
    }

    /// A deterministic pseudo-random packet stream over `secs` seconds.
    fn stream(secs: u64, pps: u64, seed: u64) -> Vec<PacketRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = secs * pps;
        (0..n)
            .map(|i| {
                let ts = Nanos::from_nanos(i * 1_000_000_000 / pps + rng.gen_range(0..1000));
                let src: u32 = if rng.gen::<f64>() < 0.3 {
                    0x0A010101 // persistent heavy
                } else {
                    (rng.gen_range(10u32..50) << 24) | rng.gen_range(0..4096)
                };
                PacketRecord::new(ts, src, 1, 100 + rng.gen_range(0..900))
            })
            .collect()
    }

    /// Brute force: exact HHH of packets in [start, end).
    fn brute(pkts: &[PacketRecord], start: Nanos, end: Nanos, t: Threshold) -> (u64, Vec<String>) {
        let mut d = ExactHhh::new(h());
        for p in pkts.iter().filter(|p| p.ts >= start && p.ts < end) {
            hhh_core::HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, p.wire_len as u64);
        }
        use hhh_core::HhhDetector;
        let mut v: Vec<String> = d.report(t).iter().map(|r| r.prefix.to_string()).collect();
        v.sort();
        (d.total(), v)
    }

    fn names(r: &WindowReport<hhh_nettypes::Ipv4Prefix>) -> Vec<String> {
        let mut v: Vec<String> = r.hhhs.iter().map(|x| x.prefix.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn disjoint_driver_matches_brute_force() {
        let pkts = stream(12, 400, 1);
        let horizon = TimeSpan::from_secs(12);
        let window = TimeSpan::from_secs(5);
        let t = Threshold::percent(5.0);
        let mut det = ExactHhh::new(h());
        let reports = run_disjoint(
            pkts.iter().copied(),
            horizon,
            window,
            &h(),
            &mut det,
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(reports.len(), 1);
        let reports = &reports[0];
        assert_eq!(reports.len(), 2, "12 s / 5 s = 2 complete windows");
        for r in reports {
            let (total, truth) = brute(&pkts, r.start, r.end, t);
            assert_eq!(r.total, total, "window {} total", r.index);
            assert_eq!(names(r), truth, "window {} HHH set", r.index);
        }
    }

    #[test]
    fn sliding_driver_matches_brute_force() {
        let pkts = stream(10, 300, 2);
        let horizon = TimeSpan::from_secs(10);
        let window = TimeSpan::from_secs(4);
        let step = TimeSpan::from_secs(1);
        let t = Threshold::percent(5.0);
        let reports = run_sliding_exact(
            pkts.iter().copied(),
            horizon,
            window,
            step,
            &h(),
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        let reports = &reports[0];
        assert_eq!(reports.len(), 7, "(10−4)/1 + 1 positions");
        for r in reports {
            let (total, truth) = brute(&pkts, r.start, r.end, t);
            assert_eq!(r.total, total, "position {} total", r.index);
            assert_eq!(names(r), truth, "position {} HHH set", r.index);
        }
    }

    #[test]
    fn sliding_first_position_aligned_with_disjoint() {
        let pkts = stream(10, 200, 3);
        let horizon = TimeSpan::from_secs(10);
        let window = TimeSpan::from_secs(5);
        let t = Threshold::percent(10.0);
        let mut det = ExactHhh::new(h());
        let disj = run_disjoint(
            pkts.iter().copied(),
            horizon,
            window,
            &h(),
            &mut det,
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        let slid = run_sliding_exact(
            pkts.iter().copied(),
            horizon,
            window,
            TimeSpan::from_secs(5), // step = window: sliding == disjoint
            &h(),
            &[t],
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(disj[0].len(), slid[0].len());
        for (d, s) in disj[0].iter().zip(&slid[0]) {
            assert_eq!(d.total, s.total);
            assert_eq!(names(d), names(s));
        }
    }

    #[test]
    fn multiple_thresholds_one_pass() {
        let pkts = stream(6, 300, 4);
        let ts = [Threshold::percent(1.0), Threshold::percent(5.0), Threshold::percent(10.0)];
        let mut det = ExactHhh::new(h());
        let reports = run_disjoint(
            pkts.iter().copied(),
            TimeSpan::from_secs(6),
            TimeSpan::from_secs(3),
            &h(),
            &mut det,
            &ts,
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(reports.len(), 3);
        // Lower thresholds report supersets.
        for ((r1, r5), _r10) in reports[0].iter().zip(&reports[1]).zip(&reports[2]) {
            let p1 = r1.prefix_set();
            let p5 = r5.prefix_set();
            assert!(r1.len() >= r5.len());
            // Threshold monotonicity of HHH counts, not necessarily of
            // the sets themselves (discounting can promote ancestors);
            // at minimum the level-0 heavies at 5% appear at 1%.
            for p in &p5 {
                if r5.hhhs.iter().any(|r| r.prefix == *p && r.level == 0) {
                    assert!(p1.contains(p), "5% host HHH missing at 1%");
                }
            }
        }
    }

    #[test]
    fn microvaried_matches_brute_force() {
        let pkts = stream(9, 500, 5);
        let horizon = TimeSpan::from_secs(9);
        let base = TimeSpan::from_secs(3);
        let deltas =
            [TimeSpan::from_millis(100), TimeSpan::from_millis(40), TimeSpan::from_millis(10)];
        let t = Threshold::percent(5.0);
        let run = run_microvaried(
            pkts.iter().copied(),
            horizon,
            base,
            &deltas,
            &h(),
            t,
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(run.baseline.len(), 3);
        assert_eq!(run.variants.len(), 3);
        // Deltas preserved in request order.
        assert_eq!(run.variants[0].0, TimeSpan::from_millis(100));
        for (k, b) in run.baseline.iter().enumerate() {
            let (total, truth) = brute(&pkts, b.start, b.end, t);
            assert_eq!(b.total, total);
            assert_eq!(names(b), truth, "baseline window {k}");
        }
        for (delta, reports) in &run.variants {
            for r in reports {
                let (total, truth) = brute(&pkts, r.start, r.end, t);
                assert_eq!(r.total, total, "delta {delta} window {}", r.index);
                assert_eq!(names(r), truth, "delta {delta} window {}", r.index);
                assert_eq!(r.end - r.start, base - *delta);
            }
        }
    }

    #[test]
    fn continuous_driver_probes_in_order() {
        use hhh_core::{TdbfHhh, TdbfHhhConfig};
        let pkts = stream(10, 200, 6);
        let probes: Vec<Nanos> = (1..10).map(Nanos::from_secs).collect();
        let mut det = TdbfHhh::new(
            h(),
            TdbfHhhConfig { half_life: TimeSpan::from_secs(2), ..TdbfHhhConfig::default() },
        );
        let reports = run_continuous(
            pkts.iter().copied(),
            &probes,
            &mut det,
            Threshold::percent(10.0),
            Measure::Bytes,
            |p| p.src,
        );
        assert_eq!(reports.len(), 9);
        // The persistent 30% source must appear once decay has settled.
        let hits = reports
            .iter()
            .skip(2)
            .filter(|r| r.hhhs.iter().any(|x| x.prefix.to_string() == "10.1.1.1/32"))
            .count();
        assert!(hits >= 6, "persistent heavy found in only {hits}/7 probes");
    }

    #[test]
    fn empty_stream_yields_empty_windows() {
        let mut det = ExactHhh::new(h());
        let reports = run_disjoint(
            std::iter::empty(),
            TimeSpan::from_secs(10),
            TimeSpan::from_secs(2),
            &h(),
            &mut det,
            &[Threshold::percent(5.0)],
            Measure::Bytes,
            |p: &PacketRecord| p.src,
        );
        assert_eq!(reports[0].len(), 5);
        assert!(reports[0].iter().all(|r| r.total == 0 && r.is_empty()));
    }
}
