//! Report sinks: where a [`Pipeline`](crate::Pipeline) delivers its
//! per-window results.
//!
//! Engines push every [`WindowReport`] into a [`ReportSink`] as soon as
//! it is computed, tagged with its **series** index:
//!
//! * threshold-sweeping engines (disjoint, sliding, sharded) use one
//!   series per requested threshold, in request order;
//! * the micro-varied engine uses series `0` for the baseline windows
//!   and series `1 + i` for the `i`-th delta;
//! * single-threshold engines (continuous) use series `0`.
//!
//! Three sinks cover the common shapes: [`CollectSink`] gathers
//! everything into `Vec`s (what the legacy `run_*` drivers returned),
//! any `FnMut(usize, WindowReport<P>)` closure streams reports as they
//! appear, and [`SnapshotSink`] writes the snapshot stream — including
//! serialized [`DetectorSnapshot`]s from the sharded engines, the wire
//! format for cross-process aggregation — in either encoding:
//! [`WireFormat::Json`] (v1 JSON lines) or [`WireFormat::Binary`] (v2
//! frames, the hot aggregation path). `JsonSnapshotSink` survives as
//! an alias for the JSON-defaulting constructor.

use crate::report::WindowReport;
use hhh_core::snapshot::{json_string, DetectorSnapshot, SnapshotFrame, StampedSnapshot};
use hhh_core::WireFormat;
use hhh_nettypes::Nanos;
use std::fmt::Display;
use std::io::Write;

/// A consumer of pipeline output.
pub trait ReportSink<P> {
    /// What [`finish`](Self::finish) hands back when the pipeline is
    /// done (returned by [`Pipeline::run`](crate::Pipeline::run)).
    type Output;

    /// Called once before any report, with the number of series the
    /// engine will emit.
    fn begin(&mut self, series: usize) {
        let _ = series;
    }

    /// One report. `series` identifies the threshold (or micro-varied
    /// variant) the report belongs to; within a series, reports arrive
    /// in window order.
    fn accept(&mut self, series: usize, report: WindowReport<P>);

    /// Serialized merged detector state at a report point (`at`),
    /// covering the window starting at `start` (`start == at` for
    /// windowless probes). Only engines whose detector opts into
    /// [`MergeableDetector::snapshot`](hhh_core::MergeableDetector::snapshot)
    /// call this; the default ignores it.
    fn state(&mut self, start: Nanos, at: Nanos, snapshot: &DetectorSnapshot) {
        let _ = (start, at, snapshot);
    }

    /// Does this sink consume states as **v2 frames**? When `true`,
    /// engines encode states natively
    /// ([`MergeableDetector::to_frame`](hhh_core::MergeableDetector::to_frame),
    /// the `FrameEncode` path) and call
    /// [`state_frame`](Self::state_frame) instead of building a
    /// JSON-bodied snapshot for [`state`](Self::state) — the binary
    /// sinks and the snapshot transports opt in.
    fn wants_frames(&self) -> bool {
        false
    }

    /// A state already encoded as a v2 frame (carries its own window
    /// geometry). The default transcodes back to the JSON-bodied
    /// snapshot and forwards to [`state`](Self::state), so sinks that
    /// never opted into [`wants_frames`](Self::wants_frames) still see
    /// every state.
    fn state_frame(&mut self, frame: &SnapshotFrame) {
        if let Ok(snapshot) = DetectorSnapshot::from_frame(frame) {
            self.state(frame.start, frame.at, &snapshot);
        }
    }

    /// The stream is complete; produce the output.
    fn finish(self) -> Self::Output;
}

/// Collect every report into one `Vec<WindowReport>` per series — the
/// shape the legacy `run_*` drivers returned.
#[derive(Clone, Debug, Default)]
pub struct CollectSink<P> {
    series: Vec<Vec<WindowReport<P>>>,
}

impl<P> CollectSink<P> {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink { series: Vec::new() }
    }
}

impl<P> ReportSink<P> for CollectSink<P> {
    type Output = Vec<Vec<WindowReport<P>>>;

    fn begin(&mut self, series: usize) {
        self.series.resize_with(series, Vec::new);
    }

    fn accept(&mut self, series: usize, report: WindowReport<P>) {
        if self.series.len() <= series {
            self.series.resize_with(series + 1, Vec::new);
        }
        self.series[series].push(report);
    }

    fn finish(self) -> Self::Output {
        self.series
    }
}

/// Streaming sink: wrap an `FnMut(usize, WindowReport<P>)` closure so
/// it sees each report the moment its window closes, without any
/// buffering.
///
/// ```
/// use hhh_window::FnSink;
/// let mut count = 0usize;
/// let sink = FnSink(|_series: usize, _report: hhh_window::WindowReport<u32>| count += 1);
/// # let _ = sink;
/// ```
pub struct FnSink<F>(pub F);

impl<P, F: FnMut(usize, WindowReport<P>)> ReportSink<P> for FnSink<F> {
    type Output = ();

    fn accept(&mut self, series: usize, report: WindowReport<P>) {
        (self.0)(series, report);
    }

    fn finish(self) -> Self::Output {}
}

/// Write pipeline output as a snapshot stream in either wire format.
///
/// **JSON (v1)** — one `report` object per window report and one
/// `state` object per detector snapshot, as JSON lines. The `state`
/// lines carry the full serialized [`MergeableDetector`] state of the
/// (merged) detector at each report point plus the report window's
/// geometry — ship them to another process and fold states with the
/// same merge algebra the in-process pipeline uses:
///
/// ```json
/// {"type":"report","series":0,"index":3,"start_ns":…,"end_ns":…,"total":…,
///  "hhhs":[{"prefix":"10.0.0.0/8","level":3,"estimate":…,"discounted":…},…]}
/// {"type":"state","at_ns":…,"start_ns":…,"snapshot":{"kind":"exact","total":…,"state":{…}}}
/// ```
///
/// **Binary (v2)** — the same records as length-prefixed binary frames
/// (`hhh_core::snapshot::binary`): states as per-kind binary bodies,
/// reports as frames carrying the verbatim JSON line. Orders of
/// magnitude cheaper to decode on the aggregation tier; transcodes
/// back to v1 byte-identically.
///
/// [`MergeableDetector`]: hhh_core::MergeableDetector
#[derive(Debug)]
pub struct SnapshotSink<W: Write> {
    out: W,
    format: WireFormat,
    /// First I/O (or encode) error, if any (subsequent writes are
    /// skipped).
    error: Option<std::io::Error>,
}

/// Backward-compatible name for the JSON-writing [`SnapshotSink`]
/// (`SnapshotSink::new` defaults to JSON).
pub type JsonSnapshotSink<W> = SnapshotSink<W>;

impl SnapshotSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) a snapshot stream file at `path` — the
    /// path-based thin wrapper over the file transport. For sockets
    /// and channels use [`TransportSink`](crate::TransportSink) over
    /// the matching [`transport`](crate::transport) instead.
    pub fn create(path: impl AsRef<std::path::Path>, format: WireFormat) -> std::io::Result<Self> {
        Ok(Self::with_format(std::io::BufWriter::new(std::fs::File::create(path)?), format))
    }
}

impl<W: Write> SnapshotSink<W> {
    /// Wrap a writer (`Vec<u8>`, `BufWriter<File>`, a socket…) in a
    /// **JSON (v1)** sink.
    pub fn new(out: W) -> Self {
        Self::with_format(out, WireFormat::Json)
    }

    /// A JSON (v1) sink.
    pub fn json(out: W) -> Self {
        Self::with_format(out, WireFormat::Json)
    }

    /// A binary (v2) sink.
    pub fn binary(out: W) -> Self {
        Self::with_format(out, WireFormat::Binary)
    }

    /// A sink writing the given wire format.
    pub fn with_format(out: W, format: WireFormat) -> Self {
        SnapshotSink { out, format, error: None }
    }

    /// The wire format this sink writes.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(bytes) {
            self.error = Some(e);
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(line.as_bytes()).and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

/// Render one `{"type":"report",…}` JSON line (no trailing newline) —
/// the report shape of the snapshot stream. Shared between
/// [`SnapshotSink`] and the `hhh-agg` aggregator, so a merged report
/// diffs byte-for-byte against an in-process one (binary streams carry
/// this very line inside their report frames).
pub fn render_report_line<P: Display>(series: usize, report: &WindowReport<P>) -> String {
    let mut hhhs = String::from("[");
    for (i, r) in report.hhhs.iter().enumerate() {
        if i > 0 {
            hhhs.push(',');
        }
        hhhs.push_str(&format!(
            "{{\"prefix\":{},\"level\":{},\"estimate\":{},\"discounted\":{}}}",
            json_string(&r.prefix),
            r.level,
            r.estimate,
            r.discounted
        ));
    }
    hhhs.push(']');
    format!(
        "{{\"type\":\"report\",\"series\":{},\"index\":{},\"start_ns\":{},\"end_ns\":{},\
         \"total\":{},\"hhhs\":{}}}",
        series,
        report.index,
        report.start.as_nanos(),
        report.end.as_nanos(),
        report.total,
        hhhs
    )
}

impl<P: Display, W: Write> ReportSink<P> for SnapshotSink<W> {
    /// The writer plus the first I/O error encountered, if any.
    type Output = (W, Option<std::io::Error>);

    fn accept(&mut self, series: usize, report: WindowReport<P>) {
        let line = render_report_line(series, &report);
        match self.format {
            WireFormat::Json => self.write_line(&line),
            WireFormat::Binary => {
                let frame = SnapshotFrame::report(&line, report.start, report.end, report.total);
                self.write_bytes(&frame.encode());
            }
        }
    }

    fn state(&mut self, start: Nanos, at: Nanos, snapshot: &DetectorSnapshot) {
        match self.format {
            WireFormat::Json => {
                // One renderer for the state line shape, borrowed — no
                // clone of the (possibly megabyte) state body on the
                // hot sink path.
                let line = StampedSnapshot::render(start, at, snapshot);
                self.write_line(&line);
            }
            WireFormat::Binary => match snapshot.to_frame(start, at) {
                Ok(frame) => self.write_bytes(&frame.encode()),
                Err(e) if self.error.is_none() => {
                    self.error =
                        Some(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()));
                }
                Err(_) => {}
            },
        }
    }

    /// A binary sink takes states as frames, so engines use the
    /// native encode path (no JSON rendered or parsed per state).
    fn wants_frames(&self) -> bool {
        self.format == WireFormat::Binary
    }

    fn state_frame(&mut self, frame: &SnapshotFrame) {
        match self.format {
            WireFormat::Binary => self.write_bytes(&frame.encode()),
            // A JSON sink fed a frame (a custom engine, say) still
            // writes the canonical state line.
            WireFormat::Json => match DetectorSnapshot::from_frame(frame) {
                Ok(snapshot) => {
                    let line = StampedSnapshot::render(frame.start, frame.at, &snapshot);
                    self.write_line(&line);
                }
                Err(e) if self.error.is_none() => {
                    self.error =
                        Some(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()));
                }
                Err(_) => {}
            },
        }
    }

    fn finish(mut self) -> Self::Output {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
        (self.out, self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::HhhReport;

    fn report(index: u64) -> WindowReport<u32> {
        WindowReport {
            index,
            start: Nanos::from_secs(index),
            end: Nanos::from_secs(index + 1),
            total: 100 * (index + 1),
            hhhs: vec![HhhReport {
                prefix: 7u32,
                level: 0,
                estimate: 50,
                discounted: 50,
                lower_bound: 50,
            }],
        }
    }

    fn snap() -> DetectorSnapshot {
        DetectorSnapshot {
            kind: "exact".into(),
            total: 300,
            state_json: "{\"counts\":[[\"7\",300]]}".into(),
        }
    }

    #[test]
    fn collect_sink_preserves_series_shape() {
        let mut sink: CollectSink<u32> = CollectSink::new();
        sink.begin(3);
        sink.accept(1, report(0));
        sink.accept(0, report(0));
        sink.accept(1, report(1));
        let out = sink.finish();
        assert_eq!(out.len(), 3, "begin() fixes the series count even when one stays empty");
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[1].len(), 2);
        assert!(out[2].is_empty());
    }

    #[test]
    fn closure_sink_streams() {
        let mut seen = Vec::new();
        {
            let mut sink =
                FnSink(|series: usize, r: WindowReport<u32>| seen.push((series, r.index)));
            sink.accept(0, report(0));
            sink.accept(0, report(1));
            sink.finish();
        }
        assert_eq!(seen, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn json_sink_writes_report_and_state_lines() {
        let mut sink = SnapshotSink::new(Vec::new());
        ReportSink::<u32>::begin(&mut sink, 1);
        sink.accept(0, report(2));
        ReportSink::<u32>::state(&mut sink, Nanos::from_secs(2), Nanos::from_secs(3), &snap());
        let (bytes, err) = ReportSink::<u32>::finish(sink);
        assert!(err.is_none());
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"report\",\"series\":0,\"index\":2,"));
        assert!(lines[0].contains("\"prefix\":\"7\""));
        assert!(lines[1]
            .starts_with("{\"type\":\"state\",\"at_ns\":3000000000,\"start_ns\":2000000000,"));
        assert!(lines[1].contains("\"kind\":\"exact\""));
    }

    #[test]
    fn binary_sink_writes_decodable_frames() {
        let mut sink = SnapshotSink::binary(Vec::new());
        ReportSink::<u32>::begin(&mut sink, 1);
        sink.accept(0, report(2));
        ReportSink::<u32>::state(&mut sink, Nanos::from_secs(2), Nanos::from_secs(3), &snap());
        let (bytes, err) = ReportSink::<u32>::finish(sink);
        assert!(err.is_none());

        let (rep, used) = SnapshotFrame::decode(&bytes).unwrap();
        assert_eq!(rep.kind, "report");
        assert_eq!(rep.report_line().unwrap(), render_report_line(0, &report(2)));
        let (state, used2) = SnapshotFrame::decode(&bytes[used..]).unwrap();
        assert_eq!(used + used2, bytes.len());
        assert_eq!(state.kind, "exact");
        assert_eq!(state.start, Nanos::from_secs(2));
        assert_eq!(state.at, Nanos::from_secs(3));
        // The state frame transcodes back to the identical snapshot.
        assert_eq!(DetectorSnapshot::from_frame(&state).unwrap(), snap());
    }
}
