//! **Snapshot transports**: one interface for moving v2 snapshot
//! frames between processes — files, TCP sockets, and in-process
//! channels.
//!
//! Before this module, snapshot I/O was three ad-hoc pieces: the sink
//! wrote files, the source read files, and `hhh-agg` folded file
//! paths. The transport layer makes the *medium* a pluggable detail:
//!
//! | transport | write side | read side |
//! |---|---|---|
//! | [`FileTransport`] | any `io::Write` (files, pipes, `Vec<u8>`) | any `io::BufRead` |
//! | [`TcpTransport`] / [`TcpFrameListener`] | connect + reconnect-with-backoff | multi-client accept |
//! | [`mem_transport`] | bounded in-process channel | same channel |
//!
//! A frame on a socket is **the same bytes** as a frame in a file: the
//! length-delimited v2 encoding (`hhh_core::snapshot::binary`) already
//! self-describes and self-delimits, so every transport just moves
//! encoded frames — [`FrameWrite`] pushes them, [`FrameRead`] pulls
//! them, and the pipeline faces ([`TransportSink`](crate::TransportSink),
//! [`TransportSource`]) adapt either end to the `Pipeline` API. The
//! write side hands detectors' **natively encoded** frames through
//! (`MergeableDetector::to_frame`, the `FrameEncode` path) — no JSON
//! is rendered or parsed anywhere between a shard's detector state and
//! the aggregator's restored detector.
//!
//! ## TCP specifics
//!
//! * Each connection opens with a [`hello_frame`]: a tiny frame of
//!   kind [`HELLO_KIND`] carrying the writer's **stream id** (shard
//!   index) and label. The listener groups frames by stream id and
//!   returns streams sorted by it, so a socket fold applies merges in
//!   the same deterministic shard order as a file fold — which is what
//!   makes the two byte-identical.
//! * The write side reconnects with exponential backoff — on initial
//!   connect (shards may start before the aggregator binds) and on
//!   mid-stream failures, re-sending the frame whose write failed on
//!   the fresh connection. Each hello also carries the writer's
//!   **delivered-frame count**, and the listener refuses to stitch a
//!   reconnect onto a stream with a gap: a frame the kernel accepted
//!   but never delivered (write succeeded locally, connection died in
//!   flight) surfaces as an incomplete stream / timeout error — never
//!   silently wrong output. Duplicates cannot occur (a frame whose
//!   write errored is never whole on the old connection, so the
//!   re-send is the only copy); writer-crash *resume* (retry/dedup
//!   across process restarts) belongs to a later aggregator-tier
//!   layer.
//! * A peer that dies mid-frame leaves a torn tail: the read side
//!   reports it as a clean typed error ([`TransportError::Frame`]) —
//!   never a panic, hang, or pathological allocation — and the
//!   listener keeps the connection's fully-decoded frames, waiting for
//!   the writer's reconnect to resume the stream.

use crate::sink::{render_report_line, ReportSink};
use crate::source::Source;
use crate::WindowReport;
use hhh_core::snapshot::binary::{payload_len, FRAME_HEADER_LEN, REPORT_KIND};
use hhh_core::snapshot::{DetectorSnapshot, SnapshotFrame};
use hhh_core::{SnapshotError, WireSnapshot};
use hhh_nettypes::Nanos;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a transport operation failed. Implements
/// [`std::error::Error::source`]: I/O failures chain to the underlying
/// [`io::Error`], framing failures to the [`SnapshotError`].
#[derive(Debug)]
pub enum TransportError {
    /// The underlying medium failed (socket reset, disk full, peer
    /// hung up, connect/accept exhausted its retries).
    Io {
        /// What the transport was doing (`connect`, `accept`, `read`,
        /// `write`, `send`).
        op: &'static str,
        /// The I/O failure.
        source: io::Error,
    },
    /// The bytes on the medium did not frame-decode (torn tail from a
    /// peer that died mid-frame, garbage, version skew).
    Frame(SnapshotError),
    /// A TCP connection did not open with a valid [`hello_frame`].
    Handshake(&'static str),
}

impl Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io { op, source } => write!(f, "transport {op} failed: {source}"),
            TransportError::Frame(e) => write!(f, "transport framing: {e}"),
            TransportError::Handshake(what) => write!(f, "transport handshake: {what}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io { source, .. } => Some(source),
            TransportError::Frame(e) => Some(e),
            TransportError::Handshake(_) => None,
        }
    }
}

impl TransportError {
    fn io(op: &'static str, source: io::Error) -> Self {
        TransportError::Io { op, source }
    }

    /// The lossy-but-`Clone` [`SnapshotError`] form, for surfaces that
    /// carry decode errors (`SnapshotSource::error`-style).
    pub fn to_snapshot_error(&self) -> SnapshotError {
        match self {
            TransportError::Io { op, source } => SnapshotError::transport(op, source),
            TransportError::Frame(e) => e.clone(),
            TransportError::Handshake(what) => SnapshotError::Invalid { field: "hello", what },
        }
    }
}

/// The write half of a snapshot transport: push v2 frames into a
/// medium. Implementations must deliver each frame atomically from the
/// reader's point of view (all transports here frame-delimit, so a
/// reader never sees half a frame as success).
pub trait FrameWrite {
    /// Deliver one frame.
    fn write_frame(&mut self, frame: &SnapshotFrame) -> Result<(), TransportError>;

    /// Flush anything buffered to the medium.
    fn flush(&mut self) -> Result<(), TransportError> {
        Ok(())
    }
}

/// The read half of a snapshot transport: pull v2 frames out of a
/// medium. `Ok(None)` is a clean end-of-stream at a frame boundary.
pub trait FrameRead {
    /// The next frame, `Ok(None)` at clean end-of-stream, or a typed
    /// error (torn frame, I/O failure).
    fn read_frame(&mut self) -> Result<Option<SnapshotFrame>, TransportError>;
}

/// Read up to `buf.len()` bytes, tolerating short reads and EINTR —
/// the one fill loop the transports and `SnapshotSource` share.
pub(crate) fn fill_from<R: Read>(input: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match input.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

fn read_fully<R: Read>(input: &mut R, buf: &mut [u8]) -> Result<usize, TransportError> {
    fill_from(input, buf).map_err(|e| TransportError::io("read", e))
}

/// Read one length-delimited v2 frame off a byte stream: the one
/// definition of "frame off a wire" every [`FrameRead`] implementation
/// here shares. `Ok(None)` = clean end at a frame boundary; a partial
/// header or payload is a typed truncation error.
pub fn read_frame_from<R: Read>(input: &mut R) -> Result<Option<SnapshotFrame>, TransportError> {
    let mut header = [0u8; hhh_core::snapshot::binary::FRAME_HEADER_LEN];
    match read_fully(input, &mut header)? {
        0 => return Ok(None),
        n if n < header.len() => {
            return Err(TransportError::Frame(SnapshotError::Parse {
                offset: n,
                what: "truncated frame",
            }));
        }
        _ => {}
    }
    let len = payload_len(&header).map_err(TransportError::Frame)?;
    let mut payload = vec![0u8; len];
    let got = read_fully(input, &mut payload)?;
    if got < len {
        return Err(TransportError::Frame(SnapshotError::Parse {
            offset: got,
            what: "truncated frame",
        }));
    }
    SnapshotFrame::decode_payload(&payload).map(Some).map_err(TransportError::Frame)
}

// ---------------------------------------------------------------------
// FileTransport
// ---------------------------------------------------------------------

/// Frames over any byte stream the standard library can write or read:
/// files, pipes, `Vec<u8>` buffers, or an already-connected socket.
/// Wrap a writer to get [`FrameWrite`], a buffered reader to get
/// [`FrameRead`].
#[derive(Debug)]
pub struct FileTransport<T> {
    inner: T,
}

impl<T> FileTransport<T> {
    /// Wrap an already-open writer or reader.
    pub fn new(inner: T) -> Self {
        FileTransport { inner }
    }

    /// Unwrap the underlying stream.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl FileTransport<BufWriter<std::fs::File>> {
    /// Create (truncate) a frame file at `path` for writing.
    pub fn create(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(FileTransport::new(BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl FileTransport<BufReader<std::fs::File>> {
    /// Open a frame file at `path` for reading.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(FileTransport::new(BufReader::new(std::fs::File::open(path)?)))
    }
}

impl<W: Write> FrameWrite for FileTransport<W> {
    fn write_frame(&mut self, frame: &SnapshotFrame) -> Result<(), TransportError> {
        self.inner.write_all(&frame.encode()).map_err(|e| TransportError::io("write", e))
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.inner.flush().map_err(|e| TransportError::io("write", e))
    }
}

impl<R: BufRead> FrameRead for FileTransport<R> {
    fn read_frame(&mut self) -> Result<Option<SnapshotFrame>, TransportError> {
        read_frame_from(&mut self.inner)
    }
}

// ---------------------------------------------------------------------
// MemTransport
// ---------------------------------------------------------------------

/// Create a bounded in-process frame channel: the [`MemFrameWriter`]
/// half goes to the producing thread (a shard pipeline's
/// [`TransportSink`]), the [`MemFrameReader`] half feeds a consuming
/// pipeline (via [`TransportSource`]) — snapshots move between threads
/// with back-pressure and **zero** serialization (frames cross the
/// channel decoded).
///
/// `capacity` is the number of in-flight frames before
/// [`write_frame`](FrameWrite::write_frame) blocks.
pub fn mem_transport(capacity: usize) -> (MemFrameWriter, MemFrameReader) {
    assert!(capacity > 0, "channel capacity must be non-zero");
    let (tx, rx) = mpsc::sync_channel(capacity);
    (MemFrameWriter { tx }, MemFrameReader { rx })
}

/// The producing half of [`mem_transport`].
#[derive(Clone, Debug)]
pub struct MemFrameWriter {
    tx: mpsc::SyncSender<SnapshotFrame>,
}

impl FrameWrite for MemFrameWriter {
    fn write_frame(&mut self, frame: &SnapshotFrame) -> Result<(), TransportError> {
        self.tx.send(frame.clone()).map_err(|_| {
            TransportError::io(
                "send",
                io::Error::new(io::ErrorKind::BrokenPipe, "frame channel receiver dropped"),
            )
        })
    }
}

/// The consuming half of [`mem_transport`]: ends cleanly when the last
/// [`MemFrameWriter`] clone is dropped.
#[derive(Debug)]
pub struct MemFrameReader {
    rx: mpsc::Receiver<SnapshotFrame>,
}

impl FrameRead for MemFrameReader {
    fn read_frame(&mut self) -> Result<Option<SnapshotFrame>, TransportError> {
        match self.rx.recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(_) => Ok(None), // all writers dropped: clean end
        }
    }
}

// ---------------------------------------------------------------------
// TCP: hello frames
// ---------------------------------------------------------------------

/// The kind header of the per-connection handshake frame.
pub const HELLO_KIND: &str = "hello";

/// The kind header of the acknowledgement frame an acking listener
/// (the `hhh-aggd` [`FrameHub`]) sends back right after a hello:
/// `total` carries the stream id being acked, `at` the number of
/// frames the listener holds for that stream. A resume-capable writer
/// ([`TcpTransport::with_spool`]) reads it to learn where to replay
/// from; the plain PR 5 write side never reads its socket, so the ack
/// sits harmlessly in the kernel buffer.
pub const ACK_KIND: &str = "ack";

/// The hello `start` field value marking a **resume-capable** writer:
/// one that waits for the listener's [`ack_frame`] and replays its
/// spool from the acked position. Plain writers leave `start` at 0 and
/// the listener attributes connection frames to the hello's claimed
/// position instead.
const HELLO_RESUME_FLAG: u64 = 1;

/// Build the handshake frame a [`TcpTransport`] writes when a
/// connection opens: `total` carries the writer's stream id (shard
/// index), the body its human-readable label, and `at` the number of
/// frames the writer believes were **delivered on its previous
/// connections** (0 on the first). The listener uses the id to keep
/// fold order deterministic across nondeterministic connection
/// arrival, and the delivered count to refuse stitching a reconnect
/// onto a stream with a gap — a frame lost in flight keeps the stream
/// incomplete instead of silently shortening it.
pub fn hello_frame(id: u64, label: &str, delivered: u64) -> SnapshotFrame {
    hello_with_flags(id, label, delivered, 0)
}

/// The resume-capable flavor of [`hello_frame`]: marks the writer as
/// one that honors the listener's [`ack_frame`] — the listener will
/// expect this connection's frames to start at the **acked** position,
/// not the claimed one. Written by [`TcpTransport::with_spool`].
pub fn resume_hello_frame(id: u64, label: &str, acked: u64) -> SnapshotFrame {
    hello_with_flags(id, label, acked, HELLO_RESUME_FLAG)
}

fn hello_with_flags(id: u64, label: &str, delivered: u64, flags: u64) -> SnapshotFrame {
    SnapshotFrame {
        start: Nanos::from_nanos(flags),
        at: Nanos::from_nanos(delivered),
        kind: Cow::Borrowed(HELLO_KIND),
        total: id,
        digest: hhh_core::snapshot::binary::fnv1a(label.as_bytes()),
        body: label.as_bytes().to_vec(),
    }
}

/// Build the acknowledgement frame an acking listener sends right
/// after reading a hello: "for stream `id`, I hold `received` frames".
pub fn ack_frame(id: u64, received: u64) -> SnapshotFrame {
    SnapshotFrame {
        start: Nanos::ZERO,
        at: Nanos::from_nanos(received),
        kind: Cow::Borrowed(ACK_KIND),
        total: id,
        digest: hhh_core::snapshot::binary::fnv1a(&[]),
        body: Vec::new(),
    }
}

/// Decode an [`ack_frame`]: `(stream id, received count)`.
pub fn parse_ack(frame: &SnapshotFrame) -> Result<(u64, u64), TransportError> {
    if frame.kind != ACK_KIND {
        return Err(TransportError::Handshake("expected an ack frame"));
    }
    Ok((frame.total, frame.at.as_nanos()))
}

/// A decoded [`hello_frame`] / [`resume_hello_frame`].
#[derive(Clone, Debug)]
struct Hello {
    id: u64,
    label: String,
    delivered: u64,
    resume: bool,
}

/// Decode a hello frame.
fn parse_hello(frame: &SnapshotFrame) -> Result<Hello, TransportError> {
    if frame.kind != HELLO_KIND {
        return Err(TransportError::Handshake("first frame is not a hello"));
    }
    if hhh_core::snapshot::binary::fnv1a(&frame.body) != frame.digest {
        return Err(TransportError::Handshake("hello digest mismatch"));
    }
    let label = String::from_utf8(frame.body.clone())
        .map_err(|_| TransportError::Handshake("hello label is not UTF-8"))?;
    Ok(Hello {
        id: frame.total,
        label,
        delivered: frame.at.as_nanos(),
        resume: frame.start.as_nanos() & HELLO_RESUME_FLAG != 0,
    })
}

// ---------------------------------------------------------------------
// Frame spool
// ---------------------------------------------------------------------

/// A durable, append-only file of encoded v2 frames: the shard-side
/// **spool** that makes a stream replayable across process restarts.
///
/// A [`TcpTransport::with_spool`] writer appends every frame here
/// before sending it, so the spool always holds the authoritative
/// prefix of the stream. When the process restarts, reopening the
/// spool recovers every frame the previous run produced (a torn tail
/// from a crash mid-append is truncated away); the transport then asks
/// the aggregation daemon where to resume (the hello/ack handshake)
/// and replays `spool[acked..]` — the daemon receives every frame
/// exactly once, in order, no matter how many times the shard died.
///
/// The file format is just concatenated [`SnapshotFrame::encode`]
/// bytes — a spool is a valid `SnapshotSource`/`hhh-agg` input stream.
#[derive(Debug)]
pub struct FrameSpool {
    file: std::fs::File,
    /// Byte offset of each complete frame.
    offsets: Vec<u64>,
    /// Byte length of the valid (non-torn) prefix.
    end: u64,
}

impl FrameSpool {
    /// Open (or create) a spool file, scanning any existing frames and
    /// truncating a torn tail left by a crash mid-append.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let total = file.metadata()?.len();
        file.seek(SeekFrom::Start(0))?;
        let mut offsets = Vec::new();
        let mut pos: u64 = 0;
        {
            let mut reader = BufReader::new(&mut file);
            loop {
                let mut header = [0u8; FRAME_HEADER_LEN];
                let got = fill_from(&mut reader, &mut header)?;
                if got < FRAME_HEADER_LEN {
                    break; // clean end or torn header
                }
                let Ok(len) = payload_len(&header) else {
                    break; // corrupt header: treat as torn tail
                };
                let frame_len = (FRAME_HEADER_LEN + len) as u64;
                if pos + frame_len > total {
                    break; // torn payload
                }
                reader.seek_relative(len as i64)?;
                offsets.push(pos);
                pos += frame_len;
            }
        }
        if pos < total {
            file.set_len(pos)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(FrameSpool { file, offsets, end: pos })
    }

    /// Frames currently spooled.
    pub fn len(&self) -> u64 {
        self.offsets.len() as u64
    }

    /// Is the spool empty?
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Append one already-encoded frame.
    pub fn append(&mut self, encoded: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(encoded)?;
        self.offsets.push(self.end);
        self.end += encoded.len() as u64;
        Ok(())
    }

    /// Raw encoded bytes of spooled frame `index` (for replay onto a
    /// socket — the bytes go out verbatim, no re-encode).
    pub fn frame_bytes(&mut self, index: u64) -> io::Result<Vec<u8>> {
        let i = index as usize;
        assert!(i < self.offsets.len(), "spool index out of range");
        let start = self.offsets[i];
        let end = self.offsets.get(i + 1).copied().unwrap_or(self.end);
        let mut buf = vec![0u8; (end - start) as usize];
        self.file.seek(SeekFrom::Start(start))?;
        self.file.read_exact(&mut buf)?;
        self.file.seek(SeekFrom::Start(self.end))?;
        Ok(buf)
    }
}

// ---------------------------------------------------------------------
// TCP: write side
// ---------------------------------------------------------------------

/// The socket write side: length-delimited v2 frames over TCP, with
/// **reconnect-with-backoff**.
///
/// Connecting is lazy (first frame) and retried with exponential
/// backoff, so shard processes may start before the aggregator binds.
/// A mid-stream write failure drops the connection and re-sends the
/// failed frame on a fresh one (each connection re-opens with the
/// [`hello_frame`], whose delivered-frame count lets the listener
/// stitch the stream back together — or detect that a frame the
/// kernel accepted never arrived). After `attempts` consecutive
/// connect failures the error is surfaced as [`TransportError::Io`].
#[derive(Debug)]
pub struct TcpTransport {
    addr: String,
    hello: Option<(u64, String)>,
    stream: Option<TcpStream>,
    /// Frames successfully written (as far as this side can tell) on
    /// all connections so far — what the next hello claims.
    delivered: u64,
    attempts: u32,
    initial_backoff: Duration,
    max_backoff: Duration,
    /// Resume mode ([`with_spool`](Self::with_spool)): the durable
    /// stream of record, replayed from the peer's acked position on
    /// every (re)connection.
    spool: Option<FrameSpool>,
    /// What the peer acked at the last handshake (spool mode).
    acked: u64,
    /// Next spool index to send on the current connection.
    send_pos: u64,
    /// Frames this *process* has pushed through `write_frame` — the
    /// position dedupe that keeps a restarted, deterministic producer
    /// from re-appending frames its previous run already spooled.
    written: u64,
    /// How long to wait for the listener's ack at a resume handshake.
    ack_timeout: Duration,
}

impl TcpTransport {
    /// A transport that will connect to `addr` (host:port) on first
    /// use. Defaults: 10 connect attempts, backoff 50 ms doubling to a
    /// 2 s cap (≈ 12 s of patience end to end).
    pub fn connect(addr: impl Into<String>) -> Self {
        TcpTransport {
            addr: addr.into(),
            hello: None,
            stream: None,
            delivered: 0,
            attempts: 10,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            spool: None,
            acked: 0,
            send_pos: 0,
            written: 0,
            ack_timeout: Duration::from_secs(10),
        }
    }

    /// Open every connection with a [`hello_frame`] carrying this
    /// stream id and label — required when the peer is a
    /// [`TcpFrameListener`] folding multiple streams.
    pub fn with_hello(mut self, id: u64, label: impl Into<String>) -> Self {
        self.hello = Some((id, label.into()));
        self
    }

    /// Declare that `frames` frames of this stream were already
    /// delivered on a previous transport (a process resuming its own
    /// stream). The next hello claims them, so the listener stitches
    /// this connection onto the existing tail instead of flagging a
    /// gap. Resuming at the wrong count keeps the stream incomplete.
    pub fn resuming_after(mut self, frames: u64) -> Self {
        self.delivered = frames;
        self
    }

    /// Tune the reconnect policy: `attempts` tries per frame, backoff
    /// starting at `initial` and doubling up to `max`.
    pub fn with_retry(mut self, attempts: u32, initial: Duration, max: Duration) -> Self {
        assert!(attempts > 0, "at least one attempt");
        self.attempts = attempts;
        self.initial_backoff = initial;
        self.max_backoff = max;
        self
    }

    /// Switch the transport to **resume mode**: every frame is
    /// appended to `spool` (the durable stream of record) before going
    /// on the wire, each connection opens with a
    /// [`resume_hello_frame`] and waits for the peer's [`ack_frame`],
    /// and the spool is replayed from the acked position — so a
    /// process that crashes and reopens the same spool resumes the
    /// stream byte-exactly, no matter where it died.
    ///
    /// Requires [`with_hello`](Self::with_hello) (the handshake needs
    /// a stream identity) and an **acking** peer (the `hhh-aggd`
    /// [`FrameHub`]); the plain one-shot [`TcpFrameListener`] never
    /// acks, so the handshake would time out. `write_frame` calls are
    /// deduplicated by position: if the spool already holds frames a
    /// previous run produced, a deterministic producer regenerating
    /// them from scratch re-sends nothing.
    pub fn with_spool(mut self, spool: FrameSpool) -> Self {
        assert!(self.hello.is_some(), "spool mode requires with_hello (a stream identity)");
        self.spool = Some(spool);
        self
    }

    /// Frames the peer acknowledged holding at the most recent resume
    /// handshake (0 before the first connection). Spool mode only.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Frames in the spool (spool mode only; 0 otherwise).
    pub fn spooled(&self) -> u64 {
        self.spool.as_ref().map_or(0, FrameSpool::len)
    }

    /// Connect (with backoff) if not connected, writing the hello —
    /// and in spool mode running the resume handshake — on every fresh
    /// connection.
    fn ensure_connected(&mut self) -> Result<(), TransportError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut backoff = self.initial_backoff;
        let mut last = None;
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.max_backoff);
            }
            match TcpStream::connect(&self.addr) {
                Ok(mut s) => {
                    let _ = s.set_nodelay(true);
                    if self.spool.is_some() {
                        match self.resume_handshake(&mut s) {
                            Ok(()) => {
                                self.stream = Some(s);
                                break;
                            }
                            Err(e) => {
                                last = Some(e);
                                continue;
                            }
                        }
                    }
                    if let Some((id, label)) = &self.hello {
                        let hello = hello_frame(*id, label, self.delivered);
                        if let Err(e) = s.write_all(&hello.encode()) {
                            last = Some(e);
                            continue;
                        }
                    }
                    self.stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        if self.stream.is_none() {
            let source = last.unwrap_or_else(|| {
                io::Error::new(io::ErrorKind::TimedOut, "connect attempts exhausted")
            });
            return Err(TransportError::io("connect", source));
        }
        Ok(())
    }

    /// Spool-mode connection opening: claim the spooled frame count,
    /// wait for the peer's ack, and position the replay cursor at the
    /// acked frame.
    fn resume_handshake(&mut self, s: &mut TcpStream) -> io::Result<()> {
        let (id, label) = self.hello.as_ref().expect("spool mode requires a hello");
        let spooled = self.spool.as_ref().expect("spool mode").len();
        s.write_all(&resume_hello_frame(*id, label, spooled).encode())?;
        s.set_read_timeout(Some(self.ack_timeout))?;
        let ack = read_frame_from(s)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed before ack")
            })?;
        let (ack_id, received) = parse_ack(&ack)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if ack_id != *id {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "ack for a different stream"));
        }
        s.set_read_timeout(None)?;
        self.acked = received;
        self.send_pos = received.min(spooled);
        Ok(())
    }

    /// Spool-mode send loop: flush every spooled frame past the replay
    /// cursor onto the wire, reconnecting (and re-handshaking, which
    /// re-positions the cursor from the fresh ack) on write failures.
    fn pump(&mut self) -> Result<(), TransportError> {
        let mut attempts_left = self.attempts;
        loop {
            self.ensure_connected()?;
            let target = self.spool.as_ref().expect("spool mode").len();
            let mut failed = None;
            while self.send_pos < target {
                let bytes = self
                    .spool
                    .as_mut()
                    .expect("spool mode")
                    .frame_bytes(self.send_pos)
                    .map_err(|e| TransportError::io("read", e))?;
                match self.stream.as_mut().expect("connected above").write_all(&bytes) {
                    Ok(()) => {
                        self.send_pos += 1;
                        self.delivered = self.send_pos;
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            match failed {
                None => return Ok(()),
                Some(e) => {
                    self.stream = None;
                    attempts_left = attempts_left.saturating_sub(1);
                    if attempts_left == 0 {
                        return Err(TransportError::io("write", e));
                    }
                }
            }
        }
    }

    /// Spool-mode `write_frame`: append (unless a previous run already
    /// spooled this position) and pump.
    fn write_spooled(&mut self, frame: &SnapshotFrame) -> Result<(), TransportError> {
        let pos = self.written;
        self.written += 1;
        let spool = self.spool.as_mut().expect("spool mode");
        if pos >= spool.len() {
            spool.append(&frame.encode()).map_err(|e| TransportError::io("write", e))?;
        }
        self.pump()
    }
}

impl FrameWrite for TcpTransport {
    fn write_frame(&mut self, frame: &SnapshotFrame) -> Result<(), TransportError> {
        if self.spool.is_some() {
            return self.write_spooled(frame);
        }
        let bytes = frame.encode();
        let mut attempts_left = self.attempts;
        loop {
            self.ensure_connected()?;
            match self.stream.as_mut().expect("connected above").write_all(&bytes) {
                Ok(()) => {
                    self.delivered += 1;
                    return Ok(());
                }
                Err(e) => {
                    // The connection is gone; the frame may be torn on
                    // the old one — reconnect and re-send it whole.
                    self.stream = None;
                    attempts_left = attempts_left.saturating_sub(1);
                    if attempts_left == 0 {
                        return Err(TransportError::io("write", e));
                    }
                }
            }
        }
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        if self.spool.is_some() {
            self.pump()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// TCP: read side
// ---------------------------------------------------------------------

/// One writer's completed frame stream, as collected by
/// [`TcpFrameListener::collect_streams`].
#[derive(Debug)]
pub struct FrameStream {
    /// The stream id from the writer's [`hello_frame`] (shard index).
    pub id: u64,
    /// The writer's label.
    pub label: String,
    /// Every decoded frame, across all of the writer's connections, in
    /// arrival order (hello frames excluded).
    pub frames: Vec<SnapshotFrame>,
}

/// What one connection's reader thread produced.
struct ConnResult {
    hello: Result<Hello, TransportError>,
    frames: Vec<SnapshotFrame>,
    /// Clean EOF at a frame boundary (vs a torn tail, which waits for
    /// the writer's reconnect).
    clean: bool,
}

/// A shared "when did *any* connection last make progress" clock:
/// reader threads stamp it per frame, the accept loop per connection,
/// and the collector turns staleness into read-idle timeouts. Stored
/// as milliseconds since a base instant so stamping is one relaxed
/// atomic store on the frame path.
#[derive(Clone, Debug)]
struct ActivityClock {
    base: Instant,
    last_ms: Arc<AtomicU64>,
}

impl ActivityClock {
    fn new() -> Self {
        ActivityClock { base: Instant::now(), last_ms: Arc::new(AtomicU64::new(0)) }
    }

    fn touch(&self) {
        let ms = self.base.elapsed().as_millis() as u64;
        self.last_ms.fetch_max(ms, Ordering::Relaxed);
    }

    fn idle(&self) -> Duration {
        let now = self.base.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Relaxed)))
    }
}

/// The socket read side: accept N concurrent shard connections and
/// collect each writer's frame stream.
///
/// Connections identify themselves with a [`hello_frame`]; frames are
/// grouped by its stream id, so a writer that reconnects mid-stream
/// resumes its own stream, and [`collect_streams`](Self::collect_streams)
/// returns streams **sorted by id** — the deterministic fold order a
/// file-based aggregation uses.
#[derive(Debug)]
pub struct TcpFrameListener {
    listener: TcpListener,
    timeout: Option<Duration>,
    accept_idle: Option<Duration>,
    read_idle: Option<Duration>,
}

impl TcpFrameListener {
    /// Bind the listening socket (use port 0 for an ephemeral port and
    /// read it back with [`local_addr`](Self::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(TcpFrameListener {
            listener: TcpListener::bind(addr)?,
            timeout: None,
            accept_idle: None,
            read_idle: None,
        })
    }

    /// Give up (with a typed timeout error) if `expect` streams have
    /// not completed within `timeout` of starting to collect — a
    /// **whole-fold deadline**, counted from the first
    /// [`collect_streams`](Self::collect_streams) iteration regardless
    /// of progress. For limits that reset while shards are making
    /// progress, see [`with_accept_idle`](Self::with_accept_idle) and
    /// [`with_read_idle`](Self::with_read_idle); all three compose
    /// (first to fire wins).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Give up if, while fewer connections than expected streams have
    /// *ever* been accepted, no new connection arrives for `idle` — a
    /// shard that never started. Unlike [`with_timeout`](Self::with_timeout)
    /// this resets on every accept, so slow-but-live topologies don't
    /// need a worst-case whole-fold budget.
    pub fn with_accept_idle(mut self, idle: Duration) -> Self {
        self.accept_idle = Some(idle);
        self
    }

    /// Give up if no frame arrives on *any* connection for `idle`
    /// while streams are still incomplete — a shard that connected and
    /// then wedged (or a frame lost in flight leaving a reconnect
    /// unstitchable). Resets on every frame received, so total fold
    /// time stays unbounded as long as bytes keep flowing.
    pub fn with_read_idle(mut self, idle: Duration) -> Self {
        self.read_idle = Some(idle);
        self
    }

    /// The bound address (the port, when bound with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections until `expect` distinct stream ids have
    /// delivered their whole stream (clean EOF at a frame boundary),
    /// then return the streams sorted by id.
    ///
    /// Runs one reader thread per connection, so N shards stream
    /// concurrently without filling socket buffers. A connection that
    /// dies mid-frame keeps its decoded frames and waits for the
    /// writer's reconnect (same hello id) to finish the stream; a
    /// connection that never sends a valid hello is dropped. A
    /// connection is stitched onto its stream only when its hello's
    /// delivered-frame count matches the frames already received — so
    /// reconnect results arriving out of order apply in stream order,
    /// and a frame lost in flight (accepted by the writer's kernel,
    /// never delivered) keeps the stream **incomplete** instead of
    /// silently shortening it; with a timeout set, that surfaces as a
    /// typed gap error.
    pub fn collect_streams(self, expect: usize) -> Result<Vec<FrameStream>, TransportError> {
        assert!(expect > 0, "expect at least one stream");
        self.listener.set_nonblocking(true).map_err(|e| TransportError::io("accept", e))?;
        let (tx, rx) = mpsc::channel::<ConnResult>();
        let mut streams: BTreeMap<u64, FrameStream> = BTreeMap::new();
        let mut complete = std::collections::BTreeSet::new();
        // Connection results whose claimed delivered count is ahead of
        // the frames received so far — an earlier connection's result
        // is still in flight, or its tail was lost on the wire.
        let mut pending: Vec<(u64, String, u64, ConnResult)> = Vec::new();
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let activity = ActivityClock::new();
        let mut accepted = 0usize;
        let mut last_accept = Instant::now();

        while complete.len() < expect {
            match self.listener.accept() {
                Ok((conn, _peer)) => {
                    let _ = conn.set_nodelay(true);
                    accepted += 1;
                    last_accept = Instant::now();
                    activity.touch();
                    let tx = tx.clone();
                    let activity = activity.clone();
                    std::thread::spawn(move || {
                        let _ = tx.send(read_connection(conn, &activity));
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(TransportError::io("accept", e)),
            }
            let mut progressed = false;
            while let Ok(res) = rx.try_recv() {
                let (id, label, delivered_before) = match &res.hello {
                    Ok(hello) => (hello.id, hello.label.clone(), hello.delivered),
                    // A connection without a valid hello (port scan,
                    // stray client) cannot be attributed to a stream;
                    // drop it rather than poison the fold.
                    Err(_) => continue,
                };
                pending.push((id, label, delivered_before, res));
                progressed = true;
            }
            // Stitch every pending result whose position has arrived.
            while progressed {
                progressed = false;
                let mut keep = Vec::with_capacity(pending.len());
                for (id, label, delivered_before, res) in pending.drain(..) {
                    let stream = streams.entry(id).or_insert_with(|| FrameStream {
                        id,
                        label: label.clone(),
                        frames: Vec::new(),
                    });
                    if stream.frames.len() as u64 == delivered_before {
                        stream.frames.extend(res.frames);
                        if res.clean {
                            complete.insert(id);
                        }
                        progressed = true;
                    } else if (stream.frames.len() as u64) < delivered_before {
                        keep.push((id, label, delivered_before, res));
                    } else {
                        // The writer claims fewer delivered frames than
                        // we hold: it would replay frames we already
                        // have. No in-tree writer does this (counts are
                        // cumulative and a torn frame never decodes);
                        // refuse rather than double-count.
                        return Err(TransportError::Handshake(
                            "hello claims fewer delivered frames than already received",
                        ));
                    }
                }
                pending = keep;
            }
            let stalled = |why: &str| {
                let gaps = pending
                    .iter()
                    .map(|(id, _, claimed, res)| {
                        let got = streams.get(id).map_or(0, |s| s.frames.len());
                        format!(
                            "stream {id}: reconnect claims {claimed} frames delivered, \
                             received {got} ({} more on the new connection)",
                            res.frames.len()
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                let detail = if gaps.is_empty() {
                    format!("{} of {expect} streams complete before {why}", complete.len())
                } else {
                    format!(
                        "{} of {expect} streams complete before {why}; \
                         gap detected (frame lost in flight?): {gaps}",
                        complete.len()
                    )
                };
                TransportError::io("accept", io::Error::new(io::ErrorKind::TimedOut, detail))
            };
            if let Some(deadline) = deadline {
                if Instant::now() > deadline {
                    return Err(stalled("the timeout"));
                }
            }
            if let Some(idle) = self.accept_idle {
                if accepted < expect && last_accept.elapsed() > idle {
                    return Err(stalled(&format!(
                        "the accept-idle limit ({accepted} connections accepted, \
                         none for {idle:?})"
                    )));
                }
            }
            if let Some(idle) = self.read_idle {
                if activity.idle() > idle {
                    return Err(stalled(&format!("the read-idle limit (no frame for {idle:?})")));
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(streams.into_values().collect())
    }
}

/// Read one connection to the end: hello first, then frames until a
/// clean EOF or a torn tail. Every decoded frame stamps the shared
/// [`ActivityClock`] so the collector's read-idle limit resets on
/// progress.
fn read_connection(conn: TcpStream, activity: &ActivityClock) -> ConnResult {
    let mut input = BufReader::new(conn);
    let hello = match read_frame_from(&mut input) {
        Ok(Some(frame)) => parse_hello(&frame),
        Ok(None) => Err(TransportError::Handshake("connection closed before hello")),
        Err(e) => Err(e),
    };
    if hello.is_err() {
        return ConnResult { hello, frames: Vec::new(), clean: false };
    }
    activity.touch();
    let mut frames = Vec::new();
    loop {
        match read_frame_from(&mut input) {
            Ok(Some(frame)) => {
                activity.touch();
                frames.push(frame);
            }
            Ok(None) => return ConnResult { hello, frames, clean: true },
            // Torn tail: keep what decoded; the writer re-sends the
            // torn frame on its next connection.
            Err(_) => return ConnResult { hello, frames, clean: false },
        }
    }
}

// ---------------------------------------------------------------------
// FrameHub: the daemon's long-lived read side
// ---------------------------------------------------------------------

/// What a [`FrameHub`] observed, in arrival order on one channel.
#[derive(Debug)]
pub enum HubEvent {
    /// A connection completed its hello/ack handshake and was admitted
    /// to stream `id`. `resume_at` is the frame count the hub acked —
    /// the position this connection's deliveries resume from (0 for a
    /// brand-new stream).
    Joined {
        /// Stream id from the hello.
        id: u64,
        /// Writer's label from the hello.
        label: String,
        /// Frames the hub already held for the stream.
        resume_at: u64,
    },
    /// Frame `pos` (0-based position within stream `id`) arrived for
    /// the first time. Duplicates — a restarted deterministic writer
    /// replaying from zero, or a spooled writer racing a stale
    /// connection — are dropped before this event, so positions are
    /// emitted exactly once, in order, per stream.
    Frame {
        /// Stream id.
        id: u64,
        /// 0-based position of `frame` within the stream.
        pos: u64,
        /// The decoded frame.
        frame: SnapshotFrame,
    },
    /// A connection for stream `id` ended. `clean` distinguishes EOF
    /// at a frame boundary from a torn tail; either way the stream
    /// stays open — a reconnect resumes it.
    Left {
        /// Stream id.
        id: u64,
        /// Clean EOF (vs torn tail / read error).
        clean: bool,
    },
    /// A connection claimed a resume position **ahead** of the frames
    /// the hub holds — a frame was lost in flight and the writer
    /// cannot (or did not offer to) replay it. The connection is
    /// refused; restarting the writer from its spool (or from zero,
    /// for a deterministic producer) recovers exactly.
    Gap {
        /// Stream id.
        id: u64,
        /// The position the connection wanted to resume from.
        claimed: u64,
        /// Frames the hub actually holds.
        received: u64,
    },
}

/// The long-lived, membership-aware socket read side behind
/// `hhh-aggd`: accepts any number of writer connections, acks every
/// hello with the frame count it holds (the other half of the
/// [`TcpTransport::with_spool`] resume protocol), deduplicates
/// re-delivered frames by position, and streams [`HubEvent`]s to the
/// daemon's fold loop.
///
/// Where [`TcpFrameListener::collect_streams`] is a one-shot barrier —
/// wait for exactly `expect` complete streams, then return — the hub
/// never finishes: shards join, leave, crash, and resume at any time,
/// and gaps are per-connection refusals (recoverable by writer
/// restart) instead of fold-fatal errors.
#[derive(Debug)]
pub struct FrameHub {
    listener: TcpListener,
}

/// Shuts the accepting [`FrameHub`] down when dropped (or explicitly
/// via [`shutdown`](Self::shutdown)).
#[derive(Debug)]
pub struct HubHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HubHandle {
    /// Stop accepting and join the accept loop. Connections already
    /// admitted drain on their own threads (their next event is the
    /// connection's `Left`).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HubHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl FrameHub {
    /// Bind the hub's listening socket (port 0 for ephemeral).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(FrameHub { listener: TcpListener::bind(addr)? })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Start accepting: returns the shutdown handle and the event
    /// channel. Each admitted connection runs on its own reader
    /// thread; the receiver sees every stream's frames in position
    /// order (interleaved across streams in arrival order).
    pub fn start(self) -> io::Result<(HubHandle, mpsc::Receiver<HubEvent>)> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let listener = self.listener;
        let thread = std::thread::spawn(move || {
            let received: Arc<Mutex<HashMap<u64, u64>>> = Arc::default();
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        let _ = conn.set_nodelay(true);
                        let tx = tx.clone();
                        let received = Arc::clone(&received);
                        std::thread::spawn(move || hub_connection(conn, &tx, &received));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok((HubHandle { stop, thread: Some(thread) }, rx))
    }
}

/// One hub connection: handshake (hello in, ack out), then frames
/// deduplicated by position until EOF or a torn tail.
fn hub_connection(
    conn: TcpStream,
    tx: &mpsc::Sender<HubEvent>,
    received: &Mutex<HashMap<u64, u64>>,
) {
    // A connection that never sends its hello must not pin this thread
    // (port scans, health probes); frames after admission have no
    // deadline — a long-lived shard may idle between windows.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let Ok(reader_half) = conn.try_clone() else { return };
    let mut reader = BufReader::new(reader_half);
    let hello = match read_frame_from(&mut reader) {
        Ok(Some(frame)) => match parse_hello(&frame) {
            Ok(h) => h,
            Err(_) => return,
        },
        _ => return,
    };
    let held = *received.lock().expect("hub lock").entry(hello.id).or_insert(0);
    let mut writer = conn;
    if writer.write_all(&ack_frame(hello.id, held).encode()).is_err() {
        return;
    }
    let _ = writer.set_read_timeout(None);
    // A resume-capable writer replays from our ack; a plain writer
    // sends from wherever its hello claimed (position-deduped below).
    let base = if hello.resume { held } else { hello.delivered };
    if base > held {
        let _ = tx.send(HubEvent::Gap { id: hello.id, claimed: base, received: held });
        return;
    }
    let _ = tx.send(HubEvent::Joined { id: hello.id, label: hello.label, resume_at: held });
    let mut pos = base;
    loop {
        match read_frame_from(&mut reader) {
            Ok(Some(frame)) => {
                let deliver = {
                    let mut map = received.lock().expect("hub lock");
                    let count = map.entry(hello.id).or_insert(0);
                    if pos == *count {
                        *count += 1;
                        true
                    } else {
                        // pos < count: a frame the hub already holds
                        // (a restarted writer replaying its prefix) —
                        // drop it. pos can never exceed count: it
                        // starts at base <= count and count advances
                        // with every delivery.
                        false
                    }
                };
                if deliver {
                    let _ = tx.send(HubEvent::Frame { id: hello.id, pos, frame });
                }
                pos += 1;
            }
            Ok(None) => {
                let _ = tx.send(HubEvent::Left { id: hello.id, clean: true });
                return;
            }
            Err(_) => {
                let _ = tx.send(HubEvent::Left { id: hello.id, clean: false });
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pipeline faces
// ---------------------------------------------------------------------

/// A [`ReportSink`] that streams pipeline output through any
/// [`FrameWrite`]: reports as report frames, states as **natively
/// encoded** v2 frames (it advertises
/// [`wants_frames`](ReportSink::wants_frames), so engines hand it
/// `MergeableDetector::to_frame` output — no JSON on the path).
///
/// The first transport error is kept and returned from
/// [`finish`](ReportSink::finish), mirroring
/// [`SnapshotSink`](crate::SnapshotSink)'s I/O error story.
#[derive(Debug)]
pub struct TransportSink<T: FrameWrite> {
    out: T,
    error: Option<TransportError>,
}

impl<T: FrameWrite> TransportSink<T> {
    /// Stream frames into `out`.
    pub fn new(out: T) -> Self {
        TransportSink { out, error: None }
    }

    fn write(&mut self, frame: &SnapshotFrame) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_frame(frame) {
            self.error = Some(e);
        }
    }
}

impl<P: Display, T: FrameWrite> ReportSink<P> for TransportSink<T> {
    /// The transport plus the first error encountered, if any.
    type Output = (T, Option<TransportError>);

    fn accept(&mut self, series: usize, report: WindowReport<P>) {
        let line = render_report_line(series, &report);
        let frame = SnapshotFrame::report(&line, report.start, report.end, report.total);
        self.write(&frame);
    }

    fn wants_frames(&self) -> bool {
        true
    }

    fn state_frame(&mut self, frame: &SnapshotFrame) {
        self.write(frame);
    }

    fn state(&mut self, start: Nanos, at: Nanos, snapshot: &DetectorSnapshot) {
        // Fallback for detectors without a native encoder: transcode.
        match snapshot.to_frame(start, at) {
            Ok(frame) => self.write(&frame),
            Err(e) if self.error.is_none() => self.error = Some(TransportError::Frame(e)),
            Err(_) => {}
        }
    }

    fn finish(mut self) -> Self::Output {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
        (self.out, self.error)
    }
}

/// A [`Source`] of [`WireSnapshot`]s pulled from any [`FrameRead`] —
/// the read-side pipeline face. Report and hello frames are validated
/// and skipped; state frames are yielded undecoded (the fold path goes
/// binary body → detector). The stream ends at clean end-of-transport
/// **or at the first error**, kept for inspection via
/// [`error`](Self::error) — the same strict-caller contract as
/// [`SnapshotSource`](crate::SnapshotSource).
#[derive(Debug)]
pub struct TransportSource<T: FrameRead> {
    input: T,
    error: Option<TransportError>,
}

impl<T: FrameRead> TransportSource<T> {
    /// Pull snapshots out of `input`.
    pub fn new(input: T) -> Self {
        TransportSource { input, error: None }
    }

    /// The first transport error, `None` after a clean end.
    pub fn error(&self) -> Option<&TransportError> {
        self.error.as_ref()
    }
}

impl<T: FrameRead> Iterator for TransportSource<T> {
    type Item = WireSnapshot;

    fn next(&mut self) -> Option<WireSnapshot> {
        if self.error.is_some() {
            return None;
        }
        loop {
            match self.input.read_frame() {
                Ok(Some(frame)) if frame.kind == REPORT_KIND || frame.kind == HELLO_KIND => {
                    continue;
                }
                Ok(Some(frame)) => return Some(WireSnapshot::Binary(frame)),
                Ok(None) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }
}

// `TransportSource` is a `Source<Item = WireSnapshot>` via the blanket
// iterator impl in `source`, so `FoldSnapshots` consumes any transport.
const _: fn() = || {
    fn assert_source<S: Source<Item = WireSnapshot>>() {}
    assert_source::<TransportSource<MemFrameReader>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn state_frame(at_secs: u64, total: u64) -> SnapshotFrame {
        let snap = DetectorSnapshot {
            kind: "exact".into(),
            total,
            state_json: format!("{{\"counts\":[[\"7\",{total}]]}}"),
        };
        snap.to_frame(Nanos::from_secs(at_secs.saturating_sub(1)), Nanos::from_secs(at_secs))
            .expect("own snapshots transcode")
    }

    #[test]
    fn file_transport_roundtrips_frames() {
        let mut w = FileTransport::new(Vec::new());
        let frames = [state_frame(1, 10), state_frame(2, 20)];
        for f in &frames {
            w.write_frame(f).unwrap();
        }
        FrameWrite::flush(&mut w).unwrap();
        let bytes = w.into_inner();

        let mut r = FileTransport::new(io::Cursor::new(bytes));
        assert_eq!(r.read_frame().unwrap().as_ref(), Some(&frames[0]));
        assert_eq!(r.read_frame().unwrap().as_ref(), Some(&frames[1]));
        assert!(r.read_frame().unwrap().is_none(), "clean end at a frame boundary");
    }

    #[test]
    fn file_transport_reports_torn_tails() {
        let mut w = FileTransport::new(Vec::new());
        w.write_frame(&state_frame(1, 10)).unwrap();
        let mut bytes = w.into_inner();
        bytes.truncate(bytes.len() - 3);
        let mut r = FileTransport::new(io::Cursor::new(bytes));
        match r.read_frame() {
            Err(TransportError::Frame(SnapshotError::Parse { what, .. })) => {
                assert_eq!(what, "truncated frame");
            }
            other => panic!("expected a torn-frame error, got {other:?}"),
        }
    }

    #[test]
    fn mem_transport_moves_frames_between_threads() {
        let (mut w, r) = mem_transport(4);
        let frames: Vec<_> = (0..10).map(|i| state_frame(i, i * 10)).collect();
        let expect = frames.clone();
        let producer = std::thread::spawn(move || {
            for f in &frames {
                w.write_frame(f).unwrap();
            }
            // w drops: channel closes, reader ends cleanly.
        });
        let mut source = TransportSource::new(r);
        let got: Vec<WireSnapshot> = (&mut source).collect();
        producer.join().unwrap();
        assert!(source.error().is_none());
        assert_eq!(got.len(), 10);
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g, &WireSnapshot::Binary(e.clone()));
        }
    }

    #[test]
    fn mem_transport_reports_hangup_to_the_writer() {
        let (mut w, r) = mem_transport(1);
        drop(r);
        let err = w.write_frame(&state_frame(1, 1)).unwrap_err();
        assert!(matches!(err, TransportError::Io { op: "send", .. }), "{err:?}");
        // The error chains to the io::Error via source().
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn hello_frames_parse_and_reject_tampering() {
        let hello = hello_frame(3, "shard-3", 7);
        let parsed = parse_hello(&hello).unwrap();
        assert_eq!(
            (parsed.id, parsed.label.as_str(), parsed.delivered, parsed.resume),
            (3, "shard-3", 7, false)
        );
        let resume = parse_hello(&resume_hello_frame(5, "shard-5", 9)).unwrap();
        assert_eq!(
            (resume.id, resume.label.as_str(), resume.delivered, resume.resume),
            (5, "shard-5", 9, true)
        );
        let mut tampered = hello.clone();
        tampered.body[0] ^= 1;
        assert!(parse_hello(&tampered).is_err());
        assert!(parse_hello(&state_frame(1, 1)).is_err(), "state frames are not hellos");
    }

    #[test]
    fn ack_frames_roundtrip() {
        let ack = ack_frame(7, 42);
        assert_eq!(parse_ack(&ack).unwrap(), (7, 42));
        // Frames survive the wire encoding like any other frame.
        let (decoded, _) = SnapshotFrame::decode(&ack.encode()).unwrap();
        assert_eq!(parse_ack(&decoded).unwrap(), (7, 42));
        assert!(parse_ack(&state_frame(1, 1)).is_err(), "state frames are not acks");
    }

    #[test]
    fn frame_spool_recovers_frames_and_truncates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("hhh_spool_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.spool");
        let _ = std::fs::remove_file(&path);
        let frames = [state_frame(1, 10), state_frame(2, 20), state_frame(3, 30)];
        {
            let mut spool = FrameSpool::open(&path).unwrap();
            for f in &frames {
                spool.append(&f.encode()).unwrap();
            }
            assert_eq!(spool.len(), 3);
            // Replay is byte-exact.
            let bytes = spool.frame_bytes(1).unwrap();
            assert_eq!(SnapshotFrame::decode(&bytes).unwrap().0, frames[1]);
        }
        // Simulate a crash mid-append: write a torn fourth frame.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            let torn = state_frame(4, 40).encode();
            f.write_all(&torn[..torn.len() - 5]).unwrap();
        }
        let mut spool = FrameSpool::open(&path).unwrap();
        assert_eq!(spool.len(), 3, "torn tail truncated, complete frames kept");
        for (i, f) in frames.iter().enumerate() {
            let bytes = spool.frame_bytes(i as u64).unwrap();
            assert_eq!(&SnapshotFrame::decode(&bytes).unwrap().0, f);
        }
        // Appends continue past the truncation point.
        spool.append(&state_frame(4, 40).encode()).unwrap();
        assert_eq!(spool.len(), 4);
        let reopened = FrameSpool::open(&path).unwrap();
        assert_eq!(reopened.len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    /// Drain hub events until each of `want` streams has delivered
    /// `per_stream` frames, returning (id -> frame positions in
    /// delivery order).
    fn drain_frames(
        rx: &mpsc::Receiver<HubEvent>,
        want: usize,
        per_stream: u64,
    ) -> BTreeMap<u64, Vec<u64>> {
        let mut got: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while got.len() < want || got.values().any(|v| (v.len() as u64) < per_stream) {
            match rx.recv_timeout(deadline - Instant::now()) {
                Ok(HubEvent::Frame { id, pos, .. }) => got.entry(id).or_default().push(pos),
                Ok(_) => {}
                Err(e) => panic!("hub events dried up: {e} (got {got:?})"),
            }
        }
        got
    }

    #[test]
    fn hub_acks_hellos_and_dedupes_a_restarted_plain_writer() {
        let hub = FrameHub::bind("127.0.0.1:0").unwrap();
        let addr = hub.local_addr().unwrap();
        let (handle, rx) = hub.start().unwrap();
        // First life: a plain writer delivers frames 0 and 1, dies.
        {
            let mut t = TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0");
            t.write_frame(&state_frame(1, 100)).unwrap();
            t.write_frame(&state_frame(2, 101)).unwrap();
        }
        // Wait until the hub has admitted both frames, so the restart
        // below races nothing.
        let first = drain_frames(&rx, 1, 2);
        assert_eq!(first[&0], vec![0, 1]);
        // Second life: the restarted process regenerates the whole
        // stream from scratch (delivered claim 0) — the hub must drop
        // the replayed prefix and deliver only positions 2 and 3.
        {
            let mut t = TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0");
            for (i, total) in [100u64, 101, 102, 103].iter().enumerate() {
                t.write_frame(&state_frame(i as u64 + 1, *total)).unwrap();
            }
        }
        let second = drain_frames(&rx, 1, 2);
        assert_eq!(second[&0], vec![2, 3], "replayed prefix deduped by position");
        handle.shutdown();
    }

    #[test]
    fn spooled_transport_resumes_exactly_across_a_simulated_restart() {
        let dir = std::env::temp_dir().join(format!("hhh_spool_resume_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard0.spool");
        let _ = std::fs::remove_file(&path);
        let hub = FrameHub::bind("127.0.0.1:0").unwrap();
        let addr = hub.local_addr().unwrap();
        let (handle, rx) = hub.start().unwrap();
        // First life: spool + deliver frames 0..3.
        {
            let spool = FrameSpool::open(&path).unwrap();
            let mut t =
                TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0").with_spool(spool);
            for i in 0..3u64 {
                t.write_frame(&state_frame(i + 1, 100 + i)).unwrap();
            }
            assert_eq!(t.acked(), 0, "first handshake acked an empty stream");
            assert_eq!(t.spooled(), 3);
        }
        assert_eq!(drain_frames(&rx, 1, 3)[&0], vec![0, 1, 2]);
        // Second life: reopen the spool; the regenerated prefix is
        // deduped against it (not re-appended, not re-sent — the hub's
        // ack says it already holds 3), and two new frames follow.
        {
            let spool = FrameSpool::open(&path).unwrap();
            assert_eq!(spool.len(), 3, "spool recovered the previous life's frames");
            let mut t =
                TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0").with_spool(spool);
            for i in 0..5u64 {
                t.write_frame(&state_frame(i + 1, 100 + i)).unwrap();
            }
            assert_eq!(t.acked(), 3, "resume handshake learned the hub's position");
            assert_eq!(t.spooled(), 5);
        }
        assert_eq!(drain_frames(&rx, 1, 2)[&0], vec![3, 4], "only the new tail went out");
        handle.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hub_refuses_a_resume_claim_ahead_of_what_it_holds() {
        let hub = FrameHub::bind("127.0.0.1:0").unwrap();
        let addr = hub.local_addr().unwrap();
        let (handle, rx) = hub.start().unwrap();
        // A plain hello claiming 5 delivered frames against an empty
        // stream: unstitchable — must surface as a Gap event, not
        // silently shorten the stream.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&hello_frame(0, "shard-0", 5).encode()).unwrap();
        conn.write_all(&state_frame(6, 105).encode()).unwrap();
        match rx.recv_timeout(Duration::from_secs(30)).unwrap() {
            HubEvent::Gap { id, claimed, received } => {
                assert_eq!((id, claimed, received), (0, 5, 0));
            }
            other => panic!("expected a gap event, got {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn accept_idle_fires_when_a_shard_never_connects() {
        let listener = TcpFrameListener::bind("127.0.0.1:0")
            .unwrap()
            .with_accept_idle(Duration::from_millis(200));
        let addr = listener.local_addr().unwrap();
        // One of two expected shards connects and completes; the other
        // never dials in — the accept-idle limit must end the wait.
        let writer = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0");
            t.write_frame(&state_frame(1, 42)).unwrap();
        });
        let err = listener.collect_streams(2).unwrap_err();
        writer.join().unwrap();
        match err {
            TransportError::Io { op: "accept", source } => {
                assert_eq!(source.kind(), io::ErrorKind::TimedOut);
                assert!(source.to_string().contains("accept-idle"), "{source}");
            }
            other => panic!("expected an accept-idle timeout, got {other:?}"),
        }
    }

    #[test]
    fn read_idle_fires_when_a_connected_shard_wedges() {
        let listener = TcpFrameListener::bind("127.0.0.1:0")
            .unwrap()
            .with_read_idle(Duration::from_millis(200));
        let addr = listener.local_addr().unwrap();
        // The shard connects, sends its hello and one frame, then
        // wedges with the connection open — only read-idle catches it.
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let writer = std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(&hello_frame(0, "shard-0", 0).encode()).unwrap();
            conn.write_all(&state_frame(1, 42).encode()).unwrap();
            let _ = done_rx.recv(); // hold the connection open, silent
        });
        let err = listener.collect_streams(1).unwrap_err();
        drop(done_tx);
        writer.join().unwrap();
        match err {
            TransportError::Io { op: "accept", source } => {
                assert_eq!(source.kind(), io::ErrorKind::TimedOut);
                assert!(source.to_string().contains("read-idle"), "{source}");
            }
            other => panic!("expected a read-idle timeout, got {other:?}"),
        }
    }

    #[test]
    fn read_idle_does_not_fire_while_frames_flow() {
        // Frames arriving every ~40 ms must keep a 250 ms read-idle
        // limit from firing even though the whole stream takes longer
        // than the limit.
        let listener = TcpFrameListener::bind("127.0.0.1:0")
            .unwrap()
            .with_read_idle(Duration::from_millis(250));
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0");
            for i in 0..10u64 {
                t.write_frame(&state_frame(i + 1, i)).unwrap();
                std::thread::sleep(Duration::from_millis(40));
            }
        });
        let streams = listener.collect_streams(1).unwrap();
        writer.join().unwrap();
        assert_eq!(streams[0].frames.len(), 10);
    }

    #[test]
    fn tcp_listener_collects_streams_sorted_by_hello_id() {
        let listener =
            TcpFrameListener::bind("127.0.0.1:0").unwrap().with_timeout(Duration::from_secs(30));
        let addr = listener.local_addr().unwrap();
        // Connect in reverse id order to prove arrival order is
        // irrelevant.
        let writers: Vec<_> = [2u64, 1, 0]
            .into_iter()
            .map(|id| {
                std::thread::spawn(move || {
                    let mut t = TcpTransport::connect(addr.to_string())
                        .with_hello(id, format!("shard-{id}"));
                    for i in 0..3 {
                        t.write_frame(&state_frame(i + 1, (id + 1) * 100 + i)).unwrap();
                    }
                })
            })
            .collect();
        let streams = listener.collect_streams(3).unwrap();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(streams.len(), 3);
        assert_eq!(streams.iter().map(|s| s.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(streams[1].label, "shard-1");
        for s in &streams {
            assert_eq!(s.frames.len(), 3);
            assert_eq!(s.frames[0].total, (s.id + 1) * 100);
        }
    }

    #[test]
    fn tcp_torn_peer_yields_clean_error_and_reconnect_resumes_the_stream() {
        // A writer that dies mid-frame must (a) surface as a typed
        // error on a raw read side, and (b) not poison a listener: the
        // reconnecting writer re-sends the torn frame and completes
        // the stream.
        let listener =
            TcpFrameListener::bind("127.0.0.1:0").unwrap().with_timeout(Duration::from_secs(30));
        let addr = listener.local_addr().unwrap();
        let torn = {
            let bytes = state_frame(2, 43).encode();
            bytes[..bytes.len() - 5].to_vec()
        };
        let writer = std::thread::spawn(move || {
            // First connection: hello, one whole frame, then a torn
            // one, then die.
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(&hello_frame(0, "shard-0", 0).encode()).unwrap();
            conn.write_all(&state_frame(1, 42).encode()).unwrap();
            conn.write_all(&torn).unwrap();
            drop(conn);
            // Reconnect: the hello claims the one frame that fully
            // arrived, then the torn frame is re-sent whole, then one
            // more, then a clean end.
            let mut t =
                TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0").resuming_after(1);
            t.write_frame(&state_frame(2, 43)).unwrap();
            t.write_frame(&state_frame(3, 44)).unwrap();
        });
        let streams = listener.collect_streams(1).unwrap();
        writer.join().unwrap();
        assert_eq!(streams.len(), 1);
        let totals: Vec<u64> = streams[0].frames.iter().map(|f| f.total).collect();
        assert_eq!(totals, vec![42, 43, 44], "torn tail dropped, stream resumed in order");
    }

    #[test]
    fn lost_in_flight_frame_is_a_gap_error_not_a_shorter_stream() {
        // The silent-loss scenario: the writer's kernel accepted a
        // frame that never arrived before the connection died, so the
        // reconnect's hello claims 1 delivered while the listener
        // holds 0. The stream must stay incomplete and surface a
        // typed gap error — never fold one frame short.
        let listener =
            TcpFrameListener::bind("127.0.0.1:0").unwrap().with_timeout(Duration::from_secs(2));
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut t =
                TcpTransport::connect(addr.to_string()).with_hello(0, "shard-0").resuming_after(1);
            t.write_frame(&state_frame(2, 43)).unwrap();
        });
        let err = listener.collect_streams(1).unwrap_err();
        writer.join().unwrap();
        match err {
            TransportError::Io { op: "accept", source } => {
                assert_eq!(source.kind(), io::ErrorKind::TimedOut);
                assert!(source.to_string().contains("gap detected"), "{source}");
            }
            other => panic!("expected a timeout gap error, got {other:?}"),
        }
    }

    #[test]
    fn tcp_transport_retries_until_the_listener_binds() {
        // Reserve a port, release it, connect against it while it is
        // closed — the backoff must carry the writer until the
        // listener comes up.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let writer =
            std::thread::spawn(move || {
                let mut t = TcpTransport::connect(addr.to_string())
                    .with_hello(0, "late")
                    .with_retry(40, Duration::from_millis(25), Duration::from_millis(100));
                t.write_frame(&state_frame(1, 7)).unwrap();
            });
        std::thread::sleep(Duration::from_millis(300));
        let listener = TcpFrameListener::bind(addr).unwrap().with_timeout(Duration::from_secs(30));
        let streams = listener.collect_streams(1).unwrap();
        writer.join().unwrap();
        assert_eq!(streams[0].frames.len(), 1);
        assert_eq!(streams[0].frames[0].total, 7);
    }

    #[test]
    fn connect_exhaustion_is_a_typed_error() {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let mut t = TcpTransport::connect(addr.to_string()).with_retry(
            2,
            Duration::from_millis(1),
            Duration::from_millis(2),
        );
        let err = t.write_frame(&state_frame(1, 1)).unwrap_err();
        assert!(matches!(err, TransportError::Io { op: "connect", .. }), "{err:?}");
        assert!(std::error::Error::source(&err).is_some(), "source() chains to io::Error");
    }
}
