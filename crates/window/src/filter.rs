//! Packet filtering upstream of the engines: a [`RuleFilter`] wraps
//! any packet [`Source`] and consults a [`PacketGate`] per packet,
//! delivering only the admitted ones downstream — the seam where a
//! mitigation rule table (or any other drop/limit policy) plugs into a
//! running pipeline *before* the shard partition, the way a real
//! deployment filters at the edge rather than inside the detector.
//!
//! The gate is deliberately a trait, not a concrete rule table: the
//! window crate knows how to thread a verdict through the chunked
//! source protocol, and nothing about prefixes, TTLs, or token
//! buckets. `hhh-mitigate` implements [`PacketGate`] over its shared
//! rule table; tests implement it over closures.

use crate::source::Source;
use hhh_nettypes::PacketRecord;

/// A per-packet admit/drop decision point. `&mut self` because real
/// gates keep state: token buckets, per-rule drop counters, hit
/// statistics.
pub trait PacketGate {
    /// Decide one packet's fate: `true` admits it downstream, `false`
    /// drops it. Called in stream order, so trace-time bucket refills
    /// may trust non-decreasing timestamps.
    fn admit(&mut self, packet: &PacketRecord) -> bool;
}

/// Every `FnMut(&PacketRecord) -> bool` is a gate — the test- and
/// ad-hoc-filter shape.
impl<F: FnMut(&PacketRecord) -> bool> PacketGate for F {
    fn admit(&mut self, packet: &PacketRecord) -> bool {
        self(packet)
    }
}

/// A [`Source`] adapter dropping the packets a [`PacketGate`] rejects.
///
/// Honors the source contract (`pull_chunk` never returns `true` with
/// an empty buffer): when a whole upstream chunk is dropped — a fully
/// blocked burst — the filter keeps pulling until something survives
/// or the upstream ends, rather than handing the engine an empty
/// chunk.
pub struct RuleFilter<S, G> {
    inner: S,
    gate: G,
    scratch: Vec<PacketRecord>,
}

impl<S, G> RuleFilter<S, G>
where
    S: Source<Item = PacketRecord>,
    G: PacketGate,
{
    /// Filter `inner` through `gate`.
    pub fn new(inner: S, gate: G) -> Self {
        RuleFilter { inner, gate, scratch: Vec::new() }
    }

    /// The gate, for harvesting its counters mid-stream.
    pub fn gate(&self) -> &G {
        &self.gate
    }

    /// Mutable access to the gate (e.g. to swap rule generations).
    pub fn gate_mut(&mut self) -> &mut G {
        &mut self.gate
    }

    /// Unwrap into the inner source and the gate.
    pub fn into_parts(self) -> (S, G) {
        (self.inner, self.gate)
    }
}

impl<S, G> Source for RuleFilter<S, G>
where
    S: Source<Item = PacketRecord>,
    G: PacketGate,
{
    type Item = PacketRecord;

    fn pull_chunk(&mut self, buf: &mut Vec<PacketRecord>) -> bool {
        let had = buf.len();
        loop {
            self.scratch.clear();
            if !self.inner.pull_chunk(&mut self.scratch) {
                return buf.len() > had;
            }
            let gate = &mut self.gate;
            buf.extend(self.scratch.drain(..).filter(|p| gate.admit(p)));
            if buf.len() > had {
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_nettypes::Nanos;

    fn pkt(i: u64, src: u32) -> PacketRecord {
        PacketRecord::new(Nanos::from_micros(i), src, 1, 100)
    }

    #[test]
    fn closure_gate_filters_and_preserves_order() {
        let pkts: Vec<PacketRecord> = (0..100).map(|i| pkt(i, i as u32 % 4)).collect();
        let mut filter = RuleFilter::new(pkts.iter().copied(), |p: &PacketRecord| p.src != 2);
        let mut got = Vec::new();
        let mut buf = Vec::new();
        while filter.pull_chunk(&mut buf) {
            assert!(!buf.is_empty(), "pull_chunk must not return true with an empty buf");
            got.append(&mut buf);
        }
        assert_eq!(got.len(), 75);
        assert!(got.iter().all(|p| p.src != 2));
        assert!(got.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn fully_blocked_stream_ends_cleanly() {
        let pkts: Vec<PacketRecord> = (0..10_000).map(|i| pkt(i, 7)).collect();
        let mut filter = RuleFilter::new(pkts.iter().copied(), |_: &PacketRecord| false);
        let mut buf = Vec::new();
        assert!(!filter.pull_chunk(&mut buf), "all-dropped stream must report exhaustion");
        assert!(buf.is_empty());
    }

    #[test]
    fn blocked_bursts_are_skipped_not_surfaced_as_empty_chunks() {
        // 3 chunks' worth of blocked packets followed by one admitted
        // packet: a single pull must skip past the blocked span.
        let n = crate::source::DEFAULT_CHUNK * 3;
        let pkts: Vec<PacketRecord> =
            (0..n as u64).map(|i| pkt(i, 2)).chain(std::iter::once(pkt(n as u64, 9))).collect();
        let mut filter = RuleFilter::new(pkts.iter().copied(), |p: &PacketRecord| p.src == 9);
        let mut buf = Vec::new();
        assert!(filter.pull_chunk(&mut buf));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].src, 9);
        buf.clear();
        assert!(!filter.pull_chunk(&mut buf));
    }

    #[test]
    fn gate_counters_are_reachable_mid_stream() {
        struct Counting {
            dropped: u64,
        }
        impl PacketGate for Counting {
            fn admit(&mut self, p: &PacketRecord) -> bool {
                if p.src == 0 {
                    self.dropped += 1;
                    return false;
                }
                true
            }
        }
        let pkts: Vec<PacketRecord> = (0..50).map(|i| pkt(i, i as u32 % 2)).collect();
        let mut filter = RuleFilter::new(pkts.iter().copied(), Counting { dropped: 0 });
        let mut buf = Vec::new();
        while filter.pull_chunk(&mut buf) {
            buf.clear();
        }
        assert_eq!(filter.gate().dropped, 25);
    }
}
