//! Per-window report containers.

use hhh_core::HhhReport;
use std::collections::BTreeSet;

/// The HHH sets a detector reported for one window position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowReport<P> {
    /// Window index in its schedule.
    pub index: u64,
    /// Window start (ns since epoch).
    pub start: hhh_nettypes::Nanos,
    /// Window end (exclusive).
    pub end: hhh_nettypes::Nanos,
    /// Total weight inside the window.
    pub total: u64,
    /// The reported HHHs.
    pub hhhs: Vec<HhhReport<P>>,
}

/// An ordered prefix set (what the set-comparison metrics consume).
pub type PrefixSet<P> = BTreeSet<P>;

impl<P: Ord + Copy> WindowReport<P> {
    /// The reported prefixes as a set.
    pub fn prefix_set(&self) -> PrefixSet<P> {
        self.hhhs.iter().map(|r| r.prefix).collect()
    }

    /// Number of reported HHHs.
    pub fn len(&self) -> usize {
        self.hhhs.len()
    }

    /// `true` when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.hhhs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_nettypes::Nanos;

    #[test]
    fn prefix_set_dedups_and_orders() {
        let r = WindowReport {
            index: 0,
            start: Nanos::ZERO,
            end: Nanos::from_secs(1),
            total: 100,
            hhhs: vec![
                HhhReport { prefix: 5u32, level: 0, estimate: 50, discounted: 50, lower_bound: 50 },
                HhhReport { prefix: 2u32, level: 0, estimate: 30, discounted: 30, lower_bound: 30 },
            ],
        };
        let s = r.prefix_set();
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }
}
