//! # hhh-analysis
//!
//! Metrics and reporting: the measurement half of the paper.
//!
//! * [`jaccard`] — the set-similarity coefficient Fig. 3 is built on.
//! * [`hidden`] — the hidden-HHH computation behind Fig. 2: which
//!   prefixes does a sliding window reveal that disjoint windows never
//!   report?
//! * [`Ecdf`] — empirical CDFs (Fig. 3 plots one per window delta).
//! * [`SetAccuracy`] — precision/recall/F1 of a detector against the
//!   exact oracle (the §3 "accuracy" comparison).
//! * [`Table`] / [`csv`] — plain-text tables and CSV series, the
//!   output formats of every experiment binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
pub mod csv;
mod ecdf;
pub mod hidden;
mod jaccard;
mod stats;
mod table;

pub use accuracy::SetAccuracy;
pub use ecdf::Ecdf;
pub use jaccard::{jaccard, jaccard_reports};
pub use stats::{mean, median, percentile};
pub use table::{fmt_f, Table};
