//! Empirical cumulative distribution functions (what Fig. 3 plots).

/// An ECDF over a sample of `f64` values.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (NaNs are rejected). Panics on empty input
    /// or NaN.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "ECDF needs at least one value");
        assert!(values.iter().all(|v| !v.is_nan()), "ECDF input contains NaN");
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: values }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` never (construction requires non-empty), present for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (`0 ≤ q ≤ 1`), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// The fraction of samples at or below each distinct value:
    /// `(value, cumulative_fraction)` pairs ready for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = frac,
                _ => out.push((v, frac)),
            }
        }
        out
    }

    /// Evaluate on a fixed grid of `steps+1` points across `[lo, hi]`
    /// (the format the figure printers want).
    pub fn sampled(&self, lo: f64, hi: f64, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps > 0 && hi > lo, "invalid grid");
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps_through_sample() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(0.7), 40.0);
        assert_eq!(e.quantile(1.0), 50.0);
    }

    #[test]
    fn points_merge_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(e.points(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn sampled_grid() {
        let e = Ecdf::new(vec![0.5]);
        let g = e.sampled(0.0, 1.0, 2);
        assert_eq!(g, vec![(0.0, 0.0), (0.5, 1.0), (1.0, 1.0)]);
    }

    #[test]
    fn unsorted_input_ok() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.quantile(1.0), 3.0);
        assert!((e.mean() - 2.0).abs() < 1e-12);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new(vec![f64::NAN]);
    }
}
