//! Jaccard similarity of reported HHH sets.

use hhh_window::WindowReport;
use std::collections::BTreeSet;

/// The Jaccard similarity `|A∩B| / |A∪B|` of two sets.
///
/// Both sets empty is defined as similarity 1 (two windows that agree
/// "nothing is heavy" agree completely — the convention that keeps
/// Fig. 3's per-window comparison total).
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard similarity of the prefix sets of two window reports.
pub fn jaccard_reports<P: Ord + Copy>(a: &WindowReport<P>, b: &WindowReport<P>) -> f64 {
    jaccard(&a.prefix_set(), &b.prefix_set())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> BTreeSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard(&set(&[1, 2, 3]), &set(&[1, 2, 3])), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard(&set(&[1, 2]), &set(&[3, 4])), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // |{2,3}| / |{1,2,3,4}| = 0.5
        assert_eq!(jaccard(&set(&[1, 2, 3]), &set(&[2, 3, 4])), 0.5);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(jaccard(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard(&set(&[1]), &set(&[])), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = set(&[1, 5, 9]);
        let b = set(&[5, 9, 11, 13]);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }

    #[test]
    fn reports_wrapper() {
        use hhh_core::HhhReport;
        use hhh_nettypes::Nanos;
        let mk = |prefixes: &[u32]| WindowReport {
            index: 0,
            start: Nanos::ZERO,
            end: Nanos::from_secs(1),
            total: 1,
            hhhs: prefixes
                .iter()
                .map(|&p| HhhReport {
                    prefix: p,
                    level: 0,
                    estimate: 1,
                    discounted: 1,
                    lower_bound: 1,
                })
                .collect(),
        };
        assert_eq!(jaccard_reports(&mk(&[1, 2]), &mk(&[2, 3])), 1.0 / 3.0);
    }
}
