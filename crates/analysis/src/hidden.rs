//! Hidden HHH analysis — the computation behind the paper's Figure 2.
//!
//! Definitions (normative; DESIGN.md §6 discusses the poster's
//! ambiguity):
//!
//! * **Distinct-prefix hidden fraction** (primary, what we attribute to
//!   the paper's "% of the total number of the HHH"): let `U_slide` be
//!   the set of distinct prefixes reported at *any* sliding position
//!   and `U_disj` at any disjoint window; the hidden fraction is
//!   `|U_slide ∖ U_disj| / |U_slide|`.
//! * **Occurrence-weighted hidden fraction** (also reported): each
//!   (position, prefix) detection counts once; hidden occurrences are
//!   those whose prefix is in no disjoint window's report.
//!
//! When the step divides the window length every disjoint window is
//! also a sliding position, so `U_disj ⊆ U_slide` and both fractions
//! are in `[0, 1]` by construction.

use hhh_window::WindowReport;
use std::collections::BTreeSet;

/// The outcome of a hidden-HHH comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct HiddenHhh<P> {
    /// Distinct prefixes the sliding schedule reported.
    pub sliding_distinct: usize,
    /// Distinct prefixes the disjoint schedule reported.
    pub disjoint_distinct: usize,
    /// The hidden prefixes themselves (sliding-only).
    pub hidden_prefixes: BTreeSet<P>,
    /// `|hidden| / |sliding_distinct|` (0 when nothing was reported).
    pub hidden_fraction: f64,
    /// Total (position, prefix) detections in the sliding schedule.
    pub sliding_occurrences: usize,
    /// Detections whose prefix no disjoint window ever reported.
    pub hidden_occurrences: usize,
    /// `hidden_occurrences / sliding_occurrences` (0 when empty).
    pub occurrence_fraction: f64,
}

/// Union of reported prefixes across a window schedule.
pub fn union_prefixes<P: Ord + Copy>(reports: &[WindowReport<P>]) -> BTreeSet<P> {
    let mut out = BTreeSet::new();
    for r in reports {
        out.extend(r.hhhs.iter().map(|x| x.prefix));
    }
    out
}

/// Compare sliding-window reports against disjoint-window reports taken
/// over the same trace, window length and threshold.
pub fn hidden_hhh<P: Ord + Copy>(
    sliding: &[WindowReport<P>],
    disjoint: &[WindowReport<P>],
) -> HiddenHhh<P> {
    let u_slide = union_prefixes(sliding);
    let u_disj = union_prefixes(disjoint);
    let hidden_prefixes: BTreeSet<P> = u_slide.difference(&u_disj).copied().collect();
    let hidden_fraction =
        if u_slide.is_empty() { 0.0 } else { hidden_prefixes.len() as f64 / u_slide.len() as f64 };
    let mut sliding_occurrences = 0usize;
    let mut hidden_occurrences = 0usize;
    for r in sliding {
        for x in &r.hhhs {
            sliding_occurrences += 1;
            if !u_disj.contains(&x.prefix) {
                hidden_occurrences += 1;
            }
        }
    }
    let occurrence_fraction = if sliding_occurrences == 0 {
        0.0
    } else {
        hidden_occurrences as f64 / sliding_occurrences as f64
    };
    HiddenHhh {
        sliding_distinct: u_slide.len(),
        disjoint_distinct: u_disj.len(),
        hidden_prefixes,
        hidden_fraction,
        sliding_occurrences,
        hidden_occurrences,
        occurrence_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::HhhReport;
    use hhh_nettypes::Nanos;

    fn report(index: u64, prefixes: &[u32]) -> WindowReport<u32> {
        WindowReport {
            index,
            start: Nanos::from_secs(index),
            end: Nanos::from_secs(index + 1),
            total: 100,
            hhhs: prefixes
                .iter()
                .map(|&p| HhhReport {
                    prefix: p,
                    level: 0,
                    estimate: 10,
                    discounted: 10,
                    lower_bound: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn no_hidden_when_sets_agree() {
        let sliding = vec![report(0, &[1, 2]), report(1, &[2])];
        let disjoint = vec![report(0, &[1, 2])];
        let h = hidden_hhh(&sliding, &disjoint);
        assert_eq!(h.hidden_prefixes.len(), 0);
        assert_eq!(h.hidden_fraction, 0.0);
        assert_eq!(h.occurrence_fraction, 0.0);
        assert_eq!(h.sliding_distinct, 2);
        assert_eq!(h.disjoint_distinct, 2);
    }

    #[test]
    fn counts_sliding_only_prefixes() {
        // Prefix 9 appears in two sliding positions, never disjoint.
        let sliding = vec![report(0, &[1, 9]), report(1, &[9, 2]), report(2, &[2])];
        let disjoint = vec![report(0, &[1, 2])];
        let h = hidden_hhh(&sliding, &disjoint);
        assert_eq!(h.hidden_prefixes.iter().copied().collect::<Vec<_>>(), vec![9]);
        assert!((h.hidden_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.sliding_occurrences, 5);
        assert_eq!(h.hidden_occurrences, 2);
        assert!((h.occurrence_fraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_schedules() {
        let h = hidden_hhh::<u32>(&[], &[]);
        assert_eq!(h.hidden_fraction, 0.0);
        assert_eq!(h.occurrence_fraction, 0.0);
    }

    #[test]
    fn union_prefixes_collects() {
        let u = union_prefixes(&[report(0, &[3, 1]), report(1, &[2, 3])]);
        assert_eq!(u.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
