//! Plain-text tables: the output format of the experiment binaries.

use core::fmt::Write as _;

/// A simple column-aligned ASCII table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a header separator, columns padded to content.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:width$}", cell, width = widths[c]);
            }
            // Trim right-padding on the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }
}

/// Format a float with fixed decimals — the standard cell formatter.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "count"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name  12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(0.5, 0), "0");
    }
}
