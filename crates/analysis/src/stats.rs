//! Small numeric helpers shared by the experiment printers.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Median (average of middle two for even length); panics on empty.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Percentile in `[0, 100]` by linear interpolation between closest
/// ranks; panics on empty input or NaN.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 25.0), 20.0);
        assert_eq!(percentile(&v, 50.0), 30.0);
        assert_eq!(percentile(&v, 90.0), 46.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }
}
