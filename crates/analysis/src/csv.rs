//! Minimal CSV output (hand-rolled on purpose: the only serialization
//! this workspace needs is flat numeric tables, which does not justify
//! a serde dependency — see DESIGN.md §7).

use std::io::{self, Write};

/// Quote a cell per RFC 4180 when it contains a comma, quote or
/// newline.
fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Write a header and rows as CSV.
pub fn write_csv<W: Write>(mut w: W, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    writeln!(w, "{}", headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "CSV row arity mismatch");
        writeln!(w, "{}", row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","))?;
    }
    Ok(())
}

/// Render to a `String` (convenience for tests and small outputs).
pub fn to_csv_string(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut buf = Vec::new();
    write_csv(&mut buf, headers, rows).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows() {
        let s = to_csv_string(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(s, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn quoting() {
        let s = to_csv_string(&["x"], &[vec!["has,comma".into()], vec!["has\"quote".into()]]);
        assert_eq!(s, "x\n\"has,comma\"\n\"has\"\"quote\"\n");
    }

    #[test]
    fn empty_rows() {
        assert_eq!(to_csv_string(&["h"], &[]), "h\n");
    }
}
