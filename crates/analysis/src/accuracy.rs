//! Detector accuracy against an oracle: precision, recall, F1.

use std::collections::BTreeSet;

/// Set-comparison accuracy of a predicted HHH set against the truth.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SetAccuracy {
    /// True positives (predicted ∩ truth).
    pub tp: usize,
    /// False positives (predicted ∖ truth).
    pub fp: usize,
    /// False negatives (truth ∖ predicted).
    pub fn_: usize,
}

impl SetAccuracy {
    /// Compare a prediction against the truth.
    pub fn compare<T: Ord>(truth: &BTreeSet<T>, predicted: &BTreeSet<T>) -> Self {
        let tp = truth.intersection(predicted).count();
        SetAccuracy { tp, fp: predicted.len() - tp, fn_: truth.len() - tp }
    }

    /// Merge counts from another comparison (micro-averaging across
    /// windows).
    pub fn merge(&mut self, other: SetAccuracy) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// `tp / (tp + fp)`; 1 when nothing was predicted (no wrong
    /// claims were made).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)`; 1 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> BTreeSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn perfect_prediction() {
        let a = SetAccuracy::compare(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!((a.tp, a.fp, a.fn_), (3, 0, 0));
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        assert_eq!(a.f1(), 1.0);
    }

    #[test]
    fn over_and_under_prediction() {
        let a = SetAccuracy::compare(&set(&[1, 2, 3, 4]), &set(&[3, 4, 5]));
        assert_eq!((a.tp, a.fp, a.fn_), (2, 1, 2));
        assert!((a.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.recall(), 0.5);
    }

    #[test]
    fn empty_conventions() {
        let a = SetAccuracy::compare(&set(&[]), &set(&[]));
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        let b = SetAccuracy::compare(&set(&[1]), &set(&[]));
        assert_eq!(b.precision(), 1.0); // nothing claimed
        assert_eq!(b.recall(), 0.0);
        assert_eq!(b.f1(), 0.0);
    }

    #[test]
    fn merge_micro_averages() {
        let mut a = SetAccuracy::compare(&set(&[1, 2]), &set(&[1]));
        a.merge(SetAccuracy::compare(&set(&[3]), &set(&[3, 4])));
        assert_eq!((a.tp, a.fp, a.fn_), (2, 1, 1));
    }
}
