//! The exponential histogram for sliding-window counting
//! (Datar, Gionis, Indyk, Motwani, SODA 2002).
//!
//! Counts events over a sliding *time* window using O(k·log(N)) buckets
//! instead of a queue of every event. Buckets hold power-of-two counts;
//! at most `k + 1` buckets of each size are kept, and merging two
//! buckets of size `s` produces one of size `2s`. The only uncertainty
//! is the oldest (straddling) bucket, so the relative error is at most
//! `1/(2k) · (oldest bucket)/(total)` ≤ `1/(2k)` of the true count —
//! choose `k = ⌈1/(2ε)⌉` for relative error `ε`.
//!
//! Used here as the canonical "windowed counting without storing the
//! window" substrate, the conceptual midpoint between the paper's
//! disjoint windows (cheap, blind to boundaries) and its time-decaying
//! proposal (boundary-free).
//!
//! This is the unit-count variant (one event = one increment); the
//! byte-weighted sliding sums in the experiments use the exact epoch
//! machinery of `hhh-window` instead, as documented in the crate root.

use hhh_nettypes::{Nanos, TimeSpan};
use std::collections::VecDeque;

/// One bucket: `size` events, the newest of which happened at `end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Bucket {
    end: Nanos,
    size: u64,
}

/// Exponential histogram counting events in the trailing `window`.
#[derive(Clone, Debug)]
pub struct ExpHistogram {
    /// Max buckets per size class, `k + 1`.
    per_size: usize,
    window: TimeSpan,
    /// Oldest bucket at the front; sizes are non-increasing toward the
    /// back.
    buckets: VecDeque<Bucket>,
    events: u64,
}

impl ExpHistogram {
    /// A histogram with relative error at most `epsilon` over a sliding
    /// window of the given length. Panics unless `0 < epsilon < 1` and
    /// the window is non-zero.
    pub fn new(epsilon: f64, window: TimeSpan) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(!window.is_zero(), "window must be non-zero");
        let k = (1.0 / (2.0 * epsilon)).ceil() as usize;
        ExpHistogram { per_size: k + 1, window, buckets: VecDeque::new(), events: 0 }
    }

    /// The configured window length.
    pub fn window(&self) -> TimeSpan {
        self.window
    }

    /// Number of live buckets (the space actually used).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total events ever observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Record one event at `now`. Timestamps must be non-decreasing.
    pub fn insert(&mut self, now: Nanos) {
        debug_assert!(
            self.buckets.back().is_none_or(|b| b.end <= now),
            "events must arrive in time order"
        );
        self.events += 1;
        self.expire(now);
        self.buckets.push_back(Bucket { end: now, size: 1 });
        // Cascade merges: scan from the back (newest, smallest) and
        // merge the two oldest buckets of any size class that overflows.
        let mut size = 1u64;
        loop {
            let count = self
                .buckets
                .iter()
                .rev()
                .take_while(|b| b.size <= size)
                .filter(|b| b.size == size)
                .count();
            if count <= self.per_size {
                break;
            }
            // Find the two oldest buckets of this size and merge them.
            let mut idx = None;
            for (i, b) in self.buckets.iter().enumerate() {
                if b.size == size {
                    idx = Some(i);
                    break;
                }
            }
            let i = idx.expect("overflowing size class has buckets");
            debug_assert!(self.buckets[i + 1].size == size, "size classes must be contiguous");
            let newer_end = self.buckets[i + 1].end;
            self.buckets[i + 1] = Bucket { end: newer_end, size: size * 2 };
            self.buckets.remove(i);
            size *= 2;
        }
    }

    /// Drop buckets that ended before the window start.
    fn expire(&mut self, now: Nanos) {
        let start = now.saturating_sub_span(self.window);
        while let Some(front) = self.buckets.front() {
            if front.end < start {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Estimated number of events in `[now − window, now]`: the sum of
    /// all live buckets minus half the oldest (straddling) one.
    pub fn estimate(&mut self, now: Nanos) -> u64 {
        self.expire(now);
        let total: u64 = self.buckets.iter().map(|b| b.size).sum();
        match self.buckets.front() {
            Some(b) if self.buckets.len() > 1 || b.size > 1 => total - b.size / 2,
            _ => total,
        }
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact sliding-window counter for cross-checking.
    struct Exact {
        window: TimeSpan,
        times: VecDeque<Nanos>,
    }

    impl Exact {
        fn insert(&mut self, t: Nanos) {
            self.times.push_back(t);
        }
        fn count(&mut self, now: Nanos) -> u64 {
            let start = now.saturating_sub_span(self.window);
            while let Some(&f) = self.times.front() {
                if f < start {
                    self.times.pop_front();
                } else {
                    break;
                }
            }
            self.times.len() as u64
        }
    }

    #[test]
    fn exact_while_buckets_unit_sized() {
        let mut eh = ExpHistogram::new(0.1, TimeSpan::from_secs(10));
        for i in 0..5 {
            eh.insert(Nanos::from_secs(i));
        }
        assert_eq!(eh.estimate(Nanos::from_secs(5)), 5);
    }

    #[test]
    fn expiry_removes_old_events() {
        let mut eh = ExpHistogram::new(0.1, TimeSpan::from_secs(1));
        eh.insert(Nanos::from_secs(0));
        eh.insert(Nanos::from_secs(10));
        assert_eq!(eh.estimate(Nanos::from_secs(10)), 1);
    }

    #[test]
    fn relative_error_within_epsilon_on_uniform_stream() {
        let eps = 0.1;
        let window = TimeSpan::from_secs(10);
        let mut eh = ExpHistogram::new(eps, window);
        let mut exact = Exact { window, times: VecDeque::new() };
        let mut t = Nanos::ZERO;
        for _ in 0..50_000 {
            eh.insert(t);
            exact.insert(t);
            t += TimeSpan::from_millis(1);
        }
        let est = eh.estimate(t);
        let truth = exact.count(t);
        let rel = (est as f64 - truth as f64).abs() / truth as f64;
        assert!(rel <= eps, "relative error {rel} exceeds {eps}: est {est}, truth {truth}");
    }

    #[test]
    fn relative_error_on_bursty_stream() {
        let eps = 0.05;
        let window = TimeSpan::from_secs(5);
        let mut eh = ExpHistogram::new(eps, window);
        let mut exact = Exact { window, times: VecDeque::new() };
        let mut t = Nanos::ZERO;
        // Bursts of 100 events every second.
        for burst in 0..120u64 {
            t = Nanos::from_secs(burst);
            for i in 0..100 {
                let ti = t + TimeSpan::from_micros(i * 10);
                eh.insert(ti);
                exact.insert(ti);
            }
        }
        let now = t + TimeSpan::from_millis(500);
        let est = eh.estimate(now);
        let truth = exact.count(now);
        let rel = (est as f64 - truth as f64).abs() / truth as f64;
        assert!(rel <= eps + 0.01, "relative error {rel}: est {est}, truth {truth}");
    }

    #[test]
    fn space_is_logarithmic() {
        let mut eh = ExpHistogram::new(0.1, TimeSpan::from_secs(3600));
        let mut t = Nanos::ZERO;
        for _ in 0..100_000 {
            eh.insert(t);
            t += TimeSpan::from_millis(30);
        }
        // k=5 ⇒ ~6 buckets per size class, ~17 size classes for 1e5.
        assert!(eh.bucket_count() < 150, "bucket count {} not logarithmic", eh.bucket_count());
        assert_eq!(eh.events(), 100_000);
    }

    #[test]
    fn clear_resets() {
        let mut eh = ExpHistogram::new(0.1, TimeSpan::from_secs(1));
        eh.insert(Nanos::ZERO);
        eh.clear();
        assert_eq!(eh.estimate(Nanos::from_secs(1)), 0);
        assert_eq!(eh.events(), 0);
    }
}
