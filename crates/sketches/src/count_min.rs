//! The Count-Min sketch (Cormode & Muthukrishnan 2005).

use crate::hash::{hash_of, reduce, seed_sequence};
use core::hash::Hash;
use core::marker::PhantomData;

/// A Count-Min sketch: `depth` rows × `width` counters.
///
/// Point queries return an overestimate: for a stream of total weight
/// `N`, with `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉`, the estimate
/// exceeds the true frequency by more than `εN` with probability at most
/// `δ`. The estimate never *under*states the truth — detectors built on
/// CMS therefore have one-sided error (no false negatives at a given
/// threshold).
///
/// The optional *conservative update* rule (Estan & Varghese 2002)
/// increments each row only up to the post-update point estimate,
/// tightening the overestimate at no asymptotic cost; enable it with
/// [`CountMinSketch::with_conservative_update`].
#[derive(Clone, Debug)]
pub struct CountMinSketch<K> {
    counters: Vec<u64>,
    row_seeds: Vec<u64>,
    width: usize,
    total: u64,
    conservative: bool,
    _key: PhantomData<K>,
}

impl<K: Hash + Eq> CountMinSketch<K> {
    /// Build with explicit dimensions. Panics if either is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "CountMinSketch dimensions must be non-zero");
        CountMinSketch {
            counters: vec![0; width * depth],
            row_seeds: seed_sequence(seed, depth),
            width,
            total: 0,
            conservative: false,
            _key: PhantomData,
        }
    }

    /// Build from an (ε, δ) accuracy target: estimates are within `εN`
    /// of truth with probability `1 − δ`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (core::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth, seed)
    }

    /// Switch on conservative update (affects subsequent updates only).
    pub fn with_conservative_update(mut self) -> Self {
        self.conservative = true;
        self
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.row_seeds.len()
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total weight inserted so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Heap footprint of the counter array in bytes (for resource
    /// accounting in the experiments).
    pub fn state_bytes(&self) -> usize {
        self.counters.len() * core::mem::size_of::<u64>()
    }

    #[inline]
    fn bucket(&self, row: usize, key: &K) -> usize {
        row * self.width + reduce(hash_of(key, self.row_seeds[row]), self.width)
    }

    /// Add `weight` to `key`'s frequency.
    #[inline]
    pub fn update(&mut self, key: &K, weight: u64) {
        self.total += weight;
        if self.conservative {
            // Conservative update: raise each row only as far as the
            // smallest row would reach.
            let mut est = u64::MAX;
            for row in 0..self.depth() {
                est = est.min(self.counters[self.bucket(row, key)]);
            }
            let target = est + weight;
            for row in 0..self.depth() {
                let b = self.bucket(row, key);
                if self.counters[b] < target {
                    self.counters[b] = target;
                }
            }
        } else {
            for row in 0..self.depth() {
                let b = self.bucket(row, key);
                self.counters[b] += weight;
            }
        }
    }

    /// Point estimate: minimum over rows, an upper bound on the truth.
    #[inline]
    pub fn estimate(&self, key: &K) -> u64 {
        let mut est = u64::MAX;
        for row in 0..self.depth() {
            est = est.min(self.counters[self.bucket(row, key)]);
        }
        est
    }

    /// Merge another sketch with identical dimensions and seed into this
    /// one (counter-wise sum). Panics on mismatched configuration, and
    /// rejects conservative-update sketches (their merge is not sound:
    /// per-row counters no longer upper-bound per-row truth additively).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.row_seeds, other.row_seeds, "seed mismatch");
        assert!(
            !self.conservative && !other.conservative,
            "conservative-update sketches cannot be merged"
        );
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Reset all counters to zero.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::<u64>::new(64, 4, 42);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..1000u64 {
            let key = i % 37;
            let w = (i % 5) + 1;
            cms.update(&key, w);
            *truth.entry(key).or_default() += w;
        }
        for (k, t) in &truth {
            assert!(cms.estimate(k) >= *t, "underestimate for {k}");
        }
    }

    #[test]
    fn error_bound_holds_statistically() {
        // ε = e/width with width 256 ⇒ εN error bound. Insert Zipf-ish
        // traffic and check the bound for all keys (allowing the δ
        // failure probability to show up on none, since depth 5 gives
        // δ < 1%, and we test 200 keys → expected failures ≈ 2; allow 5).
        let mut cms = CountMinSketch::<u64>::with_error(0.01, 0.01, 7);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut n = 0u64;
        for i in 0..60_000u64 {
            let key = i % 200;
            let w = 1 + (200 / (key + 1));
            cms.update(&key, w);
            *truth.entry(key).or_default() += w;
            n += w;
        }
        assert_eq!(cms.total(), n);
        let eps_n = (0.01 * n as f64) as u64;
        let violations = truth.iter().filter(|(k, t)| cms.estimate(k) > **t + eps_n).count();
        assert!(violations <= 5, "too many CMS bound violations: {violations}");
    }

    #[test]
    fn conservative_update_is_tighter_and_still_sound() {
        let mut plain = CountMinSketch::<u64>::new(32, 3, 1);
        let mut cons = CountMinSketch::<u64>::new(32, 3, 1).with_conservative_update();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..5_000u64 {
            let key = i % 300;
            plain.update(&key, 1);
            cons.update(&key, 1);
            *truth.entry(key).or_default() += 1;
        }
        let mut cons_total_err = 0u64;
        let mut plain_total_err = 0u64;
        for (k, t) in &truth {
            assert!(cons.estimate(k) >= *t, "conservative underestimated");
            cons_total_err += cons.estimate(k) - t;
            plain_total_err += plain.estimate(k) - t;
        }
        assert!(
            cons_total_err <= plain_total_err,
            "conservative ({cons_total_err}) should not be looser than plain ({plain_total_err})"
        );
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = CountMinSketch::<u64>::new(128, 4, 99);
        let mut b = CountMinSketch::<u64>::new(128, 4, 99);
        let mut whole = CountMinSketch::<u64>::new(128, 4, 99);
        for i in 0..500u64 {
            a.update(&(i % 50), 2);
            whole.update(&(i % 50), 2);
        }
        for i in 0..500u64 {
            b.update(&(i % 70), 3);
            whole.update(&(i % 70), 3);
        }
        a.merge(&b);
        for k in 0..70u64 {
            assert_eq!(a.estimate(&k), whole.estimate(&k));
        }
        assert_eq!(a.total(), whole.total());
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merge_rejects_different_seeds() {
        let mut a = CountMinSketch::<u64>::new(8, 2, 1);
        let b = CountMinSketch::<u64>::new(8, 2, 2);
        a.merge(&b);
    }

    #[test]
    fn clear_resets() {
        let mut cms = CountMinSketch::<u64>::new(8, 2, 1);
        cms.update(&1, 10);
        cms.clear();
        assert_eq!(cms.estimate(&1), 0);
        assert_eq!(cms.total(), 0);
    }

    #[test]
    fn sizing_from_error() {
        let cms = CountMinSketch::<u64>::with_error(0.001, 0.01, 0);
        assert!(cms.width() >= 2718);
        assert!(cms.depth() >= 4);
        assert_eq!(cms.state_bytes(), cms.width() * cms.depth() * 8);
    }

    proptest! {
        #[test]
        fn estimate_upper_bounds_truth(keys in prop::collection::vec(0u64..100, 1..500)) {
            let mut cms = CountMinSketch::<u64>::new(16, 3, 5);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for k in &keys {
                cms.update(k, 1);
                *truth.entry(*k).or_default() += 1;
            }
            for (k, t) in truth {
                prop_assert!(cms.estimate(&k) >= t);
                // And never exceeds the stream total.
                prop_assert!(cms.estimate(&k) <= keys.len() as u64);
            }
        }
    }
}
