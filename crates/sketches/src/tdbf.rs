//! Time-decaying Bloom filters — the proof-of-concept streaming
//! structure the paper's §3 proposes (Bianchi, d'Heureuse, Niccolini,
//! "On-demand Time-decaying Bloom Filters for Telemarketer Detection",
//! CCR 2011).
//!
//! Both variants keep an array of `m` *cells* addressed by `k` hashes,
//! like a Bloom filter, but each cell holds an exponentially decayed
//! count instead of a bit. A key's estimate is the **minimum** over its
//! `k` cells (CMS-style), so collisions only ever *inflate* the
//! estimate: the filters never under-report a flow's decayed rate.
//!
//! * [`SweepingTdbf`] is the base design: plain `f64` cells decayed by a
//!   periodic multiplicative sweep over the whole array. Simple, but the
//!   sweep is an O(m) hiccup and between sweeps old traffic is
//!   over-weighted.
//! * [`OnDemandTdbf`] is the paper's refinement: each cell carries its
//!   own last-touch timestamp and is decayed *lazily* exactly when read
//!   or written. No sweeps, no hiccups, exact exponential decay at any
//!   query time — the property that makes the structure "windowless".
//!
//! The estimate of a flow with steady rate `r` converges to `r/λ`
//! (see [`DecayRate::steady_state`]); thresholding decayed counts is
//! thresholding rates, with no window boundary to hide bursts behind.

use crate::decay::{DecayRate, DecayedCounter};
use crate::hash::{hash_of, reduce, seed_sequence};
use core::hash::Hash;
use core::marker::PhantomData;
use hhh_nettypes::{Nanos, TimeSpan};

/// On-demand (lazily decayed) time-decaying Bloom filter.
///
/// The cell array is *partitioned*: each of the `k` hash functions
/// owns a private bank of `m` cells (`k·m` cells total). This is the
/// layout a feed-forward match-action pipeline requires (one register
/// array per stage), and keeping the software filter identical makes
/// `hhh-dataplane`'s integer program bit-comparable to this one. At
/// equal total size the partitioned layout's accuracy is within a
/// whisker of the classic shared-array Bloom layout.
#[derive(Clone, Debug)]
pub struct OnDemandTdbf<K> {
    /// `k` banks of `m` cells, bank `i` at `i*m..(i+1)*m`.
    cells: Vec<DecayedCounter>,
    m: usize,
    seeds: Vec<u64>,
    rate: DecayRate,
    _key: PhantomData<K>,
}

impl<K: Hash + Eq> OnDemandTdbf<K> {
    /// A filter with `k` hash functions, `m` cells *per hash bank*,
    /// and a decay rate. Panics if `m` or `k` is zero.
    pub fn new(m: usize, k: usize, rate: DecayRate, seed: u64) -> Self {
        assert!(m > 0 && k > 0, "TDBF parameters must be non-zero");
        OnDemandTdbf {
            cells: vec![DecayedCounter::new(); m * k],
            m,
            seeds: seed_sequence(seed, k),
            rate,
            _key: PhantomData,
        }
    }

    /// The decay rate.
    pub fn rate(&self) -> DecayRate {
        self.rate
    }

    /// Total number of cells (`k` banks × `m` cells).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> usize {
        self.seeds.len()
    }

    /// Heap footprint of the cell array in bytes.
    pub fn state_bytes(&self) -> usize {
        self.cells.len() * core::mem::size_of::<DecayedCounter>()
    }

    #[inline]
    fn cell_index(&self, key: &K, i: usize) -> usize {
        i * self.m + reduce(hash_of(key, self.seeds[i]), self.m)
    }

    /// Record `weight` for `key` at trace time `now`.
    ///
    /// Each of the key's `k` cells is decayed to `now` and incremented;
    /// the cell's timestamp advances. O(k), no allocation.
    #[inline]
    pub fn insert(&mut self, key: &K, weight: f64, now: Nanos) {
        for i in 0..self.seeds.len() {
            let c = self.cell_index(key, i);
            self.cells[c].add(self.rate, now, weight);
        }
    }

    /// The decayed-count estimate for `key` as of `now`: minimum over
    /// its cells, an upper bound on the key's true decayed count.
    #[inline]
    pub fn estimate(&self, key: &K, now: Nanos) -> f64 {
        let mut est = f64::INFINITY;
        for i in 0..self.seeds.len() {
            let c = self.cell_index(key, i);
            est = est.min(self.cells[c].peek(self.rate, now));
        }
        est
    }

    /// Estimate divided by the steady-state factor: the implied *rate*
    /// (weight per second) of the key, the quantity thresholds are
    /// naturally expressed in.
    pub fn rate_estimate(&self, key: &K, now: Nanos) -> f64 {
        self.estimate(key, now) * self.rate.lambda()
    }

    /// Reset every cell.
    pub fn clear(&mut self) {
        self.cells.iter_mut().for_each(|c| c.clear());
    }

    /// The raw cell array (`k` banks of `m` cells, bank `i` at
    /// `i*m..(i+1)*m`) — the serialization surface of the filter.
    /// Together with the constructor parameters (`m`, `k`, rate, seed)
    /// this is the filter's entire state.
    pub fn cells(&self) -> &[DecayedCounter] {
        &self.cells
    }

    /// Replace the whole cell array (the deserialization surface,
    /// inverse of [`cells`](Self::cells)). The filter must have been
    /// constructed with the same geometry, hash seed and decay rate as
    /// the one the cells came from; only the length is checkable here
    /// and it panics on mismatch.
    pub fn restore_cells(&mut self, cells: Vec<DecayedCounter>) {
        assert_eq!(cells.len(), self.cells.len(), "TDBF cell-count mismatch");
        self.cells = cells;
    }

    /// Merge another filter over a *disjoint* sub-stream into this one.
    /// Panics unless geometry, seeds and decay rate match.
    ///
    /// Cell-wise: each pair of cells is decayed to the later of the two
    /// last-touch timestamps and summed ([`DecayedCounter::merge`]).
    /// Decay is linear over arrivals, so per-cell sums — and therefore
    /// the min-over-banks estimates built from them — behave exactly as
    /// if the two packet streams had been interleaved into one filter:
    /// estimates never under-report a key's decayed count.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.m, other.m, "TDBF geometry mismatch");
        assert_eq!(self.seeds, other.seeds, "TDBF seed mismatch");
        assert_eq!(self.rate, other.rate, "TDBF decay-rate mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(self.rate, b);
        }
    }
}

/// Periodic-sweep time-decaying Bloom filter (the pre-"on-demand"
/// baseline design).
///
/// Cells are plain numbers; [`SweepingTdbf::maybe_sweep`] multiplies the
/// whole array by the decay factor accumulated since the previous sweep.
/// Between sweeps estimates are *stale upward* (old traffic has not yet
/// been discounted), preserving the no-underestimate property. Sweeps
/// cost O(m) — the operational drawback that motivated the on-demand
/// variant, and which [`crate::SweepingTdbf::sweeps`] lets experiments
/// quantify.
#[derive(Clone, Debug)]
pub struct SweepingTdbf<K> {
    cells: Vec<f64>,
    m: usize,
    seeds: Vec<u64>,
    rate: DecayRate,
    sweep_every: TimeSpan,
    last_sweep: Nanos,
    sweeps: u64,
    _key: PhantomData<K>,
}

impl<K: Hash + Eq> SweepingTdbf<K> {
    /// A filter with `m` cells, `k` hashes, a decay rate, and a sweep
    /// period. Panics if `m`, `k` or the period is zero.
    pub fn new(m: usize, k: usize, rate: DecayRate, sweep_every: TimeSpan, seed: u64) -> Self {
        assert!(m > 0 && k > 0, "TDBF parameters must be non-zero");
        assert!(!sweep_every.is_zero(), "sweep period must be non-zero");
        SweepingTdbf {
            cells: vec![0.0; m * k],
            m,
            seeds: seed_sequence(seed, k),
            rate,
            sweep_every,
            last_sweep: Nanos::ZERO,
            sweeps: 0,
            _key: PhantomData,
        }
    }

    /// Total number of cells (`k` banks × `m` cells).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// How many O(m) sweeps have run (the cost the on-demand variant
    /// eliminates).
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Heap footprint of the cell array in bytes.
    pub fn state_bytes(&self) -> usize {
        self.cells.len() * core::mem::size_of::<f64>()
    }

    /// Run a sweep if a full period has elapsed. Called automatically by
    /// [`insert`](Self::insert); exposed so drivers can sweep on idle.
    pub fn maybe_sweep(&mut self, now: Nanos) {
        let elapsed = if now >= self.last_sweep { now - self.last_sweep } else { TimeSpan::ZERO };
        if elapsed >= self.sweep_every {
            let f = self.rate.factor(elapsed);
            for c in &mut self.cells {
                *c *= f;
            }
            self.last_sweep = now;
            self.sweeps += 1;
        }
    }

    /// Record `weight` for `key` at trace time `now`.
    #[inline]
    pub fn insert(&mut self, key: &K, weight: f64, now: Nanos) {
        self.maybe_sweep(now);
        for i in 0..self.seeds.len() {
            let c = i * self.m + reduce(hash_of(key, self.seeds[i]), self.m);
            self.cells[c] += weight;
        }
    }

    /// Estimate as of the last sweep (cells between sweeps are stale
    /// upward; the estimate remains an upper bound on the decayed
    /// count).
    pub fn estimate(&self, key: &K) -> f64 {
        let mut est = f64::INFINITY;
        for i in 0..self.seeds.len() {
            let c = i * self.m + reduce(hash_of(key, self.seeds[i]), self.m);
            est = est.min(self.cells[c]);
        }
        est
    }

    /// Reset every cell and the sweep clock.
    pub fn clear(&mut self) {
        self.cells.fill(0.0);
        self.last_sweep = Nanos::ZERO;
        self.sweeps = 0;
    }

    /// Merge another filter over a *disjoint* sub-stream (cell-wise
    /// sum). The merged sweep clock is the *later* of the two, so the
    /// earlier-swept side's cells are temporarily under-discounted —
    /// stale *upward*, like everything between sweeps in this variant,
    /// preserving the no-underestimate property.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.m, other.m, "TDBF geometry mismatch");
        assert_eq!(self.seeds, other.seeds, "TDBF seed mismatch");
        assert_eq!(self.rate, other.rate, "TDBF decay-rate mismatch");
        assert_eq!(self.sweep_every, other.sweep_every, "sweep period mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += *b;
        }
        self.last_sweep = self.last_sweep.max(other.last_sweep);
        self.sweeps += other.sweeps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hl(secs: u64) -> DecayRate {
        DecayRate::from_half_life(TimeSpan::from_secs(secs))
    }

    #[test]
    fn on_demand_single_key_decays_exactly() {
        let mut f = OnDemandTdbf::<u64>::new(1024, 3, hl(10), 1);
        f.insert(&7, 100.0, Nanos::ZERO);
        let v = f.estimate(&7, Nanos::from_secs(10));
        assert!((v - 50.0).abs() < 1e-9, "one half-life: {v}");
        let v = f.estimate(&7, Nanos::from_secs(30));
        assert!((v - 12.5).abs() < 1e-9, "three half-lives: {v}");
    }

    #[test]
    fn on_demand_never_underestimates() {
        // Compare against per-key exact decayed counters.
        let rate = hl(5);
        let mut f = OnDemandTdbf::<u64>::new(256, 4, rate, 2);
        let mut exact: std::collections::HashMap<u64, DecayedCounter> = Default::default();
        let mut t = Nanos::ZERO;
        for i in 0..5_000u64 {
            let key = i % 100;
            f.insert(&key, 1.0, t);
            exact.entry(key).or_default().add(rate, t, 1.0);
            t += TimeSpan::from_millis(3);
        }
        for (k, c) in &exact {
            let est = f.estimate(k, t);
            let truth = c.peek(rate, t);
            assert!(est >= truth - 1e-6, "TDBF underestimated key {k}: est {est} < truth {truth}");
        }
    }

    #[test]
    fn on_demand_burst_visible_immediately() {
        // The windowless property: a burst is visible at any query time,
        // no boundary alignment required.
        let mut f = OnDemandTdbf::<u64>::new(512, 3, hl(10), 3);
        let burst_start = Nanos::from_millis(7_300); // deliberately unaligned
        for i in 0..100 {
            f.insert(&99, 10.0, burst_start + TimeSpan::from_millis(i));
        }
        let just_after = burst_start + TimeSpan::from_millis(150);
        assert!(f.estimate(&99, just_after) > 900.0);
        // And it fades: after 5 half-lives, under 1/32 + ε of peak (the
        // burst itself spans ~0.1 s, negligible vs the 50 s horizon).
        assert!(f.estimate(&99, just_after + TimeSpan::from_secs(50)) < 1000.0 / 30.0);
    }

    #[test]
    fn on_demand_rate_estimate_tracks_flow_rate() {
        let rate = hl(20);
        let mut f = OnDemandTdbf::<u64>::new(4096, 4, rate, 4);
        // 200 weight/sec for 120 s (several half-lives to converge).
        let mut t = Nanos::ZERO;
        for _ in 0..24_000 {
            f.insert(&1, 1.0, t);
            t += TimeSpan::from_millis(5);
        }
        let r = f.rate_estimate(&1, t);
        assert!((r - 200.0).abs() / 200.0 < 0.05, "rate estimate {r} vs 200");
    }

    #[test]
    fn sweeping_matches_on_demand_at_sweep_instants() {
        let rate = hl(10);
        let mut od = OnDemandTdbf::<u64>::new(128, 3, rate, 5);
        let mut sw = SweepingTdbf::<u64>::new(128, 3, rate, TimeSpan::from_secs(1), 5);
        let mut t = Nanos::ZERO;
        for i in 0..10_000u64 {
            let key = i % 10;
            od.insert(&key, 2.0, t);
            sw.insert(&key, 2.0, t);
            t += TimeSpan::from_millis(1);
        }
        // Force both to the same instant. The sweeping variant
        // over-discounts arrivals that landed mid-period (they are
        // decayed as if they arrived at the previous sweep), so the
        // two agree only up to ~λ·period/2 ≈ 3.5% here.
        sw.maybe_sweep(t);
        for key in 0..10u64 {
            let a = od.estimate(&key, t);
            let b = sw.estimate(&key);
            assert!(
                (a - b).abs() / a < 0.06,
                "variants diverged for {key}: on-demand {a}, sweeping {b}"
            );
            assert!(b <= a, "sweeping should over-discount, not under-discount");
        }
        assert!(sw.sweeps() >= 9, "expected ~10 sweeps, got {}", sw.sweeps());
    }

    #[test]
    fn sweeping_is_stale_upward_between_sweeps() {
        let rate = hl(1);
        let mut sw = SweepingTdbf::<u64>::new(64, 2, rate, TimeSpan::from_secs(10), 6);
        sw.insert(&1, 100.0, Nanos::ZERO);
        // 5 s later, no sweep has run: estimate is still the raw 100,
        // an over- (never under-) statement of the decayed truth ~3.1.
        assert_eq!(sw.estimate(&1), 100.0);
        sw.maybe_sweep(Nanos::from_secs(10));
        let v = sw.estimate(&1);
        assert!(v < 0.2, "after sweep at 10 half-lives: {v}");
    }

    #[test]
    fn clear_resets_both() {
        let rate = hl(1);
        let mut od = OnDemandTdbf::<u64>::new(64, 2, rate, 7);
        od.insert(&1, 5.0, Nanos::from_secs(1));
        od.clear();
        assert_eq!(od.estimate(&1, Nanos::from_secs(1)), 0.0);

        let mut sw = SweepingTdbf::<u64>::new(64, 2, rate, TimeSpan::from_secs(1), 7);
        sw.insert(&1, 5.0, Nanos::from_secs(1));
        sw.clear();
        assert_eq!(sw.estimate(&1), 0.0);
        assert_eq!(sw.sweeps(), 0);
    }

    #[test]
    fn state_accounting() {
        let od = OnDemandTdbf::<u64>::new(100, 4, hl(1), 0);
        assert_eq!(od.cell_count(), 400); // 4 banks × 100 cells
        assert_eq!(od.hashes(), 4);
        assert_eq!(od.state_bytes(), 400 * 16); // f64 + Nanos per cell
        let sw = SweepingTdbf::<u64>::new(100, 4, hl(1), TimeSpan::from_secs(1), 0);
        assert_eq!(sw.state_bytes(), 3200); // f64 per cell, 4 banks
    }
}
