//! Lossy Counting (Manku & Motwani, VLDB 2002), weighted variant.
//!
//! The third classic deterministic frequent-items summary, completing
//! the set with [`crate::SpaceSaving`] (overestimates, fixed space) and
//! [`crate::MisraGries`] (underestimates, fixed space): Lossy Counting
//! underestimates like Misra-Gries but lets the *space* float with the
//! stream — O((1/ε)·log(εN)) entries — in exchange for a per-item error
//! bounded by εN at every moment, not just at the end. Historically
//! it is the substrate of the first streaming HHH algorithms (Cormode
//! et al. 2003), which is why it belongs in this workspace.
//!
//! Mechanics: the stream is cut into *buckets* of weight `w = ⌈1/ε⌉`.
//! A new key enters with `delta = b − 1` (the maximum it could have
//! been missed for, where `b` is the current bucket); at every bucket
//! boundary all entries with `count + delta ≤ b` are pruned. The
//! invariants (checked by the property tests):
//!
//! * `estimate(k) ≤ true(k)` — never overestimates;
//! * `true(k) − estimate(k) ≤ εN` — bounded undercount;
//! * any key with `true(k) > εN` is present.

use core::hash::Hash;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct Entry {
    count: u64,
    /// Maximum possible undercount inherited at insertion time.
    delta: u64,
}

/// The Lossy Counting summary.
#[derive(Clone, Debug)]
pub struct LossyCounting<K> {
    /// Bucket width in weight units (⌈1/ε⌉).
    bucket_width: u64,
    entries: HashMap<K, Entry>,
    total: u64,
    /// Current bucket id `b = ⌈N/w⌉`, 1-based.
    bucket: u64,
}

impl<K: Hash + Eq + Copy> LossyCounting<K> {
    /// A summary with error bound `epsilon` (per-item undercount is at
    /// most `epsilon × total_weight`). Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        LossyCounting {
            bucket_width: (1.0 / epsilon).ceil() as u64,
            entries: HashMap::new(),
            total: 0,
            bucket: 1,
        }
    }

    /// The bucket width `⌈1/ε⌉`.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of tracked keys (the floating space).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The worst-case undercount of any estimate right now: the
    /// current bucket id, which is `⌈N/w⌉ ≈ εN` in weight units (the
    /// telescoping prune-loss argument of the Manku–Motwani paper
    /// carries over to weighted updates).
    pub fn max_undercount(&self) -> u64 {
        self.bucket
    }

    /// Observe `weight` for `key`.
    pub fn update(&mut self, key: K, weight: u64) {
        self.total += weight;
        match self.entries.get_mut(&key) {
            Some(e) => e.count += weight,
            None => {
                self.entries.insert(key, Entry { count: weight, delta: self.bucket - 1 });
            }
        }
        // Crossed one or more bucket boundaries? Prune.
        let new_bucket = self.total.div_ceil(self.bucket_width);
        if new_bucket > self.bucket {
            self.bucket = new_bucket;
            let b = self.bucket;
            self.entries.retain(|_, e| e.count + e.delta > b);
        }
    }

    /// The (under-)estimate for a key; 0 when untracked.
    pub fn estimate(&self, key: &K) -> u64 {
        self.entries.get(key).map(|e| e.count).unwrap_or(0)
    }

    /// Keys whose true count may reach `threshold`: report when
    /// `count + delta ≥ threshold` (the paper's output rule —
    /// guarantees no false negatives above `threshold`), descending by
    /// estimate, ties broken by insertion-error bound.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.count + e.delta >= threshold)
            .map(|(k, e)| (*k, e.count))
            .collect();
        out.sort_by_key(|e| core::cmp::Reverse(e.1));
        out
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.total = 0;
        self.bucket = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_before_first_boundary() {
        let mut lc = LossyCounting::<u64>::new(0.1); // w = 10
        lc.update(1, 3);
        lc.update(2, 4);
        assert_eq!(lc.estimate(&1), 3);
        assert_eq!(lc.estimate(&2), 4);
        assert_eq!(lc.len(), 2);
    }

    #[test]
    fn never_overestimates_and_bounded_undercount() {
        let eps = 0.01;
        let mut lc = LossyCounting::<u64>::new(eps);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let k = if i % 4 == 0 { i % 16 } else { 1000 + (i * 2_654_435_761) % 5_000 };
            let w = 1 + i % 3;
            lc.update(k, w);
            *truth.entry(k).or_default() += w;
        }
        let bound = (eps * lc.total() as f64).ceil() as u64 + lc.bucket_width();
        for (k, t) in &truth {
            let e = lc.estimate(k);
            assert!(e <= *t, "overestimate for {k}: {e} > {t}");
            assert!(e + bound >= *t, "undercount beyond bound for {k}: {e}+{bound} < {t}");
        }
    }

    #[test]
    fn space_is_sublinear_in_distinct_keys() {
        let mut lc = LossyCounting::<u64>::new(0.001);
        // 200k distinct singletons: tracked entries must stay far below.
        for i in 0..200_000u64 {
            lc.update(i, 1);
        }
        assert!(lc.len() < 30_000, "{} entries for 200k singletons — pruning inert?", lc.len());
    }

    #[test]
    fn heavy_hitters_no_false_negatives() {
        let eps = 0.005;
        let mut lc = LossyCounting::<u64>::new(eps);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..100_000u64 {
            let k = if i % 10 < 3 { i % 3 } else { 100 + (i * 7) % 10_000 };
            lc.update(k, 1);
            *truth.entry(k).or_default() += 1;
        }
        let threshold = lc.total() / 20; // 5%
        let reported: std::collections::HashSet<u64> =
            lc.heavy_hitters(threshold).into_iter().map(|e| e.0).collect();
        for (k, t) in &truth {
            if *t >= threshold {
                assert!(reported.contains(k), "missed true heavy {k} ({t})");
            }
        }
    }

    #[test]
    fn clear_resets() {
        let mut lc = LossyCounting::<u64>::new(0.1);
        lc.update(1, 100);
        lc.clear();
        assert!(lc.is_empty());
        assert_eq!(lc.total(), 0);
        assert_eq!(lc.estimate(&1), 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        let _ = LossyCounting::<u64>::new(1.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn lossy_counting_contract(
            ops in prop::collection::vec((0u64..60, 1u64..8), 1..2000),
            inv_eps in 10u64..200,
        ) {
            let eps = 1.0 / inv_eps as f64;
            let mut lc = LossyCounting::<u64>::new(eps);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, w) in ops {
                lc.update(k, w);
                *truth.entry(k).or_default() += w;
            }
            let n: u64 = truth.values().sum();
            prop_assert_eq!(lc.total(), n);
            let bound = (eps * n as f64).ceil() as u64 + lc.bucket_width();
            for (k, t) in &truth {
                let e = lc.estimate(k);
                prop_assert!(e <= *t);
                prop_assert!(e + bound >= *t, "undercount: {} + {} < {}", e, bound, t);
            }
            // No false negatives at any threshold above the bound.
            let threshold = n / 4 + 1;
            let reported: std::collections::HashSet<u64> =
                lc.heavy_hitters(threshold).into_iter().map(|x| x.0).collect();
            for (k, t) in &truth {
                if *t >= threshold {
                    prop_assert!(reported.contains(k));
                }
            }
        }
    }
}
