//! # hhh-sketches
//!
//! Frequency-estimation sketches: the approximate-counting substrate the
//! HHH detectors in `hhh-core` are assembled from.
//!
//! | Type | Answers | Paper it implements |
//! |------|---------|---------------------|
//! | [`CountMinSketch`] | point frequency, overestimate | Cormode & Muthukrishnan 2005 |
//! | [`CountSketch`] | point frequency, unbiased | Charikar, Chen, Farach-Colton 2002 |
//! | [`SpaceSaving`] | top-k + frequency with deterministic bounds | Metwally, Agrawal, El Abbadi 2005 |
//! | [`MisraGries`] | frequent items, deterministic | Misra & Gries 1982 |
//! | [`BloomFilter`] | set membership | Bloom 1970 |
//! | [`LossyCounting`] | frequent items, deterministic, floating space | Manku & Motwani 2002 |
//! | [`OnDemandTdbf`] | *time-decayed* frequency | Bianchi, d'Heureuse, Niccolini 2011 — the proof-of-concept the paper's §3 proposes |
//! | [`SweepingTdbf`] | time-decayed frequency, periodic sweep | base variant of the above |
//! | [`DecayedCounter`] | one time-decayed scalar | EWMA accumulator used for decayed totals |
//! | [`SlidingWindowSummary`] | frequent items over the last `W` packets | frame-based summary in the spirit of WCSS (Ben-Basat et al. 2016, the paper's ref. \[1\]) |
//! | [`SlidingSummary`] | frequent items over the last `W` packets, O(1) updates | lazy-expiry summary in the spirit of Memento (Ben-Basat et al., CoNEXT 2018) |
//! | [`ExpHistogram`] | count over a sliding time window | Datar, Gionis, Indyk, Motwani 2002 |
//!
//! ## Design rules
//!
//! * **No allocation on the update path.** Every `update`/`insert`
//!   touches pre-allocated flat arrays only (the single exception is a
//!   hash-map rehash inside [`SpaceSaving`], amortized O(1) and bounded
//!   by its fixed capacity).
//! * **Keys are anything `Hash + Eq + Copy`.** Hashing is seeded and
//!   deterministic (see [`hash`]), so sketches are reproducible across
//!   runs and platforms — a requirement for the experiment harness.
//! * **Time is explicit.** Decaying structures take `now: Nanos` as an
//!   argument instead of reading a clock; trace time drives everything.
//!
//! * **Summaries are mergeable.** Every frequency summary here
//!   supports `merge(&mut self, &other)` over identically-configured
//!   instances fed *disjoint* sub-streams, following the
//!   mergeable-summaries framework (Agarwal et al., PODS 2012):
//!   Count-Min and Count Sketch merge by counter-wise addition
//!   (exact, by linearity), [`SpaceSaving`] and [`MisraGries`] by the
//!   union-then-prune recipe that keeps their deterministic bounds
//!   additive, and the TDBFs cell-wise after decaying both sides to a
//!   common instant. This is the substrate of `hhh-window`'s sharded
//!   pipeline: partition a stream by key, sketch each shard on its own
//!   core, merge at report points.
//!
//! ## Omitted (deliberately)
//!
//! * The weighted exponential histogram (the unit-count DGIM variant is
//!   provided; byte-weighted sliding sums in this workspace use the
//!   epoch machinery of `hhh-window`, which is exact).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;

mod bloom;
mod count_min;
mod count_sketch;
mod decay;
mod exp_histogram;
mod lossy_counting;
mod misra_gries;
mod space_saving;
mod tdbf;
mod window_summary;

pub use bloom::BloomFilter;
pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;
pub use decay::{DecayRate, DecayedCounter};
pub use exp_histogram::ExpHistogram;
pub use lossy_counting::LossyCounting;
pub use misra_gries::MisraGries;
pub use space_saving::{SpaceSaving, SsEntry};
pub use tdbf::{OnDemandTdbf, SweepingTdbf};
pub use window_summary::{SlidingSummary, SlidingWindowSummary};
