//! Exponential time decay: the continuous-time alternative to windows.
//!
//! The paper's §3 argues that disjoint windows hide HHHs and proposes
//! *time-decaying* analysis instead. The primitive is the exponentially
//! decayed count
//!
//! ```text
//! C(t) = Σᵢ wᵢ · exp(−λ·(t − tᵢ))        over arrivals (tᵢ, wᵢ) ≤ t
//! ```
//!
//! which weighs recent traffic fully and old traffic not at all, with no
//! window boundary anywhere. A flow sending at a steady rate `r` (weight
//! per second) converges to `C = r/λ`, so thresholds on decayed counts
//! are thresholds on *rates* — [`DecayRate::steady_state`] does that
//! conversion. The half-life `t½ = ln2/λ` plays the role the window
//! length played: [`DecayRate::from_half_life`] is how experiments pick
//! λ comparable to a window size.

use hhh_nettypes::{Nanos, TimeSpan};

/// An exponential decay rate λ (per second), shared by every decaying
/// structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecayRate {
    lambda_per_sec: f64,
}

impl DecayRate {
    /// From λ directly (per second). Panics unless positive and finite.
    pub fn per_second(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "decay rate must be positive, got {lambda}");
        DecayRate { lambda_per_sec: lambda }
    }

    /// The rate whose half-life is `t½`: λ = ln2 / t½.
    ///
    /// A decayed counter with half-life `w/2` forgets traffic on roughly
    /// the same time scale as a `w`-long window; this is how the
    /// experiments make TDBF detectors comparable to window detectors.
    pub fn from_half_life(half_life: TimeSpan) -> Self {
        assert!(!half_life.is_zero(), "half-life must be non-zero");
        Self::per_second(core::f64::consts::LN_2 / half_life.as_secs_f64())
    }

    /// λ in 1/seconds.
    pub fn lambda(&self) -> f64 {
        self.lambda_per_sec
    }

    /// The half-life ln2/λ.
    pub fn half_life(&self) -> TimeSpan {
        TimeSpan::from_secs_f64(core::f64::consts::LN_2 / self.lambda_per_sec)
    }

    /// The multiplicative decay over an elapsed span: `exp(−λ·Δt)`.
    #[inline]
    pub fn factor(&self, elapsed: TimeSpan) -> f64 {
        (-self.lambda_per_sec * elapsed.as_secs_f64()).exp()
    }

    /// The steady-state decayed count of a flow with constant rate
    /// `rate` (weight per second): `rate / λ`.
    pub fn steady_state(&self, rate: f64) -> f64 {
        rate / self.lambda_per_sec
    }
}

/// One exponentially decayed scalar with *lazy* (on-demand) decay:
/// instead of a background sweep, the value is brought forward to `now`
/// whenever it is touched. This is precisely the "on-demand" mechanism
/// of Bianchi et al. 2011 that the paper adopts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DecayedCounter {
    value: f64,
    last: Nanos,
}

impl DecayedCounter {
    /// A zero counter.
    pub const fn new() -> Self {
        DecayedCounter { value: 0.0, last: Nanos::ZERO }
    }

    /// Add `weight` at time `now` (decaying the stored value first).
    ///
    /// `now` must not precede the last update; trace time is
    /// monotone. (Debug-asserted: in release the decay factor would just
    /// exceed 1, inflating instead of corrupting.)
    #[inline]
    pub fn add(&mut self, rate: DecayRate, now: Nanos, weight: f64) {
        debug_assert!(now >= self.last, "time ran backwards: {now:?} < {:?}", self.last);
        self.value = self.peek(rate, now) + weight;
        self.last = now;
    }

    /// The decayed value as of `now`, without mutating.
    #[inline]
    pub fn peek(&self, rate: DecayRate, now: Nanos) -> f64 {
        if self.value == 0.0 {
            return 0.0;
        }
        let elapsed = if now >= self.last { now - self.last } else { TimeSpan::ZERO };
        self.value * rate.factor(elapsed)
    }

    /// The raw stored (un-decayed) value and its timestamp.
    pub fn raw(&self) -> (f64, Nanos) {
        (self.value, self.last)
    }

    /// Rebuild from a raw `(value, last)` pair — the deserialization
    /// surface, inverse of [`raw`](Self::raw). Both halves round-trip
    /// bit-exactly over the snapshot wire (shortest-form float
    /// rendering), so a restored counter decays, merges and peeks
    /// identically to the original.
    pub const fn from_raw(value: f64, last: Nanos) -> Self {
        DecayedCounter { value, last }
    }

    /// Fold another counter (same decay rate, disjoint arrivals) into
    /// this one: both values are decayed to the *later* of the two
    /// timestamps and summed. Exact — `C(t)` is a sum over arrivals, so
    /// partitioning the arrivals and merging commutes with decay.
    #[inline]
    pub fn merge(&mut self, rate: DecayRate, other: &Self) {
        let now = self.last.max(other.last);
        self.value = self.peek(rate, now) + other.peek(rate, now);
        self.last = now;
    }

    /// Reset to zero.
    pub fn clear(&mut self) {
        self.value = 0.0;
        self.last = Nanos::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_life_halves() {
        let rate = DecayRate::from_half_life(TimeSpan::from_secs(10));
        let mut c = DecayedCounter::new();
        c.add(rate, Nanos::ZERO, 100.0);
        let v = c.peek(rate, Nanos::from_secs(10));
        assert!((v - 50.0).abs() < 1e-9, "after one half-life: {v}");
        let v = c.peek(rate, Nanos::from_secs(20));
        assert!((v - 25.0).abs() < 1e-9, "after two half-lives: {v}");
    }

    #[test]
    fn rate_roundtrip() {
        let r = DecayRate::per_second(0.1);
        let hl = r.half_life();
        let r2 = DecayRate::from_half_life(hl);
        assert!((r.lambda() - r2.lambda()).abs() < 1e-9);
    }

    #[test]
    fn factor_limits() {
        let r = DecayRate::per_second(1.0);
        assert!((r.factor(TimeSpan::ZERO) - 1.0).abs() < 1e-12);
        assert!(r.factor(TimeSpan::from_secs(100)) < 1e-40);
    }

    #[test]
    fn steady_state_convergence() {
        // A flow adding 1.0 every 10 ms (rate 100/s) under λ = 2/s
        // should converge to ~50.
        let r = DecayRate::per_second(2.0);
        let mut c = DecayedCounter::new();
        let mut t = Nanos::ZERO;
        for _ in 0..10_000 {
            c.add(r, t, 1.0);
            t += TimeSpan::from_millis(10);
        }
        let v = c.peek(r, t);
        let expect = r.steady_state(100.0);
        assert!((v - expect).abs() / expect < 0.02, "steady state {v} should be near {expect}");
    }

    #[test]
    fn add_accumulates_at_same_instant() {
        let r = DecayRate::per_second(1.0);
        let mut c = DecayedCounter::new();
        c.add(r, Nanos::from_secs(1), 3.0);
        c.add(r, Nanos::from_secs(1), 4.0);
        assert!((c.peek(r, Nanos::from_secs(1)) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_counter_stays_zero() {
        let r = DecayRate::per_second(5.0);
        let c = DecayedCounter::new();
        assert_eq!(c.peek(r, Nanos::from_secs(1_000_000)), 0.0);
    }

    #[test]
    fn clear_resets() {
        let r = DecayRate::per_second(1.0);
        let mut c = DecayedCounter::new();
        c.add(r, Nanos::from_secs(1), 10.0);
        c.clear();
        assert_eq!(c.peek(r, Nanos::from_secs(2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lambda_rejected() {
        let _ = DecayRate::per_second(0.0);
    }
}
