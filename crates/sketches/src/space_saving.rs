//! The Space-Saving algorithm (Metwally, Agrawal, El Abbadi 2005).

use core::hash::Hash;
use std::collections::HashMap;

/// One monitored counter: the key, its (over-)estimate, and the maximum
/// possible overestimation it inherited when it displaced another key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsEntry<K> {
    /// The monitored key.
    pub key: K,
    /// Estimated frequency; an upper bound on the true frequency.
    pub count: u64,
    /// Maximum overestimation: `count − error` lower-bounds the truth.
    pub error: u64,
}

impl<K> SsEntry<K> {
    /// The guaranteed (lower-bound) frequency.
    pub fn guaranteed(&self) -> u64 {
        self.count - self.error
    }
}

/// Seed of the hash that breaks count ties during merge pruning.
/// Fixed so the kept set is identical across processes and hosts.
const MERGE_TIE_SEED: u64 = 0x55AA_71E5;

/// Space-Saving: monitors exactly `capacity` keys and guarantees, for a
/// stream of total weight `N`:
///
/// * every key with true frequency `> N / capacity` is monitored
///   (no false negatives above that threshold);
/// * for monitored keys, `count − error ≤ truth ≤ count`;
/// * the smallest monitored count is at most `N / capacity`.
///
/// Updates are O(log capacity) via an indexed binary min-heap (the
/// textbook "stream summary" linked-list achieves O(1) for unit
/// updates, but weighted updates — needed here because the paper counts
/// *bytes* — degrade it; the heap is the right structure for weighted
/// streams).
#[derive(Clone, Debug)]
pub struct SpaceSaving<K> {
    capacity: usize,
    /// Min-heap on `count`; `heap[0]` is the eviction victim.
    heap: Vec<SsEntry<K>>,
    /// key → current heap slot.
    slots: HashMap<K, usize>,
    total: u64,
}

impl<K: Hash + Eq + Copy> SpaceSaving<K> {
    /// A summary monitoring at most `capacity` keys. Panics if zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be non-zero");
        SpaceSaving {
            capacity,
            heap: Vec::with_capacity(capacity),
            slots: HashMap::with_capacity(capacity * 2),
            total: 0,
        }
    }

    /// Maximum number of monitored keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of monitored keys.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate heap footprint in bytes, for resource accounting.
    pub fn state_bytes(&self) -> usize {
        self.capacity
            * (core::mem::size_of::<SsEntry<K>>() + core::mem::size_of::<(K, usize)>() * 2)
    }

    /// Observe `weight` for `key`.
    pub fn update(&mut self, key: K, weight: u64) {
        self.total += weight;
        if let Some(&slot) = self.slots.get(&key) {
            self.heap[slot].count += weight;
            self.sift_down(slot);
        } else if self.heap.len() < self.capacity {
            self.heap.push(SsEntry { key, count: weight, error: 0 });
            let slot = self.heap.len() - 1;
            self.slots.insert(key, slot);
            self.sift_up(slot);
        } else {
            // Displace the minimum: the newcomer inherits its count as
            // error, preserving the upper/lower bound invariants.
            let victim = self.heap[0].key;
            self.slots.remove(&victim);
            let min = self.heap[0].count;
            self.heap[0] = SsEntry { key, count: min + weight, error: min };
            self.slots.insert(key, 0);
            self.sift_down(0);
        }
    }

    /// The estimate for a key, if monitored.
    pub fn estimate(&self, key: &K) -> Option<SsEntry<K>> {
        self.slots.get(key).map(|&slot| self.heap[slot])
    }

    /// The smallest monitored count (0 when not yet full): an upper
    /// bound on the frequency of *any* unmonitored key.
    pub fn min_count(&self) -> u64 {
        if self.heap.len() < self.capacity {
            0
        } else {
            self.heap[0].count
        }
    }

    /// All monitored entries, unordered.
    pub fn entries(&self) -> impl Iterator<Item = &SsEntry<K>> {
        self.heap.iter()
    }

    /// Entries whose estimate meets `threshold` (may include false
    /// positives, never misses a true heavy hitter).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<SsEntry<K>> {
        let mut out: Vec<_> = self.heap.iter().filter(|e| e.count >= threshold).copied().collect();
        out.sort_by_key(|e| core::cmp::Reverse(e.count));
        out
    }

    /// Entries *guaranteed* to meet `threshold` (`count − error ≥ t`);
    /// no false positives.
    pub fn guaranteed_heavy_hitters(&self, threshold: u64) -> Vec<SsEntry<K>> {
        let mut out: Vec<_> =
            self.heap.iter().filter(|e| e.guaranteed() >= threshold).copied().collect();
        out.sort_by_key(|e| core::cmp::Reverse(e.count));
        out
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.total = 0;
    }

    /// Merge another summary over a *disjoint* sub-stream into this
    /// one, following the mergeable-summaries recipe (Agarwal et al.,
    /// PODS 2012). Panics if capacities differ.
    ///
    /// For each key in the union, the merged count is the sum of the
    /// two summaries' estimates, where a summary that does not monitor
    /// the key contributes its `min_count` (an upper bound on what the
    /// key could have had there) to both count and error. The union is
    /// then pruned back to `capacity` by keeping the largest counts.
    ///
    /// Preserved invariants, now over the *combined* stream:
    /// * `count ≥ truth` and `count − error ≤ truth` for monitored keys;
    /// * any unmonitored key's truth is at most the merged `min_count`
    ///   (pruned keys had counts no larger than every kept count, and
    ///   keys monitored in neither summary are bounded by
    ///   `min_a + min_b`);
    /// * consequently every key with combined frequency above
    ///   `N / capacity` is still monitored.
    ///
    /// The merged result is a pure function of the two summaries'
    /// *entry sets* — prune ties are broken by a fixed key hash, never
    /// by internal heap order — so a summary restored from a snapshot
    /// (whose heap layout differs) merges to the identical result,
    /// which is what makes cross-process folds reproduce in-process
    /// merges bit-for-bit.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "SpaceSaving capacity mismatch");
        let min_a = self.min_count();
        let min_b = other.min_count();
        // Deterministic iteration: walk the heap vectors, not the
        // HashMaps (whose order is randomized per process).
        let mut merged: Vec<SsEntry<K>> = Vec::with_capacity(self.heap.len() + other.heap.len());
        for e in &self.heap {
            let m = match other.estimate(&e.key) {
                Some(o) => {
                    SsEntry { key: e.key, count: e.count + o.count, error: e.error + o.error }
                }
                None => SsEntry { key: e.key, count: e.count + min_b, error: e.error + min_b },
            };
            merged.push(m);
        }
        for o in &other.heap {
            if self.slots.contains_key(&o.key) {
                continue; // already folded in above
            }
            merged.push(SsEntry { key: o.key, count: o.count + min_a, error: o.error + min_a });
        }
        // Keep the `capacity` largest counts. Ties at the prune
        // boundary resolve by a fixed hash of the key, so the kept set
        // does not depend on heap layout (see the doc comment).
        merged.sort_by_key(|e| {
            (core::cmp::Reverse(e.count), crate::hash::hash_of(&e.key, MERGE_TIE_SEED))
        });
        merged.truncate(self.capacity);
        self.total += other.total;
        self.rebuild(merged);
    }

    /// The monitored entries as sorted, self-describing rows — the
    /// serialization surface of the summary. Rows are sorted by the
    /// key's rendering via `key_text`, so equal summaries (as sets)
    /// export identical rows regardless of internal heap order.
    pub fn export_entries(&self, key_text: impl Fn(&K) -> String) -> Vec<(String, SsEntry<K>)> {
        let mut rows: Vec<(String, SsEntry<K>)> =
            self.heap.iter().map(|e| (key_text(&e.key), *e)).collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Rebuild a summary from exported parts (the deserialization
    /// surface; inverse of [`export_entries`](Self::export_entries)
    /// plus [`total`](Self::total)).
    ///
    /// Panics if the entries exceed `capacity`, contain duplicate
    /// keys, or violate `error ≤ count` — wire-level validation
    /// belongs to the caller (the snapshot codec in `hhh-core` returns
    /// typed errors before calling this).
    pub fn from_parts(capacity: usize, total: u64, entries: Vec<SsEntry<K>>) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be non-zero");
        assert!(entries.len() <= capacity, "more entries than capacity");
        assert!(entries.iter().all(|e| e.error <= e.count), "error exceeds count");
        let mut ss = SpaceSaving {
            capacity,
            heap: Vec::with_capacity(capacity),
            slots: HashMap::with_capacity(capacity * 2),
            total,
        };
        ss.rebuild(entries);
        assert_eq!(ss.heap.len(), ss.slots.len(), "duplicate keys in entries");
        ss
    }

    /// Replace the heap contents wholesale and restore the heap and
    /// slot-map invariants.
    fn rebuild(&mut self, entries: Vec<SsEntry<K>>) {
        self.heap = entries;
        self.slots.clear();
        for (i, e) in self.heap.iter().enumerate() {
            self.slots.insert(e.key, i);
        }
        // Bottom-up heapify (sift_down keeps the slot map in sync).
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.heap[parent].count <= self.heap[slot].count {
                break;
            }
            self.swap_slots(parent, slot);
            slot = parent;
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let l = slot * 2 + 1;
            let r = slot * 2 + 2;
            let mut smallest = slot;
            if l < self.heap.len() && self.heap[l].count < self.heap[smallest].count {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r].count < self.heap[smallest].count {
                smallest = r;
            }
            if smallest == slot {
                break;
            }
            self.swap_slots(slot, smallest);
            slot = smallest;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        *self.slots.get_mut(&self.heap[a].key).expect("slot map out of sync") = a;
        *self.slots.get_mut(&self.heap[b].key).expect("slot map out of sync") = b;
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        assert!(self.heap.len() <= self.capacity);
        assert_eq!(self.heap.len(), self.slots.len());
        for (i, e) in self.heap.iter().enumerate() {
            assert_eq!(self.slots[&e.key], i, "slot map mismatch at {i}");
            if i > 0 {
                let parent = (i - 1) / 2;
                assert!(
                    self.heap[parent].count <= e.count,
                    "heap violated at {i}: parent {} > child {}",
                    self.heap[parent].count,
                    e.count
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::<u64>::new(10);
        for (k, w) in [(1u64, 5u64), (2, 3), (1, 2), (3, 9)] {
            ss.update(k, w);
        }
        assert_eq!(ss.estimate(&1).unwrap().count, 7);
        assert_eq!(ss.estimate(&1).unwrap().error, 0);
        assert_eq!(ss.estimate(&3).unwrap().count, 9);
        assert_eq!(ss.min_count(), 0);
        ss.check_invariants();
    }

    #[test]
    fn bounds_hold_under_eviction() {
        let mut ss = SpaceSaving::<u64>::new(8);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // Skewed stream over 100 keys.
        for i in 0..10_000u64 {
            let k = i % 100;
            let w = if k < 3 { 50 } else { 1 };
            ss.update(k, w);
            *truth.entry(k).or_default() += w;
        }
        ss.check_invariants();
        let n = ss.total();
        assert_eq!(n, truth.values().sum::<u64>());
        // min_count ≤ N / capacity.
        assert!(ss.min_count() <= n / 8);
        // Monitored keys: count bounds the truth from above, count−error
        // from below.
        for e in ss.entries() {
            let t = truth[&e.key];
            assert!(e.count >= t, "count {} < truth {} for {}", e.count, t, e.key);
            assert!(
                e.guaranteed() <= t,
                "guarantee {} > truth {} for {}",
                e.guaranteed(),
                t,
                e.key
            );
        }
        // Every key above N/capacity is monitored.
        for (k, t) in &truth {
            if *t > n / 8 {
                assert!(ss.estimate(k).is_some(), "heavy key {k} evicted");
            }
        }
    }

    #[test]
    fn heavy_hitters_ordering_and_guarantee() {
        let mut ss = SpaceSaving::<u64>::new(4);
        for _ in 0..100 {
            ss.update(1, 10);
            ss.update(2, 5);
        }
        for i in 0..50u64 {
            ss.update(100 + i, 1);
        }
        let hh = ss.heavy_hitters(400);
        assert!(hh.len() >= 2);
        assert_eq!(hh[0].key, 1);
        assert!(hh[0].count >= hh[1].count);
        let ghh = ss.guaranteed_heavy_hitters(400);
        assert!(ghh.iter().all(|e| e.guaranteed() >= 400));
    }

    #[test]
    fn clear_empties() {
        let mut ss = SpaceSaving::<u64>::new(2);
        ss.update(1, 1);
        assert!(!ss.is_empty());
        ss.clear();
        assert!(ss.is_empty());
        assert_eq!(ss.total(), 0);
        assert_eq!(ss.len(), 0);
    }

    #[test]
    fn capacity_one_tracks_majority() {
        let mut ss = SpaceSaving::<u64>::new(1);
        for i in 0..99u64 {
            ss.update(i % 3, 1);
        }
        ss.update(7, 1);
        assert_eq!(ss.len(), 1);
        // Whatever is monitored, count == total (each eviction inherits
        // everything).
        assert_eq!(ss.entries().next().unwrap().count, 100);
        ss.check_invariants();
    }

    #[test]
    fn merge_under_capacity_is_exact() {
        let mut a = SpaceSaving::<u64>::new(16);
        let mut b = SpaceSaving::<u64>::new(16);
        for (k, w) in [(1u64, 5u64), (2, 3), (3, 9)] {
            a.update(k, w);
        }
        for (k, w) in [(2u64, 7u64), (4, 2)] {
            b.update(k, w);
        }
        a.merge(&b);
        a.check_invariants();
        assert_eq!(a.total(), 26);
        assert_eq!(a.estimate(&1).unwrap().count, 5);
        assert_eq!(a.estimate(&2).unwrap().count, 10);
        assert_eq!(a.estimate(&2).unwrap().error, 0);
        assert_eq!(a.estimate(&4).unwrap().count, 2);
    }

    #[test]
    fn export_and_from_parts_roundtrip() {
        let mut ss = SpaceSaving::<u64>::new(4);
        for i in 0..500u64 {
            ss.update(i % 9, 1 + i % 5);
        }
        let rows = ss.export_entries(|k| k.to_string());
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "rows must be sorted");
        let back = SpaceSaving::from_parts(
            ss.capacity(),
            ss.total(),
            rows.iter().map(|(_, e)| *e).collect(),
        );
        back.check_invariants();
        assert_eq!(back.total(), ss.total());
        assert_eq!(back.len(), ss.len());
        for e in ss.entries() {
            assert_eq!(back.estimate(&e.key), Some(*e));
        }
        // The restored summary exports identically (set-determined).
        assert_eq!(back.export_entries(|k| k.to_string()), rows);
    }

    #[test]
    fn merge_is_heap_order_independent() {
        // Restored summaries have a different heap layout than the
        // originals; merging either must keep the same entry set.
        let mut a = SpaceSaving::<u64>::new(3);
        let mut b = SpaceSaving::<u64>::new(3);
        for i in 0..200u64 {
            a.update(i % 7, 1);
            b.update((i + 3) % 11, 1);
        }
        let a2 = SpaceSaving::from_parts(
            3,
            a.total(),
            a.export_entries(|k| k.to_string()).into_iter().map(|(_, e)| e).collect(),
        );
        let mut m1 = a.clone();
        m1.merge(&b);
        let mut m2 = a2;
        m2.merge(&b);
        assert_eq!(
            m1.export_entries(|k| k.to_string()),
            m2.export_entries(|k| k.to_string()),
            "merge result must not depend on heap layout"
        );
    }

    #[test]
    #[should_panic(expected = "more entries than capacity")]
    fn from_parts_rejects_overfull() {
        let entries = (0..5u64).map(|k| SsEntry { key: k, count: 1, error: 0 }).collect::<Vec<_>>();
        let _ = SpaceSaving::from_parts(4, 5, entries);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_rejects_capacity_mismatch() {
        let mut a = SpaceSaving::<u64>::new(4);
        let b = SpaceSaving::<u64>::new(8);
        a.merge(&b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Split a random stream at an arbitrary point, summarize the
        /// halves separately, merge — the Space-Saving contract must
        /// hold for the merged summary over the whole stream.
        #[test]
        fn merge_preserves_contract(
            ops in prop::collection::vec((0u64..60, 1u64..20), 2..2000),
            cap in 1usize..32,
            split_num in 0u64..1000,
        ) {
            let split = (split_num as usize * ops.len() / 1000).min(ops.len());
            let mut a = SpaceSaving::<u64>::new(cap);
            let mut b = SpaceSaving::<u64>::new(cap);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (i, &(k, w)) in ops.iter().enumerate() {
                if i < split { a.update(k, w) } else { b.update(k, w) }
                *truth.entry(k).or_default() += w;
            }
            a.merge(&b);
            a.check_invariants();
            let n: u64 = truth.values().sum();
            prop_assert_eq!(a.total(), n);
            for e in a.entries() {
                let t = truth[&e.key];
                prop_assert!(e.count >= t, "count {} < truth {} for {}", e.count, t, e.key);
                prop_assert!(e.guaranteed() <= t, "guarantee {} > truth {}", e.guaranteed(), t);
            }
            // No key above N/capacity may be lost by the merge.
            for (k, t) in &truth {
                if *t > n / cap as u64 {
                    prop_assert!(a.estimate(k).is_some(), "heavy key {} lost in merge", k);
                }
            }
        }

        #[test]
        fn invariants_hold_on_random_streams(
            ops in prop::collection::vec((0u64..50, 1u64..20), 1..2000),
            cap in 1usize..32,
        ) {
            let mut ss = SpaceSaving::<u64>::new(cap);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, w) in ops {
                ss.update(k, w);
                *truth.entry(k).or_default() += w;
            }
            ss.check_invariants();
            let n: u64 = truth.values().sum();
            prop_assert_eq!(ss.total(), n);
            prop_assert!(ss.min_count() <= n / cap as u64 + 1);
            for e in ss.entries() {
                let t = truth[&e.key];
                prop_assert!(e.count >= t);
                prop_assert!(e.guaranteed() <= t);
            }
            for (k, t) in &truth {
                if *t > n / cap as u64 {
                    prop_assert!(ss.estimate(k).is_some());
                }
            }
        }
    }
}
