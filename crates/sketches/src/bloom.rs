//! The classic Bloom filter (Bloom 1970).

use crate::hash::{hash_of, reduce, seed_sequence};
use core::hash::Hash;
use core::marker::PhantomData;

/// A Bloom filter over `m` bits with `k` hash functions.
///
/// Present here both as a substrate in its own right and as the
/// structural parent of the time-decaying filters ([`crate::OnDemandTdbf`]) —
/// the paper's §3 proposal replaces these bits with decaying cells but
/// keeps the k-hash addressing scheme.
#[derive(Clone, Debug)]
pub struct BloomFilter<K> {
    bits: Vec<u64>,
    m: usize,
    seeds: Vec<u64>,
    inserted: u64,
    _key: PhantomData<K>,
}

impl<K: Hash + Eq> BloomFilter<K> {
    /// A filter with `m` bits and `k` hashes. Panics if either is zero.
    pub fn new(m: usize, k: usize, seed: u64) -> Self {
        assert!(m > 0 && k > 0, "BloomFilter parameters must be non-zero");
        BloomFilter {
            bits: vec![0u64; m.div_ceil(64)],
            m,
            seeds: seed_sequence(seed, k),
            inserted: 0,
            _key: PhantomData,
        }
    }

    /// Size the filter for `n` expected insertions at false-positive
    /// probability `fpp` (standard optimal sizing:
    /// `m = −n·ln(fpp)/ln²2`, `k = (m/n)·ln 2`).
    pub fn for_capacity(n: usize, fpp: f64, seed: u64) -> Self {
        assert!(n > 0, "capacity must be non-zero");
        assert!(fpp > 0.0 && fpp < 1.0, "fpp must be in (0,1)");
        let ln2 = core::f64::consts::LN_2;
        let m = (-(n as f64) * fpp.ln() / (ln2 * ln2)).ceil() as usize;
        let k = ((m as f64 / n as f64) * ln2).round().max(1.0) as usize;
        Self::new(m.max(64), k, seed)
    }

    /// Number of bits.
    pub fn bit_len(&self) -> usize {
        self.m
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> usize {
        self.seeds.len()
    }

    /// Number of insert calls so far (not distinct keys).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Heap footprint of the bit array in bytes.
    pub fn state_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &K) {
        self.inserted += 1;
        for i in 0..self.seeds.len() {
            let b = reduce(hash_of(key, self.seeds[i]), self.m);
            self.bits[b / 64] |= 1u64 << (b % 64);
        }
    }

    /// Membership test: `false` is definite, `true` may be a false
    /// positive.
    pub fn contains(&self, key: &K) -> bool {
        (0..self.seeds.len()).all(|i| {
            let b = reduce(hash_of(key, self.seeds[i]), self.m);
            self.bits[b / 64] & (1u64 << (b % 64)) != 0
        })
    }

    /// Fraction of set bits (the fill factor; fpp ≈ fill^k).
    pub fn fill_factor(&self) -> f64 {
        let ones: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        ones as f64 / self.m as f64
    }

    /// Predicted false-positive probability at the current fill.
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_factor().powi(self.seeds.len() as i32)
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::<u64>::for_capacity(1000, 0.01, 3);
        for i in 0..1000u64 {
            bf.insert(&i);
        }
        for i in 0..1000u64 {
            assert!(bf.contains(&i), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut bf = BloomFilter::<u64>::for_capacity(10_000, 0.01, 9);
        for i in 0..10_000u64 {
            bf.insert(&i);
        }
        let fp = (10_000..110_000u64).filter(|i| bf.contains(i)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "fpp {rate} far above 1% target");
        // Analytic estimate should be in the same ballpark.
        assert!((bf.estimated_fpp() - rate).abs() < 0.02);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::<u64>::new(1024, 4, 0);
        assert!(!bf.contains(&1));
        assert_eq!(bf.fill_factor(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::<u64>::new(256, 3, 1);
        bf.insert(&42);
        assert!(bf.contains(&42));
        bf.clear();
        assert!(!bf.contains(&42));
        assert_eq!(bf.inserted(), 0);
    }

    #[test]
    fn sizing_formula() {
        let bf = BloomFilter::<u64>::for_capacity(1000, 0.01, 0);
        // ~9.6 bits per element at 1% fpp.
        assert!(bf.bit_len() >= 9_000 && bf.bit_len() <= 11_000, "m = {}", bf.bit_len());
        assert!(bf.hashes() >= 6 && bf.hashes() <= 8, "k = {}", bf.hashes());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = BloomFilter::<u64>::new(128, 2, 1);
        let mut b = BloomFilter::<u64>::new(128, 2, 2);
        a.insert(&7);
        b.insert(&7);
        // Same key lights different bits under different seeds (with
        // overwhelming probability for these sizes).
        assert_ne!(a.bits, b.bits);
    }
}
