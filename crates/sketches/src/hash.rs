//! Seeded, deterministic hashing for sketches.
//!
//! Sketch quality rests on hash quality, and experiment reproducibility
//! rests on hash determinism. `std`'s `DefaultHasher` is neither seedable
//! in a stable way nor guaranteed stable across releases, so this module
//! provides its own primitives:
//!
//! * [`mix64`] — SplitMix64's finalizer: a fast, full-avalanche bijection
//!   on `u64`. The workhorse for integer keys.
//! * [`SeededHasher`] — a seedable `core::hash::Hasher` (FxHash-style
//!   compression, `mix64` finalization) for arbitrary `Hash` keys.
//! * [`hash_of`] — convenience: hash any `Hash` value under a seed.
//! * [`seed_sequence`] — derive `n` independent row seeds from one master
//!   seed (SplitMix64 stream), used by multi-row sketches.

use core::hash::{Hash, Hasher};

/// SplitMix64 finalizer: bijective, full avalanche, ~3 ns.
///
/// Used directly on integer keys and as the finalizer of
/// [`SeededHasher`].
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derive `n` decorrelated seeds from a master seed.
///
/// Sketches with `d` rows call this once at construction to give every
/// row an independent hash function.
pub fn seed_sequence(master: u64, n: usize) -> Vec<u64> {
    let mut state = master;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64(state)
        })
        .collect()
}

/// A seedable streaming hasher: FxHash-style multiply-xor compression
/// with a [`mix64`] finalizer for avalanche.
///
/// Deterministic across runs and platforms for the same seed and input
/// (inputs are consumed in 8-byte little-endian chunks).
#[derive(Clone, Copy, Debug)]
pub struct SeededHasher {
    state: u64,
}

const ROTATE: u32 = 5;
const FX_SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

impl SeededHasher {
    /// Start hashing with a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SeededHasher { state: seed }
    }

    #[inline]
    fn push(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for SeededHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.push(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Length-tag the tail so "ab" and "ab\0" differ.
            buf[7] = rem.len() as u8;
            self.push(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.push(i as u64 | 0x100);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.push(i as u64 | 0x1_0000);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.push(i as u64 | 0x1_0000_0000);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.push(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.push(i as u64);
        self.push((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.push(i as u64);
    }
}

/// Hash any `Hash` value under a seed.
#[inline]
pub fn hash_of<K: Hash + ?Sized>(key: &K, seed: u64) -> u64 {
    let mut h = SeededHasher::new(seed);
    key.hash(&mut h);
    h.finish()
}

/// Map a 64-bit hash onto `0..buckets` without modulo bias
/// (Lemire's multiply-shift reduction).
#[inline]
pub const fn reduce(hash: u64, buckets: usize) -> usize {
    (((hash as u128) * (buckets as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip roughly half the output
        // bits. Demand at least 24 of 64 on average (real figure ~32).
        let mut total = 0u32;
        let trials = 256;
        for i in 0..trials {
            let v = (i as u64).wrapping_mul(0x1234_5678_9ABC_DEF1);
            total += (mix64(v) ^ mix64(v ^ 1)).count_ones();
        }
        let avg = total as f64 / trials as f64;
        assert!(avg > 24.0, "weak avalanche: {avg}");
    }

    #[test]
    fn seeds_change_everything() {
        assert_ne!(hash_of(&42u64, 1), hash_of(&42u64, 2));
        assert_ne!(hash_of("hello", 1), hash_of("hello", 2));
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(&(1u32, 2u32), 7), hash_of(&(1u32, 2u32), 7));
        assert_eq!(hash_of("abc", 9), hash_of("abc", 9));
    }

    #[test]
    fn tail_bytes_are_length_tagged() {
        let mut a = SeededHasher::new(0);
        a.write(b"ab");
        let mut b = SeededHasher::new(0);
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn seed_sequence_is_pairwise_distinct() {
        let seeds = seed_sequence(0xDEADBEEF, 64);
        let set: HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 64);
        // And differs for different masters.
        assert_ne!(seed_sequence(1, 4), seed_sequence(2, 4));
    }

    #[test]
    fn reduce_is_in_range_and_spreads() {
        let buckets = 1000;
        let mut counts = vec![0u32; buckets];
        for i in 0..100_000u64 {
            let b = reduce(mix64(i), buckets);
            assert!(b < buckets);
            counts[b] += 1;
        }
        // Each bucket expects 100; allow generous slack.
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*min > 40 && *max < 200, "poor spread: min={min} max={max}");
    }

    #[test]
    fn u128_and_primitive_writes() {
        // Smoke-check the specialized write_* paths produce distinct
        // hashes for distinct values.
        assert_ne!(hash_of(&1u8, 0), hash_of(&2u8, 0));
        assert_ne!(hash_of(&1u16, 0), hash_of(&2u16, 0));
        assert_ne!(hash_of(&1u32, 0), hash_of(&2u32, 0));
        assert_ne!(hash_of(&1u128, 0), hash_of(&(1u128 << 64), 0));
    }
}
