//! Frame-based sliding-window frequent items, in the spirit of WCSS
//! (Ben-Basat, Einziger, Friedman, Kassner, "Heavy hitters in streams
//! and sliding windows", INFOCOM 2016 — the paper's reference [1]).
//!
//! The window covers the most recent `W` *items*. The stream is cut into
//! frames of `⌈W/frames⌉` items; each frame gets its own Misra-Gries
//! summary, and a query sums a key's estimates over the summaries that
//! overlap the window. Two error sources, both bounded and both reported
//! by [`SlidingWindowSummary::error_bound`]:
//!
//! * per-frame Misra-Gries undercount, at most `frame_len/(k+1)` per
//!   frame;
//! * window granularity: the oldest frame may straddle the window edge,
//!   contributing up to `frame_len` items that are older than `W`.
//!
//! This is a simplification of WCSS proper (which shares one compact
//! structure across frames to save space); the frame decomposition and
//! the error structure are the same, the constant in front of the space
//! is not. The simplification is documented here deliberately — it keeps
//! the code reviewable while exercising the identical algorithmic idea.

use crate::misra_gries::MisraGries;
use core::hash::Hash;
use std::collections::VecDeque;

/// Sliding-window frequent-items summary over the last `W` items.
#[derive(Clone, Debug)]
pub struct SlidingWindowSummary<K> {
    window: usize,
    frame_len: usize,
    counters_per_frame: usize,
    /// Newest frame at the back. Holds up to `frames + 1` summaries so
    /// that the window is always covered.
    frames: VecDeque<MisraGries<K>>,
    in_current: usize,
    items_seen: u64,
}

impl<K: Hash + Eq + Copy> SlidingWindowSummary<K> {
    /// A summary over a window of `window` items, split into `frames`
    /// frames, with `counters_per_frame` Misra-Gries counters each.
    /// Panics if any parameter is zero or `frames > window`.
    pub fn new(window: usize, frames: usize, counters_per_frame: usize) -> Self {
        assert!(window > 0 && frames > 0 && counters_per_frame > 0, "parameters must be non-zero");
        assert!(frames <= window, "cannot have more frames than window items");
        let frame_len = window.div_ceil(frames);
        let mut dq = VecDeque::with_capacity(frames + 2);
        dq.push_back(MisraGries::new(counters_per_frame));
        SlidingWindowSummary {
            window,
            frame_len,
            counters_per_frame,
            frames: dq,
            in_current: 0,
            items_seen: 0,
        }
    }

    /// The window length in items.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Items per frame.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Total items observed (not just those in the window).
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Observe one item (sliding windows in the WCSS model are
    /// item-counted, so updates are unweighted).
    pub fn insert(&mut self, key: K) {
        self.items_seen += 1;
        self.frames.back_mut().expect("at least one frame").update(key, 1);
        self.in_current += 1;
        if self.in_current == self.frame_len {
            self.frames.push_back(MisraGries::new(self.counters_per_frame));
            self.in_current = 0;
            let max_frames = self.window.div_ceil(self.frame_len) + 1;
            while self.frames.len() > max_frames {
                self.frames.pop_front();
            }
        }
    }

    /// Estimated occurrences of `key` in the last `window` items
    /// (undercount, like Misra-Gries; see [`Self::error_bound`]).
    pub fn estimate(&self, key: &K) -> u64 {
        self.frames.iter().map(|f| f.estimate(key)).sum()
    }

    /// The maximum by which [`Self::estimate`] can deviate from the true
    /// windowed count, in either direction.
    pub fn error_bound(&self) -> u64 {
        let mg_under = (self.frames.len() as u64) * (self.frame_len as u64)
            / (self.counters_per_frame as u64 + 1);
        let granularity_over = self.frame_len as u64;
        mg_under.max(granularity_over)
    }

    /// Keys whose windowed estimate meets `threshold`, descending by
    /// count (ties broken by key for reproducible output).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        let mut acc: std::collections::HashMap<K, u64> = Default::default();
        for f in &self.frames {
            for (k, c) in f.entries() {
                *acc.entry(*k).or_default() += c;
            }
        }
        let mut out: Vec<_> = acc.into_iter().filter(|(_, c)| *c >= threshold).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0).reverse()));
        out
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.frames.push_back(MisraGries::new(self.counters_per_frame));
        self.in_current = 0;
        self.items_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque as Dq;

    /// Exact sliding-window counter for cross-checking.
    struct ExactWindow {
        window: usize,
        items: Dq<u64>,
    }

    impl ExactWindow {
        fn new(window: usize) -> Self {
            ExactWindow { window, items: Dq::new() }
        }
        fn insert(&mut self, k: u64) {
            self.items.push_back(k);
            if self.items.len() > self.window {
                self.items.pop_front();
            }
        }
        fn count(&self, k: u64) -> u64 {
            self.items.iter().filter(|&&x| x == k).count() as u64
        }
    }

    #[test]
    fn tracks_windowed_counts_within_bound() {
        let window = 1000;
        let mut s = SlidingWindowSummary::<u64>::new(window, 10, 50);
        let mut exact = ExactWindow::new(window);
        // Phase 1: key 1 dominates. Phase 2: key 2 takes over.
        for i in 0..3000u64 {
            let k = if i < 1500 {
                if i % 2 == 0 {
                    1
                } else {
                    i
                }
            } else if i % 2 == 0 {
                2
            } else {
                i
            };
            s.insert(k);
            exact.insert(k);
        }
        let bound = s.error_bound() + s.frame_len() as u64;
        for k in [1u64, 2] {
            let est = s.estimate(&k);
            let t = exact.count(k);
            assert!(est.abs_diff(t) <= bound, "key {k}: est {est} truth {t} bound {bound}");
        }
        // Key 1 has left the window almost entirely.
        assert!(s.estimate(&1) <= bound);
        // Key 2 is the current heavy hitter.
        let hh = s.heavy_hitters(window as u64 / 4);
        assert_eq!(hh.first().map(|e| e.0), Some(2));
    }

    #[test]
    fn old_traffic_expires() {
        let mut s = SlidingWindowSummary::<u64>::new(100, 5, 10);
        for _ in 0..100 {
            s.insert(7);
        }
        assert!(s.estimate(&7) >= 80);
        for i in 0..200u64 {
            s.insert(1000 + i % 7);
        }
        assert_eq!(s.estimate(&7), 0, "key 7 should have aged out completely");
    }

    #[test]
    fn frame_rotation_keeps_coverage() {
        let mut s = SlidingWindowSummary::<u64>::new(10, 2, 5);
        assert_eq!(s.frame_len(), 5);
        for i in 0..37u64 {
            s.insert(i % 3);
        }
        assert_eq!(s.items_seen(), 37);
        // Never more than frames+1 = 3 summaries.
        assert!(s.frames.len() <= 3, "frames = {}", s.frames.len());
    }

    #[test]
    fn clear_resets() {
        let mut s = SlidingWindowSummary::<u64>::new(10, 2, 5);
        for _ in 0..20 {
            s.insert(1);
        }
        s.clear();
        assert_eq!(s.estimate(&1), 0);
        assert_eq!(s.items_seen(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = SlidingWindowSummary::<u64>::new(0, 1, 1);
    }
}
