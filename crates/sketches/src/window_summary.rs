//! Frame-based sliding-window frequent items, in the spirit of WCSS
//! (Ben-Basat, Einziger, Friedman, Kassner, "Heavy hitters in streams
//! and sliding windows", INFOCOM 2016 — the paper's reference [1]).
//!
//! The window covers the most recent `W` *items*. The stream is cut into
//! frames of `⌈W/frames⌉` items; each frame gets its own Misra-Gries
//! summary, and a query sums a key's estimates over the summaries that
//! overlap the window. Two error sources, both bounded and both reported
//! by [`SlidingWindowSummary::error_bound`]:
//!
//! * per-frame Misra-Gries undercount, at most `frame_len/(k+1)` per
//!   frame;
//! * window granularity: the oldest frame may straddle the window edge,
//!   contributing up to `frame_len` items that are older than `W`.
//!
//! This is a simplification of WCSS proper (which shares one compact
//! structure across frames to save space); the frame decomposition and
//! the error structure are the same, the constant in front of the space
//! is not. The simplification is documented here deliberately — it keeps
//! the code reviewable while exercising the identical algorithmic idea.
//!
//! [`SlidingSummary`] is the hot-path successor: one shared counter
//! table in the spirit of Memento (Ben Basat, Einziger, Friedman,
//! Luizelli, Waisbard, CoNEXT 2018), where each counter carries
//! per-frame sub-counts stamped with their frame number and window
//! expiry happens *lazily* — a frame boundary is a single global
//! counter bump, never a scan, and stale sub-counts are skipped at
//! query time and reclaimed the next time their counter is touched.

use crate::misra_gries::MisraGries;
use core::hash::Hash;
use std::collections::{HashMap, VecDeque};

/// Sliding-window frequent-items summary over the last `W` items.
#[derive(Clone, Debug)]
pub struct SlidingWindowSummary<K> {
    window: usize,
    frame_len: usize,
    counters_per_frame: usize,
    /// Newest frame at the back. Holds up to `frames + 1` summaries so
    /// that the window is always covered.
    frames: VecDeque<MisraGries<K>>,
    in_current: usize,
    items_seen: u64,
}

impl<K: Hash + Eq + Copy> SlidingWindowSummary<K> {
    /// A summary over a window of `window` items, split into `frames`
    /// frames, with `counters_per_frame` Misra-Gries counters each.
    /// Panics if any parameter is zero or `frames > window`.
    pub fn new(window: usize, frames: usize, counters_per_frame: usize) -> Self {
        assert!(window > 0 && frames > 0 && counters_per_frame > 0, "parameters must be non-zero");
        assert!(frames <= window, "cannot have more frames than window items");
        let frame_len = window.div_ceil(frames);
        let mut dq = VecDeque::with_capacity(frames + 2);
        dq.push_back(MisraGries::new(counters_per_frame));
        SlidingWindowSummary {
            window,
            frame_len,
            counters_per_frame,
            frames: dq,
            in_current: 0,
            items_seen: 0,
        }
    }

    /// The window length in items.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Items per frame.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Total items observed (not just those in the window).
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Observe one item (sliding windows in the WCSS model are
    /// item-counted, so updates are unweighted).
    pub fn insert(&mut self, key: K) {
        self.items_seen += 1;
        self.frames.back_mut().expect("at least one frame").update(key, 1);
        self.in_current += 1;
        if self.in_current == self.frame_len {
            self.frames.push_back(MisraGries::new(self.counters_per_frame));
            self.in_current = 0;
            let max_frames = self.window.div_ceil(self.frame_len) + 1;
            while self.frames.len() > max_frames {
                self.frames.pop_front();
            }
        }
    }

    /// Estimated occurrences of `key` in the last `window` items
    /// (undercount, like Misra-Gries; see [`Self::error_bound`]).
    pub fn estimate(&self, key: &K) -> u64 {
        self.frames.iter().map(|f| f.estimate(key)).sum()
    }

    /// The maximum by which [`Self::estimate`] can deviate from the true
    /// windowed count, in either direction.
    pub fn error_bound(&self) -> u64 {
        let mg_under = (self.frames.len() as u64) * (self.frame_len as u64)
            / (self.counters_per_frame as u64 + 1);
        let granularity_over = self.frame_len as u64;
        mg_under.max(granularity_over)
    }

    /// Keys whose windowed estimate meets `threshold`, descending by
    /// count (ties broken by key for reproducible output).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        let mut acc: std::collections::HashMap<K, u64> = Default::default();
        for f in &self.frames {
            for (k, c) in f.entries() {
                *acc.entry(*k).or_default() += c;
            }
        }
        let mut out: Vec<_> = acc.into_iter().filter(|(_, c)| *c >= threshold).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0).reverse()));
        out
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.frames.push_back(MisraGries::new(self.counters_per_frame));
        self.in_current = 0;
        self.items_seen = 0;
    }
}

/// One per-frame sub-count of a tracked key, stamped with the frame it
/// belongs to. A sub-count is *live* when its frame is within the
/// retained span; anything older is ignored at query time and
/// overwritten the next time its ring slot is reused.
#[derive(Clone, Copy, Debug, Default)]
struct FrameCount {
    frame: u64,
    count: u64,
}

#[derive(Clone, Debug)]
struct SlidingEntry<K> {
    key: K,
    /// Sub-count for frame `f` lives at slot `f % ring.len()`.
    ring: Box<[FrameCount]>,
}

/// Memento-style sliding-window frequent-items summary: O(1) updates,
/// query-time expiry.
///
/// Same window model as [`SlidingWindowSummary`] (last `window` items,
/// cut into frames of `⌈window/frames⌉` items, the oldest retained
/// frame may straddle the window edge) and the *same retained frame
/// span*, but a different execution strategy:
///
/// * **One shared table** of `capacity` keys instead of per-frame
///   summaries; each tracked key carries a ring of per-frame sub-counts
///   stamped with their frame number.
/// * **O(1) update**: a hit increments one ring slot; a frame boundary
///   bumps one global counter (no scan, no allocation, no frame
///   rotation). Only a miss against a full table pays more — the
///   Misra-Gries global decrement, O(capacity × frames) but amortized
///   O(1) because each decrement pass consumes at least `capacity + 1`
///   units of retained mass.
/// * **Query-time expiry**: nothing is evicted when the window slides;
///   estimates simply skip sub-counts whose frame has left the retained
///   span, and a stale slot is reclaimed when its ring position is next
///   written.
///
/// Estimates are under-estimates, like Misra-Gries: each per-frame
/// sub-count never exceeds the key's true count in that frame, so any
/// window sum never exceeds the frame-aligned truth. With `capacity` at
/// least the number of distinct keys in the retained span the summary
/// is exact per frame and agrees with [`SlidingWindowSummary`]
/// estimate-for-estimate (pinned by tests).
#[derive(Clone, Debug)]
pub struct SlidingSummary<K> {
    window: usize,
    frame_len: usize,
    capacity: usize,
    /// Retained frames: `(cur_frame - ring_len, cur_frame]`, matching
    /// [`SlidingWindowSummary`]'s `frames + 1` retained summaries.
    ring_len: usize,
    cur_frame: u64,
    in_current: usize,
    items_seen: u64,
    /// Total mass removed by decrement passes (error accounting).
    decremented: u64,
    slots: HashMap<K, usize>,
    entries: Vec<SlidingEntry<K>>,
}

impl<K: Hash + Eq + Copy> SlidingSummary<K> {
    /// A summary over a window of `window` items, split into `frames`
    /// frames, tracking at most `capacity` keys. Panics if any
    /// parameter is zero or `frames > window`.
    pub fn new(window: usize, frames: usize, capacity: usize) -> Self {
        assert!(window > 0 && frames > 0 && capacity > 0, "parameters must be non-zero");
        assert!(frames <= window, "cannot have more frames than window items");
        let frame_len = window.div_ceil(frames);
        SlidingSummary {
            window,
            frame_len,
            capacity,
            ring_len: window.div_ceil(frame_len) + 1,
            cur_frame: 0,
            in_current: 0,
            items_seen: 0,
            decremented: 0,
            slots: HashMap::with_capacity(capacity + 1),
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The window length in items.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Items per frame.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Maximum number of tracked keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total items observed (not just those in the window).
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Currently tracked keys (live or awaiting lazy reclamation).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Observe one item. The window is item-counted (as in WCSS), so
    /// the plain insert is unweighted.
    #[inline]
    pub fn insert(&mut self, key: K) {
        self.insert_weighted(key, 1);
    }

    /// Observe one item carrying `weight` units of mass (e.g. bytes).
    /// The window still slides by *items*: one insert advances the
    /// window by one position regardless of weight.
    #[inline]
    pub fn insert_weighted(&mut self, key: K, weight: u64) {
        self.items_seen += 1;
        self.add_mass(key, weight);
        self.in_current += 1;
        // Frame boundary: one global bump, no scan — the frame sliding
        // out of the retained span expires lazily at query time. The
        // bump happens as the frame *fills* (not on the next insert) so
        // the retained span matches [`SlidingWindowSummary`], which
        // rotates eagerly at the same instant.
        if self.in_current == self.frame_len {
            self.cur_frame += 1;
            self.in_current = 0;
        }
    }

    /// Account `weight` to `key` in the current frame without advancing
    /// the window (the merge path drops foreign mass in here).
    fn add_mass(&mut self, key: K, weight: u64) {
        if weight == 0 {
            return;
        }
        if let Some(&i) = self.slots.get(&key) {
            let cur = self.cur_frame;
            let slot = &mut self.entries[i].ring[(cur % self.ring_len as u64) as usize];
            if slot.frame == cur {
                slot.count += weight;
            } else {
                // Reclaim the stale sub-count that lived here.
                *slot = FrameCount { frame: cur, count: weight };
            }
            return;
        }
        if self.entries.len() < self.capacity {
            let mut ring = vec![FrameCount::default(); self.ring_len].into_boxed_slice();
            ring[(self.cur_frame % self.ring_len as u64) as usize] =
                FrameCount { frame: self.cur_frame, count: weight };
            self.slots.insert(key, self.entries.len());
            self.entries.push(SlidingEntry { key, ring });
            return;
        }
        self.decrement_pass(key, weight);
    }

    /// Miss against a full table: the Misra-Gries move, windowed.
    /// First reclaim entries whose retained mass has fully expired; if
    /// that freed a slot the new key simply takes it. Otherwise
    /// decrement every live entry (and the incoming weight) by the
    /// minimum live mass, evicting entries that reach zero.
    fn decrement_pass(&mut self, key: K, weight: u64) {
        let mut min_live = u64::MAX;
        let mut i = 0;
        while i < self.entries.len() {
            let live = self.live_count(&self.entries[i]);
            if live == 0 {
                self.evict(i);
            } else {
                min_live = min_live.min(live);
                i += 1;
            }
        }
        if self.entries.len() < self.capacity {
            // Expired entries made room; no decrement needed.
            self.add_mass(key, weight);
            return;
        }
        let d = min_live.min(weight);
        let mut i = 0;
        while i < self.entries.len() {
            self.subtract(i, d);
            if self.live_count(&self.entries[i]) == 0 {
                self.evict(i);
            } else {
                i += 1;
            }
        }
        self.decremented += d * (self.capacity as u64 + 1);
        let rest = weight - d;
        if rest > 0 {
            self.add_mass(key, rest);
        }
    }

    /// Remove `d` units from an entry's live mass, newest frames first
    /// (each sub-count stays ≥ 0, so per-frame counts remain
    /// under-estimates of the per-frame truth).
    fn subtract(&mut self, i: usize, d: u64) {
        let rl = self.ring_len as u64;
        let mut rem = d;
        for back in 0..rl {
            if rem == 0 {
                break;
            }
            let Some(f) = self.cur_frame.checked_sub(back) else {
                break;
            };
            let slot = &mut self.entries[i].ring[(f % rl) as usize];
            if slot.frame == f && slot.count > 0 {
                let take = rem.min(slot.count);
                slot.count -= take;
                rem -= take;
            }
        }
    }

    fn evict(&mut self, i: usize) {
        let e = self.entries.swap_remove(i);
        self.slots.remove(&e.key);
        if let Some(moved) = self.entries.get(i) {
            *self.slots.get_mut(&moved.key).expect("moved key is tracked") = i;
        }
    }

    /// An entry's mass within the retained frame span.
    fn live_count(&self, e: &SlidingEntry<K>) -> u64 {
        let rl = self.ring_len as u64;
        e.ring
            .iter()
            .filter(|s| s.count > 0 && s.frame + rl > self.cur_frame)
            .map(|s| s.count)
            .sum()
    }

    /// Estimated mass of `key` over the retained span (an
    /// under-estimate; see [`Self::error_bound`]). Expiry happens here,
    /// read-only: stale sub-counts are skipped, not removed.
    pub fn estimate(&self, key: &K) -> u64 {
        match self.slots.get(key) {
            Some(&i) => self.live_count(&self.entries[i]),
            None => 0,
        }
    }

    /// Live `(key, windowed estimate)` pairs, unordered, zero estimates
    /// skipped.
    pub fn live_entries(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        self.entries.iter().filter_map(|e| {
            let c = self.live_count(e);
            (c > 0).then_some((e.key, c))
        })
    }

    /// The maximum by which [`Self::estimate`] can deviate from the
    /// true windowed count, in either direction: undercount from
    /// decrement passes (each consumes `capacity + 1` units of retained
    /// mass, which regenerates at one unit per item, so passes touching
    /// the current window are bounded by the retained span over
    /// `capacity + 1`) plus the frame-granularity slack shared with
    /// [`SlidingWindowSummary`].
    pub fn error_bound(&self) -> u64 {
        let span = (self.ring_len * self.frame_len) as u64;
        2 * span / (self.capacity as u64 + 1) + self.frame_len as u64
    }

    /// Keys whose windowed estimate meets `threshold`, descending by
    /// count (ties broken by key for reproducible output).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        let mut out: Vec<_> = self.live_entries().filter(|(_, c)| *c >= threshold).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0).reverse()));
        out
    }

    /// Fold another summary's live mass into this one. The two
    /// summaries' frame clocks are independent (each counts its own
    /// items), so the foreign mass lands in *this* summary's current
    /// frame — it is treated as recent, and expires on this summary's
    /// clock. Approximate by construction; estimates remain
    /// under-estimates of the combined frame-aligned truth. Requires
    /// `K: Ord` so the fold order (and therefore any decrement passes)
    /// is deterministic. Panics on configuration mismatch.
    pub fn merge(&mut self, other: &Self)
    where
        K: Ord,
    {
        assert_eq!(self.window, other.window, "window mismatch");
        assert_eq!(self.frame_len, other.frame_len, "frame length mismatch");
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut live: Vec<(K, u64)> = other.live_entries().collect();
        live.sort_unstable();
        for (k, c) in live {
            self.add_mass(k, c);
        }
        self.items_seen += other.items_seen;
        self.decremented += other.decremented;
    }

    /// Approximate memory footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        use core::mem::size_of;
        self.entries.len()
            * (size_of::<SlidingEntry<K>>() + self.ring_len * size_of::<FrameCount>())
            + self.slots.len() * (size_of::<K>() + size_of::<usize>())
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.entries.clear();
        self.cur_frame = 0;
        self.in_current = 0;
        self.items_seen = 0;
        self.decremented = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque as Dq;

    /// Exact sliding-window counter for cross-checking.
    struct ExactWindow {
        window: usize,
        items: Dq<u64>,
    }

    impl ExactWindow {
        fn new(window: usize) -> Self {
            ExactWindow { window, items: Dq::new() }
        }
        fn insert(&mut self, k: u64) {
            self.items.push_back(k);
            if self.items.len() > self.window {
                self.items.pop_front();
            }
        }
        fn count(&self, k: u64) -> u64 {
            self.items.iter().filter(|&&x| x == k).count() as u64
        }
    }

    #[test]
    fn tracks_windowed_counts_within_bound() {
        let window = 1000;
        let mut s = SlidingWindowSummary::<u64>::new(window, 10, 50);
        let mut exact = ExactWindow::new(window);
        // Phase 1: key 1 dominates. Phase 2: key 2 takes over.
        for i in 0..3000u64 {
            let k = if i < 1500 {
                if i % 2 == 0 {
                    1
                } else {
                    i
                }
            } else if i % 2 == 0 {
                2
            } else {
                i
            };
            s.insert(k);
            exact.insert(k);
        }
        let bound = s.error_bound() + s.frame_len() as u64;
        for k in [1u64, 2] {
            let est = s.estimate(&k);
            let t = exact.count(k);
            assert!(est.abs_diff(t) <= bound, "key {k}: est {est} truth {t} bound {bound}");
        }
        // Key 1 has left the window almost entirely.
        assert!(s.estimate(&1) <= bound);
        // Key 2 is the current heavy hitter.
        let hh = s.heavy_hitters(window as u64 / 4);
        assert_eq!(hh.first().map(|e| e.0), Some(2));
    }

    #[test]
    fn old_traffic_expires() {
        let mut s = SlidingWindowSummary::<u64>::new(100, 5, 10);
        for _ in 0..100 {
            s.insert(7);
        }
        assert!(s.estimate(&7) >= 80);
        for i in 0..200u64 {
            s.insert(1000 + i % 7);
        }
        assert_eq!(s.estimate(&7), 0, "key 7 should have aged out completely");
    }

    #[test]
    fn frame_rotation_keeps_coverage() {
        let mut s = SlidingWindowSummary::<u64>::new(10, 2, 5);
        assert_eq!(s.frame_len(), 5);
        for i in 0..37u64 {
            s.insert(i % 3);
        }
        assert_eq!(s.items_seen(), 37);
        // Never more than frames+1 = 3 summaries.
        assert!(s.frames.len() <= 3, "frames = {}", s.frames.len());
    }

    #[test]
    fn clear_resets() {
        let mut s = SlidingWindowSummary::<u64>::new(10, 2, 5);
        for _ in 0..20 {
            s.insert(1);
        }
        s.clear();
        assert_eq!(s.estimate(&1), 0);
        assert_eq!(s.items_seen(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = SlidingWindowSummary::<u64>::new(0, 1, 1);
    }

    // ------------------------------------------------------------------
    // SlidingSummary (Memento-style, lazy expiry)
    // ------------------------------------------------------------------

    /// With enough capacity both execution strategies are exact over
    /// the same retained frame span, so the lazy summary must agree
    /// with the eager one estimate-for-estimate at every step.
    #[test]
    fn lazy_matches_eager_when_exact() {
        let (window, frames) = (100, 5);
        let mut eager = SlidingWindowSummary::<u64>::new(window, frames, 64);
        let mut lazy = SlidingSummary::<u64>::new(window, frames, 64);
        for i in 0..1000u64 {
            let k = (i * i + i / 7) % 23; // 23 distinct keys < capacity
            eager.insert(k);
            lazy.insert(k);
            if i % 37 == 0 {
                for k in 0..23u64 {
                    assert_eq!(lazy.estimate(&k), eager.estimate(&k), "key {k} at item {i}");
                }
                assert_eq!(lazy.heavy_hitters(5), eager.heavy_hitters(5), "item {i}");
            }
        }
    }

    #[test]
    fn lazy_tracks_windowed_counts_within_bound() {
        let window = 1000;
        let mut s = SlidingSummary::<u64>::new(window, 10, 50);
        let mut exact = ExactWindow::new(window);
        for i in 0..3000u64 {
            let k = if i < 1500 {
                if i % 2 == 0 {
                    1
                } else {
                    i
                }
            } else if i % 2 == 0 {
                2
            } else {
                i
            };
            s.insert(k);
            exact.insert(k);
        }
        let bound = s.error_bound() + s.frame_len() as u64;
        for k in [1u64, 2] {
            let est = s.estimate(&k);
            let t = exact.count(k);
            assert!(est.abs_diff(t) <= bound, "key {k}: est {est} truth {t} bound {bound}");
        }
        assert!(s.estimate(&1) <= bound);
        let hh = s.heavy_hitters(window as u64 / 4);
        assert_eq!(hh.first().map(|e| e.0), Some(2));
    }

    /// Expiry is lazy: nothing is scanned when the window slides, but
    /// queries must not see aged-out traffic.
    #[test]
    fn lazy_old_traffic_expires_at_query_time() {
        let mut s = SlidingSummary::<u64>::new(100, 5, 10);
        for _ in 0..100 {
            s.insert(7);
        }
        assert!(s.estimate(&7) >= 80);
        for i in 0..200u64 {
            s.insert(1000 + i % 7);
        }
        assert_eq!(s.estimate(&7), 0, "key 7 should have aged out completely");
        // Key 7's entry may still be resident awaiting reclamation —
        // that is the point of lazy expiry.
    }

    /// The table never exceeds capacity and heavy keys survive
    /// decrement pressure (the windowed Misra-Gries guarantee).
    #[test]
    fn lazy_capacity_bounded_and_heavy_survives() {
        let mut s = SlidingSummary::<u64>::new(200, 4, 8);
        for i in 0..4000u64 {
            // Key 42 gets half the stream, the rest is a churn of fresh keys.
            s.insert(if i % 2 == 0 { 42 } else { i });
            assert!(s.len() <= 8, "table grew past capacity");
        }
        assert!(s.estimate(&42) > 0, "majority key evicted");
    }

    #[test]
    fn lazy_weighted_inserts_and_state() {
        let mut s = SlidingSummary::<u64>::new(10, 2, 4);
        s.insert_weighted(1, 500);
        s.insert_weighted(2, 300);
        assert_eq!(s.estimate(&1), 500);
        assert_eq!(s.estimate(&2), 300);
        assert_eq!(s.items_seen(), 2);
        assert!(s.state_bytes() > 0);
        s.clear();
        assert_eq!(s.estimate(&1), 0);
        assert!(s.is_empty());
        assert_eq!(s.items_seen(), 0);
    }

    /// Merged mass lands in the receiver's current frame and expires on
    /// the receiver's clock.
    #[test]
    fn lazy_merge_folds_live_mass() {
        let mut a = SlidingSummary::<u64>::new(100, 5, 16);
        let mut b = SlidingSummary::<u64>::new(100, 5, 16);
        for _ in 0..50 {
            a.insert(1);
            b.insert(2);
        }
        a.merge(&b);
        assert_eq!(a.estimate(&1), 50);
        assert_eq!(a.estimate(&2), 50);
        // Slide a's window past the merged mass.
        for i in 0..250u64 {
            a.insert(1000 + i % 3);
        }
        assert_eq!(a.estimate(&2), 0, "merged mass should expire");
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn lazy_merge_rejects_mismatch() {
        let mut a = SlidingSummary::<u64>::new(100, 5, 16);
        let b = SlidingSummary::<u64>::new(100, 5, 8);
        a.merge(&b);
    }

    /// Estimates never overestimate the frame-aligned truth, under
    /// heavy eviction pressure and across many window positions.
    #[test]
    fn lazy_never_overestimates_frame_truth() {
        let mut s = SlidingSummary::<u64>::new(60, 3, 5);
        // Frame-aligned truth over the retained span (ring_len frames).
        let mut per_frame: Dq<std::collections::HashMap<u64, u64>> = Dq::new();
        per_frame.push_back(Default::default());
        let frame_len = s.frame_len();
        let retained = 60usize.div_ceil(frame_len) + 1;
        let mut in_cur = 0usize;
        for i in 0..5000u64 {
            let k = (i * 7 + i % 13) % 40;
            if in_cur == frame_len {
                per_frame.push_back(Default::default());
                if per_frame.len() > retained {
                    per_frame.pop_front();
                }
                in_cur = 0;
            }
            in_cur += 1;
            *per_frame.back_mut().unwrap().entry(k).or_default() += 1;
            s.insert(k);
            if i % 97 == 0 {
                for k in 0..40u64 {
                    let truth: u64 =
                        per_frame.iter().map(|f| f.get(&k).copied().unwrap_or(0)).sum();
                    assert!(
                        s.estimate(&k) <= truth,
                        "overestimate for {k} at item {i}: {} > {truth}",
                        s.estimate(&k)
                    );
                }
            }
        }
    }
}
