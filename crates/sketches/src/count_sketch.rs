//! The Count Sketch (Charikar, Chen, Farach-Colton 2002).

use crate::hash::{hash_of, reduce, seed_sequence};
use core::hash::Hash;
use core::marker::PhantomData;

/// A Count Sketch: like Count-Min but with random ±1 signs, making point
/// estimates *unbiased* (error symmetric around the truth) instead of
/// one-sided.
///
/// The estimate for a key is the **median** over rows of
/// `sign(key) × counter[bucket(key)]`. With `width = O(1/ε²)` and
/// `depth = O(log 1/δ)`, the error is within `ε·‖f‖₂` with probability
/// `1 − δ` — an L2 guarantee, which is what UnivMon-style universal
/// monitoring builds on (the reason this sketch is here).
#[derive(Clone, Debug)]
pub struct CountSketch<K> {
    counters: Vec<i64>,
    bucket_seeds: Vec<u64>,
    sign_seeds: Vec<u64>,
    width: usize,
    total: u64,
    _key: PhantomData<K>,
}

impl<K: Hash + Eq> CountSketch<K> {
    /// Build with explicit dimensions. Panics if either is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0 && depth > 0, "CountSketch dimensions must be non-zero");
        let seeds = seed_sequence(seed, depth * 2);
        CountSketch {
            counters: vec![0; width * depth],
            bucket_seeds: seeds[..depth].to_vec(),
            sign_seeds: seeds[depth..].to_vec(),
            width,
            total: 0,
            _key: PhantomData,
        }
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.bucket_seeds.len()
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total weight inserted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Heap footprint of the counter array in bytes.
    pub fn state_bytes(&self) -> usize {
        self.counters.len() * core::mem::size_of::<i64>()
    }

    #[inline]
    fn bucket(&self, row: usize, key: &K) -> usize {
        row * self.width + reduce(hash_of(key, self.bucket_seeds[row]), self.width)
    }

    #[inline]
    fn sign(&self, row: usize, key: &K) -> i64 {
        if hash_of(key, self.sign_seeds[row]) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Add `weight` to `key`'s frequency.
    #[inline]
    pub fn update(&mut self, key: &K, weight: u64) {
        self.total += weight;
        for row in 0..self.depth() {
            let b = self.bucket(row, key);
            self.counters[b] += self.sign(row, key) * weight as i64;
        }
    }

    /// Unbiased point estimate (median over rows), clamped at zero since
    /// frequencies are non-negative.
    pub fn estimate(&self, key: &K) -> u64 {
        let mut ests: Vec<i64> = (0..self.depth())
            .map(|row| self.sign(row, key) * self.counters[self.bucket(row, key)])
            .collect();
        ests.sort_unstable();
        let mid = ests.len() / 2;
        let median = if ests.len() % 2 == 1 {
            ests[mid]
        } else {
            // Round the midpoint toward zero to stay conservative.
            (ests[mid - 1] + ests[mid]) / 2
        };
        median.max(0) as u64
    }

    /// An estimate of the stream's squared L2 norm `‖f‖₂²`: median over
    /// rows of the sum of squared counters.
    pub fn l2_squared(&self) -> u64 {
        let mut row_sums: Vec<u128> = (0..self.depth())
            .map(|row| {
                self.counters[row * self.width..(row + 1) * self.width]
                    .iter()
                    .map(|&c| (c as i128 * c as i128) as u128)
                    .sum()
            })
            .collect();
        row_sums.sort_unstable();
        row_sums[row_sums.len() / 2] as u64
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.total = 0;
    }

    /// The raw counter cells (`depth` rows of `width` counters, row
    /// `r` at `r*width..(r+1)*width`) — the serialization surface of
    /// the sketch. Together with the constructor parameters (`width`,
    /// `depth`, seed) this is the sketch's entire state.
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Rebuild a sketch from its constructor parameters plus exported
    /// cells and total (the deserialization surface, inverse of
    /// [`counters`](Self::counters) + [`total`](Self::total)). The
    /// parameters must match the exporting sketch's; only the cell
    /// count is checkable here and it panics on mismatch.
    pub fn from_parts(
        width: usize,
        depth: usize,
        seed: u64,
        counters: Vec<i64>,
        total: u64,
    ) -> Self {
        let mut cs = CountSketch::new(width, depth, seed);
        assert_eq!(counters.len(), cs.counters.len(), "CountSketch cell-count mismatch");
        cs.counters = counters;
        cs.total = total;
        cs
    }

    /// Merge another sketch with identical dimensions and seeds into
    /// this one (counter-wise sum). Linearity of the row estimators
    /// makes this exact: the merged sketch is bit-identical to one fed
    /// the concatenated stream. Panics on mismatched configuration.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.bucket_seeds, other.bucket_seeds, "seed mismatch");
        assert_eq!(self.sign_seeds, other.sign_seeds, "seed mismatch");
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += *b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn heavy_keys_estimate_accurately() {
        let mut cs = CountSketch::<u64>::new(256, 5, 11);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // One dominant key plus noise.
        for _ in 0..10_000 {
            cs.update(&7, 1);
            *truth.entry(7).or_default() += 1;
        }
        for i in 0..1000u64 {
            cs.update(&(100 + i), 1);
            *truth.entry(100 + i).or_default() += 1;
        }
        let est = cs.estimate(&7);
        let t = truth[&7];
        let err = est.abs_diff(t);
        assert!(err < t / 10, "heavy key estimate too far off: est={est} truth={t}");
    }

    #[test]
    fn from_parts_roundtrips_estimates() {
        let mut cs = CountSketch::<u64>::new(128, 3, 42);
        for i in 0..5_000u64 {
            cs.update(&(i % 50), 1 + i % 3);
        }
        let back = CountSketch::<u64>::from_parts(128, 3, 42, cs.counters().to_vec(), cs.total());
        assert_eq!(back.total(), cs.total());
        assert_eq!(back.counters(), cs.counters());
        for k in 0..60u64 {
            assert_eq!(back.estimate(&k), cs.estimate(&k), "estimate diverged for {k}");
        }
        assert_eq!(back.l2_squared(), cs.l2_squared());
    }

    #[test]
    #[should_panic(expected = "cell-count mismatch")]
    fn from_parts_rejects_wrong_cell_count() {
        let _ = CountSketch::<u64>::from_parts(128, 3, 42, vec![0; 7], 0);
    }

    #[test]
    fn absent_key_estimates_near_zero() {
        let mut cs = CountSketch::<u64>::new(512, 5, 3);
        for i in 0..1000u64 {
            cs.update(&i, 1);
        }
        // A key never inserted: estimate should be tiny relative to N.
        assert!(cs.estimate(&999_999) < 100);
    }

    #[test]
    fn l2_tracks_truth() {
        let mut cs = CountSketch::<u64>::new(1024, 7, 13);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..20_000u64 {
            let k = i % 100;
            cs.update(&k, 1);
            *truth.entry(k).or_default() += 1;
        }
        let true_l2: u64 = truth.values().map(|v| v * v).sum();
        let est = cs.l2_squared();
        let rel = (est as f64 - true_l2 as f64).abs() / true_l2 as f64;
        assert!(rel < 0.25, "L2 estimate off by {rel}: est={est} truth={true_l2}");
    }

    #[test]
    fn update_total_and_clear() {
        let mut cs = CountSketch::<u64>::new(8, 3, 0);
        cs.update(&1, 5);
        cs.update(&2, 3);
        assert_eq!(cs.total(), 8);
        cs.clear();
        assert_eq!(cs.total(), 0);
        assert_eq!(cs.estimate(&1), 0);
    }

    #[test]
    fn even_depth_median_is_defined() {
        let mut cs = CountSketch::<u64>::new(64, 4, 21);
        for _ in 0..100 {
            cs.update(&5, 1);
        }
        // Just exercising the even-row median path.
        let est = cs.estimate(&5);
        assert!((80..=120).contains(&est), "est={est}");
    }
}
