//! The Misra-Gries frequent-items summary (Misra & Gries 1982),
//! generalized to weighted updates.

use core::hash::Hash;
use std::collections::HashMap;

/// Misra-Gries summary with `k` counters.
///
/// Estimates are *under*-estimates (the mirror image of Space-Saving):
/// for a stream of total weight `N`,
/// `truth − N/(k+1) ≤ estimate(key) ≤ truth`, and any key with
/// frequency `> N/(k+1)` is guaranteed to be present.
///
/// Weighted updates follow the standard generalization: when the summary
/// is full and a new key arrives with weight `w`, the minimum counter
/// value `m` determines a global decrement `d = min(m, w)`; all counters
/// drop by `d` (zeros evicted) and the new key enters with `w − d` if
/// positive. Each update is O(k) worst case, O(1) amortized for unit
/// weights.
#[derive(Clone, Debug)]
pub struct MisraGries<K> {
    k: usize,
    counters: HashMap<K, u64>,
    total: u64,
    /// Total weight removed by decrements; `total − decremented` bounds
    /// the summary's mass.
    decremented: u64,
}

impl<K: Hash + Eq + Copy> MisraGries<K> {
    /// A summary with `k` counters. Panics if zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "MisraGries needs at least one counter");
        MisraGries { k, counters: HashMap::with_capacity(k + 1), total: 0, decremented: 0 }
    }

    /// Number of counters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current number of tracked keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` when no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Observe `weight` for `key`.
    pub fn update(&mut self, key: K, weight: u64) {
        self.total += weight;
        if let Some(c) = self.counters.get_mut(&key) {
            *c += weight;
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(key, weight);
            return;
        }
        // Full and key absent: decrement globally.
        let min = *self.counters.values().min().expect("non-empty");
        let d = min.min(weight);
        self.decremented += d * (self.counters.len() as u64 + 1);
        self.counters.retain(|_, c| {
            *c -= d;
            *c > 0
        });
        let rest = weight - d;
        if rest > 0 {
            self.counters.insert(key, rest);
        }
    }

    /// The (under-)estimate for a key; 0 when untracked.
    pub fn estimate(&self, key: &K) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Upper bound on how much any estimate undershoots the truth.
    pub fn max_undercount(&self) -> u64 {
        // Every global decrement of d reduced each tracked key's counter
        // by at most d; the per-key total undercount is bounded by
        // total/(k+1).
        self.total / (self.k as u64 + 1)
    }

    /// Tracked keys whose estimate meets `threshold`, descending.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut out: Vec<_> =
            self.counters.iter().filter(|(_, &c)| c >= threshold).map(|(k, &c)| (*k, c)).collect();
        out.sort_by_key(|e| core::cmp::Reverse(e.1));
        out
    }

    /// Iterate over tracked `(key, estimate)` pairs, unordered.
    pub fn entries(&self) -> impl Iterator<Item = (&K, &u64)> {
        self.counters.iter()
    }

    /// Drop all state.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.total = 0;
        self.decremented = 0;
    }

    /// Merge another summary over a *disjoint* sub-stream into this
    /// one (Agarwal et al., PODS 2012). Panics if `k` differs.
    ///
    /// Counter-wise addition can leave up to `2k` keys; the recipe
    /// restores the size bound by subtracting the `(k+1)`-th largest
    /// merged counter from every counter and dropping non-positive
    /// ones. The combined undercount stays within
    /// `(N_a + N_b) / (k + 1)`, so [`Self::max_undercount`] remains a
    /// valid bound for the merged stream.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "MisraGries k mismatch");
        self.total += other.total;
        self.decremented += other.decremented;
        for (k, c) in &other.counters {
            *self.counters.entry(*k).or_default() += c;
        }
        if self.counters.len() > self.k {
            let mut vals: Vec<u64> = self.counters.values().copied().collect();
            vals.sort_unstable_by_key(|v| core::cmp::Reverse(*v));
            // The (k+1)-th largest value: subtracting it zeroes that
            // counter and every smaller one, leaving ≤ k survivors.
            let cut = vals[self.k];
            let mut removed = 0u64;
            self.counters.retain(|_, c| {
                let dropped = (*c).min(cut);
                removed += dropped;
                *c -= dropped;
                *c > 0
            });
            self.decremented += removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::<u64>::new(5);
        mg.update(1, 10);
        mg.update(2, 20);
        mg.update(1, 5);
        assert_eq!(mg.estimate(&1), 15);
        assert_eq!(mg.estimate(&2), 20);
        assert_eq!(mg.estimate(&3), 0);
    }

    #[test]
    fn never_overestimates_and_bounded_undercount() {
        let mut mg = MisraGries::<u64>::new(9);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..20_000u64 {
            let k = i % 100;
            let w = if k < 2 { 20 } else { 1 };
            mg.update(k, w);
            *truth.entry(k).or_default() += w;
        }
        let bound = mg.max_undercount();
        for (k, t) in &truth {
            let e = mg.estimate(k);
            assert!(e <= *t, "overestimate for {k}: {e} > {t}");
            assert!(e + bound >= *t, "undercount beyond bound for {k}: {e} + {bound} < {t}");
        }
    }

    #[test]
    fn majority_key_survives() {
        let mut mg = MisraGries::<u64>::new(1);
        for i in 0..1000u64 {
            mg.update(if i % 3 != 0 { 42 } else { i }, 1);
        }
        // 42 has ~2/3 of the stream; with k=1 it must be the survivor.
        assert!(mg.estimate(&42) > 0);
    }

    #[test]
    fn weighted_eviction_partial_absorb() {
        let mut mg = MisraGries::<u64>::new(2);
        mg.update(1, 10);
        mg.update(2, 10);
        // Weight 3 < min 10: fully absorbed, no insertion.
        mg.update(3, 3);
        assert_eq!(mg.estimate(&3), 0);
        assert_eq!(mg.estimate(&1), 7);
        assert_eq!(mg.estimate(&2), 7);
        // Weight 9 > min 7: decrement 7, key 3 enters with 2.
        mg.update(3, 9);
        assert_eq!(mg.estimate(&3), 2);
        assert_eq!(mg.estimate(&1), 0);
        assert_eq!(mg.estimate(&2), 0);
    }

    #[test]
    fn heavy_hitters_sorted() {
        let mut mg = MisraGries::<u64>::new(10);
        mg.update(1, 100);
        mg.update(2, 300);
        mg.update(3, 200);
        let hh = mg.heavy_hitters(150);
        assert_eq!(hh, vec![(2, 300), (3, 200)]);
    }

    #[test]
    fn merge_under_capacity_is_exact() {
        let mut a = MisraGries::<u64>::new(8);
        let mut b = MisraGries::<u64>::new(8);
        a.update(1, 10);
        a.update(2, 4);
        b.update(1, 6);
        b.update(3, 2);
        a.merge(&b);
        assert_eq!(a.total(), 22);
        assert_eq!(a.estimate(&1), 16);
        assert_eq!(a.estimate(&2), 4);
        assert_eq!(a.estimate(&3), 2);
        assert!(a.len() <= 8);
    }

    #[test]
    #[should_panic(expected = "k mismatch")]
    fn merge_rejects_k_mismatch() {
        let mut a = MisraGries::<u64>::new(4);
        let b = MisraGries::<u64>::new(5);
        a.merge(&b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Split-summarize-merge preserves the MG contract over the
        /// whole stream: no overestimates, undercount within
        /// `N/(k+1)`, size bound respected.
        #[test]
        fn merge_preserves_contract(
            ops in prop::collection::vec((0u64..40, 1u64..10), 2..1500),
            k in 1usize..20,
            split_num in 0u64..1000,
        ) {
            let split = (split_num as usize * ops.len() / 1000).min(ops.len());
            let mut a = MisraGries::<u64>::new(k);
            let mut b = MisraGries::<u64>::new(k);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (i, &(key, w)) in ops.iter().enumerate() {
                if i < split { a.update(key, w) } else { b.update(key, w) }
                *truth.entry(key).or_default() += w;
            }
            a.merge(&b);
            let n: u64 = truth.values().sum();
            prop_assert_eq!(a.total(), n);
            prop_assert!(a.len() <= k, "merged summary has {} > k = {} keys", a.len(), k);
            let bound = n / (k as u64 + 1);
            for (key, t) in &truth {
                let e = a.estimate(key);
                prop_assert!(e <= *t, "overestimate after merge for {}", key);
                prop_assert!(e + bound >= *t, "undercount beyond bound for {}", key);
                if *t > bound {
                    prop_assert!(e > 0, "key {} with freq {} > {} lost in merge", key, t, bound);
                }
            }
        }

        #[test]
        fn mg_contract(ops in prop::collection::vec((0u64..40, 1u64..10), 1..1500), k in 1usize..20) {
            let mut mg = MisraGries::<u64>::new(k);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (key, w) in ops {
                mg.update(key, w);
                *truth.entry(key).or_default() += w;
            }
            let n: u64 = truth.values().sum();
            prop_assert_eq!(mg.total(), n);
            prop_assert!(mg.len() <= k);
            let bound = n / (k as u64 + 1);
            for (key, t) in &truth {
                let e = mg.estimate(key);
                prop_assert!(e <= *t);
                prop_assert!(e + bound >= *t);
                if *t > bound {
                    prop_assert!(e > 0, "key {} with freq {} > {} missing", key, t, bound);
                }
            }
        }
    }
}
