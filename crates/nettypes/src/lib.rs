//! # hhh-nettypes
//!
//! Network primitive types shared by every crate in the `hidden-hhh`
//! workspace: nanosecond timestamps, IPv4/IPv6 prefixes with the masking
//! and containment algebra that hierarchical heavy-hitter algorithms are
//! built on, compact packet records, and traffic measures.
//!
//! The types here follow the smoltcp design ethos: plain data, no heap
//! allocation, no clever type-level machinery, and every invariant
//! enforced at construction time (a [`Ipv4Prefix`] always has its host
//! bits cleared, a [`Nanos`] is always a count of nanoseconds since the
//! trace epoch).
//!
//! ## Quick tour
//!
//! ```
//! use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord, TimeSpan};
//!
//! let p: Ipv4Prefix = "10.1.2.0/24".parse().unwrap();
//! assert!(p.contains_addr(0x0A010203)); // 10.1.2.3
//! assert_eq!(p.parent().unwrap().to_string(), "10.1.2.0/23");
//!
//! let pkt = PacketRecord::new(Nanos::from_millis(1500), 0x0A010203, 0xC0A80001, 1400);
//! assert!(pkt.ts < Nanos::from_secs(2));
//! assert_eq!(TimeSpan::from_secs(2) - TimeSpan::from_millis(500), TimeSpan::from_millis(1500));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod count;
mod packet;
mod prefix;
mod time;

pub use count::{Measure, RunningTotal};
pub use packet::{PacketRecord, Proto};
pub use prefix::{Ipv4Prefix, Ipv6Prefix, PrefixParseError};
pub use time::{Nanos, TimeSpan};
