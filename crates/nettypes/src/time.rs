//! Trace time: absolute instants ([`Nanos`]) and durations ([`TimeSpan`]).
//!
//! All trace analysis in this workspace happens in *trace time*: an
//! instant is a number of nanoseconds since the first packet of the trace
//! (the *trace epoch*). Using a bare `u64` everywhere invites unit bugs
//! (seconds vs milliseconds vs nanoseconds appear throughout the paper's
//! experiments), so instants and durations are distinct newtypes with only
//! the arithmetic that makes dimensional sense:
//!
//! * `Nanos - Nanos = TimeSpan`
//! * `Nanos ± TimeSpan = Nanos`
//! * `TimeSpan ± TimeSpan = TimeSpan`, `TimeSpan * k`, `TimeSpan / k`
//!
//! Both types are `Copy`, 8 bytes, and totally ordered. A `u64` of
//! nanoseconds covers ~584 years, far beyond any trace length.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant in trace time: nanoseconds since the trace epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

/// A span of trace time: a non-negative number of nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeSpan(u64);

macro_rules! common_ctors {
    ($ty:ident) => {
        impl $ty {
            /// Zero.
            pub const ZERO: $ty = $ty(0);

            /// Construct from raw nanoseconds.
            #[inline]
            pub const fn from_nanos(ns: u64) -> Self {
                $ty(ns)
            }

            /// Construct from microseconds.
            #[inline]
            pub const fn from_micros(us: u64) -> Self {
                $ty(us * 1_000)
            }

            /// Construct from milliseconds.
            #[inline]
            pub const fn from_millis(ms: u64) -> Self {
                $ty(ms * 1_000_000)
            }

            /// Construct from whole seconds.
            #[inline]
            pub const fn from_secs(s: u64) -> Self {
                $ty(s * 1_000_000_000)
            }

            /// Raw nanosecond count.
            #[inline]
            pub const fn as_nanos(self) -> u64 {
                self.0
            }

            /// Truncating conversion to whole microseconds.
            #[inline]
            pub const fn as_micros(self) -> u64 {
                self.0 / 1_000
            }

            /// Truncating conversion to whole milliseconds.
            #[inline]
            pub const fn as_millis(self) -> u64 {
                self.0 / 1_000_000
            }

            /// Truncating conversion to whole seconds.
            #[inline]
            pub const fn as_secs(self) -> u64 {
                self.0 / 1_000_000_000
            }

            /// Conversion to seconds as a float (for rate computations).
            #[inline]
            pub fn as_secs_f64(self) -> f64 {
                self.0 as f64 / 1e9
            }

            /// Saturating subtraction; clamps at zero instead of wrapping.
            #[inline]
            pub const fn saturating_sub(self, rhs: $ty) -> $ty {
                $ty(self.0.saturating_sub(rhs.0))
            }
        }
    };
}

common_ctors!(Nanos);
common_ctors!(TimeSpan);

impl TimeSpan {
    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input (a duration cannot be negative).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "TimeSpan must be finite and non-negative, got {s}");
        TimeSpan((s * 1e9).round() as u64)
    }

    /// `true` iff this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Nanos {
    /// The greatest representable instant (used as an "infinitely far
    /// away" sentinel by event-merging heaps).
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Subtract a span, clamping at the epoch instead of panicking —
    /// the idiom for "window start" near the beginning of a trace.
    #[inline]
    pub const fn saturating_sub_span(self, span: TimeSpan) -> Nanos {
        Nanos(self.0.saturating_sub(span.as_nanos()))
    }

    /// Which fixed-size bin this instant falls into when time is cut into
    /// consecutive spans of `bin` length starting at the epoch.
    ///
    /// Panics if `bin` is zero.
    #[inline]
    pub fn bin_index(self, bin: TimeSpan) -> u64 {
        assert!(!bin.is_zero(), "bin length must be non-zero");
        self.0 / bin.0
    }

    /// Offset of this instant within its `bin`-sized bin.
    #[inline]
    pub fn bin_offset(self, bin: TimeSpan) -> TimeSpan {
        assert!(!bin.is_zero(), "bin length must be non-zero");
        TimeSpan(self.0 % bin.0)
    }
}

impl Sub for Nanos {
    type Output = TimeSpan;
    #[inline]
    fn sub(self, rhs: Nanos) -> TimeSpan {
        TimeSpan(self.0.checked_sub(rhs.0).expect("instant subtraction underflow"))
    }
}

impl Add<TimeSpan> for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: TimeSpan) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign<TimeSpan> for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeSpan> for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: TimeSpan) -> Nanos {
        Nanos(self.0.checked_sub(rhs.0).expect("instant minus span underflow"))
    }
}

impl Add for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl AddAssign for TimeSpan {
    #[inline]
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn sub(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0.checked_sub(rhs.0).expect("span subtraction underflow"))
    }
}

impl SubAssign for TimeSpan {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeSpan) {
        self.0 = self.0.checked_sub(rhs.0).expect("span subtraction underflow");
    }
}

impl Mul<u64> for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn mul(self, rhs: u64) -> TimeSpan {
        TimeSpan(self.0 * rhs)
    }
}

impl Div<u64> for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn div(self, rhs: u64) -> TimeSpan {
        TimeSpan(self.0 / rhs)
    }
}

impl Div for TimeSpan {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self`.
    #[inline]
    fn div(self, rhs: TimeSpan) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn rem(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 % rhs.0)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // Render at the coarsest unit that loses nothing, for readable debug
    // output: 5s, 1500ms, 250us, 17ns.
    if ns == 0 {
        write!(f, "0s")
    } else if ns.is_multiple_of(1_000_000_000) {
        write!(f, "{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        write!(f, "{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        write!(f, "{}us", ns / 1_000)
    } else {
        write!(f, "{}ns", ns)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos::from_millis(2_000));
        assert_eq!(Nanos::from_millis(3), Nanos::from_micros(3_000));
        assert_eq!(Nanos::from_micros(7), Nanos::from_nanos(7_000));
        assert_eq!(TimeSpan::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn instant_minus_instant_is_span() {
        let a = Nanos::from_secs(10);
        let b = Nanos::from_secs(4);
        assert_eq!(a - b, TimeSpan::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_underflow_panics() {
        let _ = Nanos::from_secs(1) - Nanos::from_secs(2);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Nanos::from_secs(1).saturating_sub(Nanos::from_secs(5)), Nanos::ZERO);
        assert_eq!(
            TimeSpan::from_secs(1).saturating_sub(TimeSpan::from_millis(200)),
            TimeSpan::from_millis(800)
        );
    }

    #[test]
    fn span_arithmetic() {
        let w = TimeSpan::from_secs(10);
        assert_eq!(w / TimeSpan::from_secs(1), 10);
        assert_eq!(w / 4, TimeSpan::from_millis(2_500));
        assert_eq!(w * 3, TimeSpan::from_secs(30));
        assert_eq!(w % TimeSpan::from_secs(3), TimeSpan::from_secs(1));
    }

    #[test]
    fn bin_index_and_offset() {
        let t = Nanos::from_millis(12_345);
        let bin = TimeSpan::from_secs(1);
        assert_eq!(t.bin_index(bin), 12);
        assert_eq!(t.bin_offset(bin), TimeSpan::from_millis(345));
    }

    #[test]
    fn bin_boundaries_are_half_open() {
        let bin = TimeSpan::from_secs(5);
        assert_eq!(Nanos::from_secs(5).bin_index(bin), 1);
        assert_eq!(Nanos::from_nanos(4_999_999_999).bin_index(bin), 0);
    }

    #[test]
    fn display_picks_coarsest_exact_unit() {
        assert_eq!(TimeSpan::from_secs(5).to_string(), "5s");
        assert_eq!(TimeSpan::from_millis(1500).to_string(), "1500ms");
        assert_eq!(TimeSpan::from_micros(250).to_string(), "250us");
        assert_eq!(TimeSpan::from_nanos(17).to_string(), "17ns");
        assert_eq!(TimeSpan::ZERO.to_string(), "0s");
        assert_eq!(Nanos::from_millis(10).to_string(), "t+10ms");
    }

    #[test]
    fn secs_f64_roundtrip() {
        let s = TimeSpan::from_secs_f64(1.5);
        assert_eq!(s, TimeSpan::from_millis(1500));
        assert!((s.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_span_panics() {
        let _ = TimeSpan::from_secs_f64(-1.0);
    }
}
