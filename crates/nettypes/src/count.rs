//! Traffic measures: what a "count" counts.
//!
//! The paper measures HHHs by *byte* volume ("the flows which exceed 1%,
//! 5%, 10% of the total bytes measured in a specific time-window"), but
//! packet-count HHH is equally common in the literature, so every
//! detector in this workspace is parameterized by a [`Measure`].

use crate::packet::PacketRecord;
use core::fmt;

/// What to accumulate per packet: its byte length or the constant 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Measure {
    /// Count on-the-wire bytes (the paper's choice).
    #[default]
    Bytes,
    /// Count packets.
    Packets,
}

impl Measure {
    /// The weight this packet contributes under the measure.
    #[inline]
    pub fn weight(self, pkt: &PacketRecord) -> u64 {
        match self {
            Measure::Bytes => pkt.wire_len as u64,
            Measure::Packets => 1,
        }
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Measure::Bytes => write!(f, "bytes"),
            Measure::Packets => write!(f, "packets"),
        }
    }
}

/// A running (packets, bytes) pair; the common accumulator for window
/// totals and trace statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunningTotal {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
}

impl RunningTotal {
    /// The zero total.
    pub const ZERO: RunningTotal = RunningTotal { packets: 0, bytes: 0 };

    /// Account one packet.
    #[inline]
    pub fn add(&mut self, pkt: &PacketRecord) {
        self.packets += 1;
        self.bytes += pkt.wire_len as u64;
    }

    /// The total under a given measure.
    #[inline]
    pub fn get(&self, measure: Measure) -> u64 {
        match measure {
            Measure::Bytes => self.bytes,
            Measure::Packets => self.packets,
        }
    }

    /// Merge another total into this one.
    #[inline]
    pub fn merge(&mut self, other: RunningTotal) {
        self.packets += other.packets;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Nanos;

    #[test]
    fn weights_match_measure() {
        let pkt = PacketRecord::new(Nanos::ZERO, 1, 2, 1500);
        assert_eq!(Measure::Bytes.weight(&pkt), 1500);
        assert_eq!(Measure::Packets.weight(&pkt), 1);
    }

    #[test]
    fn running_total_accumulates_and_merges() {
        let mut t = RunningTotal::ZERO;
        t.add(&PacketRecord::new(Nanos::ZERO, 1, 2, 100));
        t.add(&PacketRecord::new(Nanos::ZERO, 1, 2, 200));
        assert_eq!(t.packets, 2);
        assert_eq!(t.bytes, 300);
        assert_eq!(t.get(Measure::Bytes), 300);
        assert_eq!(t.get(Measure::Packets), 2);

        let mut u = RunningTotal::ZERO;
        u.add(&PacketRecord::new(Nanos::ZERO, 3, 4, 50));
        t.merge(u);
        assert_eq!(t.packets, 3);
        assert_eq!(t.bytes, 350);
    }
}
