//! IP prefixes and the containment algebra used by HHH hierarchies.
//!
//! A hierarchical heavy hitter is *a prefix*, so prefixes are the single
//! most load-bearing type in this workspace. [`Ipv4Prefix`] stores the
//! address as a host-order `u32` with all host bits cleared — that
//! canonical form makes equality, hashing, and containment cheap bit
//! operations, and is enforced by every constructor.
//!
//! The hierarchy algebra lives here as methods:
//! [`parent`](Ipv4Prefix::parent) (one bit shorter),
//! [`ancestor`](Ipv4Prefix::ancestor) (any shorter length),
//! [`contains`](Ipv4Prefix::contains) (partial order), and
//! [`common_ancestor`](Ipv4Prefix::common_ancestor) (meet in the trie).
//! The `hhh-hierarchy` crate builds its level systems on top of these.

use core::fmt;
use core::hash::{Hash, Hasher};
use core::str::FromStr;

/// Error returned when parsing a prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError {
    what: &'static str,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.what)
    }
}

impl std::error::Error for PrefixParseError {}

impl PrefixParseError {
    fn new(what: &'static str) -> Self {
        PrefixParseError { what }
    }
}

// Precomputed network masks indexed by prefix length. A computed mask
// (`u32::MAX << (32 - len)`) needs a branch for the `len == 0` case
// (shifting by the full width is UB in Rust); the table makes `mask()`
// a branchless load, which matters because every prefix construction on
// the per-packet hot path goes through it.
const IPV4_MASKS: [u32; 33] = {
    let mut t = [0u32; 33];
    let mut len = 1usize;
    while len <= 32 {
        t[len] = u32::MAX << (32 - len);
        len += 1;
    }
    t
};

const IPV6_MASKS: [u128; 129] = {
    let mut t = [0u128; 129];
    let mut len = 1usize;
    while len <= 128 {
        t[len] = u128::MAX << (128 - len);
        len += 1;
    }
    t
};

/// An IPv4 prefix: a (masked) address plus a prefix length in `0..=32`.
///
/// Invariant: all bits below the prefix length are zero. `10.1.2.3/24`
/// is not representable; constructing with that input yields
/// `10.1.2.0/24`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    // Order matters for the derived Ord: sorting by (len, bits) groups
    // prefixes by hierarchy level, which is what the report formatters
    // and the exact HHH algorithm want.
    len: u8,
    bits: u32,
}

impl Ipv4Prefix {
    /// The root prefix `0.0.0.0/0`, which contains every address.
    pub const ROOT: Ipv4Prefix = Ipv4Prefix { len: 0, bits: 0 };

    /// Build a prefix, masking away any host bits. Panics if `len > 32`.
    #[inline]
    pub const fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length must be <= 32");
        Ipv4Prefix { bits: addr & Self::mask(len), len }
    }

    /// A full-length (host) prefix, `addr/32`.
    #[inline]
    pub const fn host(addr: u32) -> Self {
        Ipv4Prefix { bits: addr, len: 32 }
    }

    /// The network mask for a prefix length: `mask(24) = 0xFFFF_FF00`.
    /// A branchless table lookup; panics if `len > 32`.
    #[inline]
    pub const fn mask(len: u8) -> u32 {
        IPV4_MASKS[len as usize]
    }

    /// Build a prefix from an address whose host bits are already
    /// cleared, skipping the re-mask. The canonical-form invariant is
    /// the caller's responsibility (checked in debug builds).
    #[inline]
    pub const fn from_masked(addr: u32, len: u8) -> Self {
        debug_assert!(addr & !Self::mask(len) == 0, "host bits must be cleared");
        Ipv4Prefix { bits: addr, len }
    }

    /// The (masked) address bits, host byte order.
    #[inline]
    pub const fn addr(self) -> u32 {
        self.bits
    }

    /// The prefix length. (`len` here is CIDR length, not a
    /// container size, hence no `is_empty` counterpart.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// `true` only for the root prefix (length 0).
    #[inline]
    pub const fn is_root(self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain the given host address?
    #[inline]
    pub const fn contains_addr(self, addr: u32) -> bool {
        addr & Self::mask(self.len) == self.bits
    }

    /// Does this prefix contain the other prefix (or equal it)?
    ///
    /// This is the partial order of the prefix trie: `a.contains(b)` iff
    /// `a` is an ancestor-or-self of `b`.
    #[inline]
    pub const fn contains(self, other: Ipv4Prefix) -> bool {
        self.len <= other.len && other.bits & Self::mask(self.len) == self.bits
    }

    /// The parent prefix (one bit shorter), or `None` at the root.
    #[inline]
    pub const fn parent(self) -> Option<Ipv4Prefix> {
        match self.len {
            0 => None,
            l => Some(Ipv4Prefix::new(self.bits, l - 1)),
        }
    }

    /// The ancestor at an arbitrary (shorter or equal) length.
    /// Panics if `len` is longer than this prefix's length.
    #[inline]
    pub const fn ancestor(self, len: u8) -> Ipv4Prefix {
        assert!(len <= self.len, "ancestor length must not exceed prefix length");
        Ipv4Prefix::new(self.bits, len)
    }

    /// The longest prefix containing both inputs (their meet in the trie).
    pub fn common_ancestor(self, other: Ipv4Prefix) -> Ipv4Prefix {
        let max_len = self.len.min(other.len) as u32;
        let diff = self.bits ^ other.bits;
        let agree = diff.leading_zeros().min(max_len);
        Ipv4Prefix::new(self.bits, agree as u8)
    }

    /// Iterator over this prefix and all its ancestors up to the root,
    /// in order of decreasing length (self first, root last).
    pub fn self_and_ancestors(self) -> impl Iterator<Item = Ipv4Prefix> {
        let mut cur = Some(self);
        core::iter::from_fn(move || {
            let out = cur?;
            cur = out.parent();
            Some(out)
        })
    }

    /// The two children one bit longer, or `None` for host prefixes.
    pub const fn children(self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len == 32 {
            return None;
        }
        let l = self.len + 1;
        let bit = 1u32 << (32 - l);
        Some((Ipv4Prefix { bits: self.bits, len: l }, Ipv4Prefix { bits: self.bits | bit, len: l }))
    }

    /// Number of host addresses covered (`2^(32-len)`), saturating for /0.
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bits.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", b[0], b[1], b[2], b[3], self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = match s.split_once('/') {
            Some(parts) => parts,
            None => (s, "32"),
        };
        let len: u8 =
            len_s.parse().map_err(|_| PrefixParseError::new("prefix length is not a number"))?;
        if len > 32 {
            return Err(PrefixParseError::new("IPv4 prefix length exceeds 32"));
        }
        let mut octets = [0u8; 4];
        let mut n = 0;
        for part in addr_s.split('.') {
            if n == 4 {
                return Err(PrefixParseError::new("more than four octets"));
            }
            octets[n] = part
                .parse()
                .map_err(|_| PrefixParseError::new("octet is not a number in 0..=255"))?;
            n += 1;
        }
        if n != 4 {
            return Err(PrefixParseError::new("fewer than four octets"));
        }
        Ok(Ipv4Prefix::new(u32::from_be_bytes(octets), len))
    }
}

/// An IPv6 prefix: a (masked) address plus a prefix length in `0..=128`.
///
/// Same canonical-form invariant as [`Ipv4Prefix`]. IPv6 is supported by
/// the type layer and the hierarchy layer; the paper's experiments are
/// IPv4-only, which is why only IPv4 appears in the experiment crates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ipv6Prefix {
    len: u8,
    bits: u128,
}

impl Hash for Ipv6Prefix {
    /// Folds the whole prefix into one 64-bit hasher write, so hashing
    /// an IPv6 prefix costs the same hasher-chain depth as an IPv4 one
    /// instead of 50% more (the derived impl writes len + two address
    /// words). The fold is lossy only across inputs that differ in both
    /// halves and length in a precisely cancelling pattern — ordinary
    /// hash-collision territory, and same-length keys (the only keys a
    /// single sketch level ever mixes) collide just when `hi ^ lo`
    /// is rotation-invariant, i.e. essentially never.
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        let hi = (self.bits >> 64) as u64;
        let lo = self.bits as u64;
        state.write_u64(lo ^ hi.rotate_left(29) ^ ((self.len as u64) << 56));
    }
}

impl Ipv6Prefix {
    /// The root prefix `::/0`.
    pub const ROOT: Ipv6Prefix = Ipv6Prefix { len: 0, bits: 0 };

    /// Build a prefix, masking away any host bits. Panics if `len > 128`.
    #[inline]
    pub const fn new(addr: u128, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length must be <= 128");
        Ipv6Prefix { bits: addr & Self::mask(len), len }
    }

    /// A full-length (host) prefix.
    #[inline]
    pub const fn host(addr: u128) -> Self {
        Ipv6Prefix { bits: addr, len: 128 }
    }

    /// The network mask for a prefix length. A branchless table lookup;
    /// panics if `len > 128`.
    #[inline]
    pub const fn mask(len: u8) -> u128 {
        IPV6_MASKS[len as usize]
    }

    /// Build a prefix from an address whose host bits are already
    /// cleared, skipping the re-mask. The canonical-form invariant is
    /// the caller's responsibility (checked in debug builds).
    #[inline]
    pub const fn from_masked(addr: u128, len: u8) -> Self {
        debug_assert!(addr & !Self::mask(len) == 0, "host bits must be cleared");
        Ipv6Prefix { bits: addr, len }
    }

    /// The (masked) address bits.
    #[inline]
    pub const fn addr(self) -> u128 {
        self.bits
    }

    /// The prefix length. (CIDR length, not a container size.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// `true` only for the root prefix (length 0).
    #[inline]
    pub const fn is_root(self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain the given host address?
    #[inline]
    pub const fn contains_addr(self, addr: u128) -> bool {
        addr & Self::mask(self.len) == self.bits
    }

    /// Does this prefix contain the other prefix (or equal it)?
    #[inline]
    pub const fn contains(self, other: Ipv6Prefix) -> bool {
        self.len <= other.len && other.bits & Self::mask(self.len) == self.bits
    }

    /// The parent prefix (one bit shorter), or `None` at the root.
    #[inline]
    pub const fn parent(self) -> Option<Ipv6Prefix> {
        match self.len {
            0 => None,
            l => Some(Ipv6Prefix::new(self.bits, l - 1)),
        }
    }

    /// The ancestor at an arbitrary (shorter or equal) length.
    #[inline]
    pub const fn ancestor(self, len: u8) -> Ipv6Prefix {
        assert!(len <= self.len, "ancestor length must not exceed prefix length");
        Ipv6Prefix::new(self.bits, len)
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = std::net::Ipv6Addr::from(self.bits);
        write!(f, "{}/{}", a, self.len)
    }
}

impl fmt::Debug for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = match s.split_once('/') {
            Some(parts) => parts,
            None => (s, "128"),
        };
        let len: u8 =
            len_s.parse().map_err(|_| PrefixParseError::new("prefix length is not a number"))?;
        if len > 128 {
            return Err(PrefixParseError::new("IPv6 prefix length exceeds 128"));
        }
        let addr: std::net::Ipv6Addr =
            addr_s.parse().map_err(|_| PrefixParseError::new("invalid IPv6 address"))?;
        Ok(Ipv6Prefix::new(u128::from(addr), len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn construction_masks_host_bits() {
        assert_eq!(Ipv4Prefix::new(0x0A010203, 24), p("10.1.2.0/24"));
        assert_eq!(Ipv4Prefix::new(0xFFFF_FFFF, 0), Ipv4Prefix::ROOT);
        assert_eq!(Ipv4Prefix::new(0xFFFF_FFFF, 32).addr(), 0xFFFF_FFFF);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32", "128.0.0.0/1"] {
            assert_eq!(p(s).to_string(), s);
        }
        // Host bits are masked on parse, so display differs from input.
        assert_eq!(p("10.1.2.3/24").to_string(), "10.1.2.0/24");
        // Bare address parses as /32.
        assert_eq!(p("1.2.3.4"), Ipv4Prefix::host(0x01020304));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("1.2.3/24".parse::<Ipv4Prefix>().is_err());
        assert!("1.2.3.4.5/24".parse::<Ipv4Prefix>().is_err());
        assert!("1.2.3.4/33".parse::<Ipv4Prefix>().is_err());
        assert!("1.2.3.256/8".parse::<Ipv4Prefix>().is_err());
        assert!("a.b.c.d/8".parse::<Ipv4Prefix>().is_err());
        assert!("1.2.3.4/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn containment_is_a_partial_order() {
        let a = p("10.0.0.0/8");
        let b = p("10.1.0.0/16");
        let c = p("11.0.0.0/8");
        assert!(a.contains(b));
        assert!(!b.contains(a));
        assert!(a.contains(a));
        assert!(!a.contains(c) && !c.contains(a));
        assert!(Ipv4Prefix::ROOT.contains(a));
    }

    #[test]
    fn contains_addr_matches_contains_host() {
        let a = p("172.16.0.0/12");
        assert!(a.contains_addr(0xAC10_0001)); // 172.16.0.1
        assert!(a.contains_addr(0xAC1F_FFFF)); // 172.31.255.255
        assert!(!a.contains_addr(0xAC20_0000)); // 172.32.0.0
    }

    #[test]
    fn parent_chain_reaches_root() {
        let mut cur = p("255.255.255.255/32");
        let mut steps = 0;
        while let Some(up) = cur.parent() {
            assert!(up.contains(cur));
            assert_eq!(up.len(), cur.len() - 1);
            cur = up;
            steps += 1;
        }
        assert_eq!(steps, 32);
        assert_eq!(cur, Ipv4Prefix::ROOT);
        assert!(Ipv4Prefix::ROOT.parent().is_none());
    }

    #[test]
    fn self_and_ancestors_lengths_descend() {
        let chain: Vec<_> = p("10.1.2.0/24").self_and_ancestors().collect();
        assert_eq!(chain.len(), 25);
        assert_eq!(chain[0], p("10.1.2.0/24"));
        assert_eq!(chain[24], Ipv4Prefix::ROOT);
        for w in chain.windows(2) {
            assert_eq!(w[1].len() + 1, w[0].len());
            assert!(w[1].contains(w[0]));
        }
    }

    #[test]
    fn ancestor_jumps_levels() {
        let h = Ipv4Prefix::host(0x0A010203);
        assert_eq!(h.ancestor(24), p("10.1.2.0/24"));
        assert_eq!(h.ancestor(16), p("10.1.0.0/16"));
        assert_eq!(h.ancestor(8), p("10.0.0.0/8"));
        assert_eq!(h.ancestor(0), Ipv4Prefix::ROOT);
    }

    #[test]
    fn common_ancestor_is_meet() {
        assert_eq!(p("10.1.0.0/16").common_ancestor(p("10.2.0.0/16")), p("10.0.0.0/14"));
        assert_eq!(p("10.1.0.0/16").common_ancestor(p("10.1.2.0/24")), p("10.1.0.0/16"));
        assert_eq!(p("0.0.0.0/8").common_ancestor(p("128.0.0.0/8")), Ipv4Prefix::ROOT);
        let x = p("10.1.2.0/24");
        assert_eq!(x.common_ancestor(x), x);
    }

    #[test]
    fn children_partition_parent() {
        let a = p("10.0.0.0/8");
        let (l, r) = a.children().unwrap();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, p("10.128.0.0/9"));
        assert!(a.contains(l) && a.contains(r));
        assert_eq!(l.size() + r.size(), a.size());
        assert!(Ipv4Prefix::host(1).children().is_none());
    }

    #[test]
    fn ordering_groups_by_level() {
        let mut v = vec![p("10.1.2.0/24"), p("0.0.0.0/0"), p("9.0.0.0/8"), p("10.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("0.0.0.0/0"), p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.1.2.0/24")]);
    }

    #[test]
    fn ipv6_basics() {
        let a: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(a.to_string(), "2001:db8::/32");
        assert!(a.contains_addr(0x2001_0db8_0000_0000_0000_0000_0000_0001));
        let b: Ipv6Prefix = "2001:db8:1::/48".parse().unwrap();
        assert!(a.contains(b));
        assert_eq!(b.ancestor(32), a);
        assert_eq!(Ipv6Prefix::ROOT.to_string(), "::/0");
        let mut cur = b;
        let mut steps = 0;
        while let Some(up) = cur.parent() {
            cur = up;
            steps += 1;
        }
        assert_eq!(steps, 48);
        assert!("2001:db8::/129".parse::<Ipv6Prefix>().is_err());
        assert!("zzz/32".parse::<Ipv6Prefix>().is_err());
    }

    #[test]
    fn ipv6_host_bits_masked() {
        let a = Ipv6Prefix::new(u128::MAX, 64);
        assert_eq!(a.addr(), 0xFFFF_FFFF_FFFF_FFFF_0000_0000_0000_0000);
    }
}
