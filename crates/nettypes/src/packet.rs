//! Compact packet records.
//!
//! A [`PacketRecord`] is the unit every detector, window driver and trace
//! generator exchanges. It is deliberately *not* a parsed packet buffer:
//! HHH analysis needs only the flow key, the timestamp and the wire
//! length, so the record is a 32-byte plain-old-data struct that fits two
//! per cache line. Full header parsing (Ethernet/IP/TCP/UDP) lives in
//! `hhh-pcap`, which condenses captures down to these records.
//!
//! The record is IPv4-centric because the paper's experiments are IPv4
//! source-IP HHH; `hhh-pcap` exposes IPv6 packets through its own parsed
//! view and can map them into records via configurable key extraction.

use crate::time::Nanos;
use core::fmt;

/// IP protocol numbers that matter to the workloads in this repo.
///
/// Anything else is preserved numerically via [`Proto::Other`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Proto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1).
    Icmp,
    /// Any other IP protocol, by number.
    Other(u8),
}

impl Proto {
    /// The IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Proto::Icmp => 1,
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Other(n) => n,
        }
    }

    /// From an IANA protocol number.
    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => Proto::Icmp,
            6 => Proto::Tcp,
            17 => Proto::Udp,
            n => Proto::Other(n),
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Tcp => write!(f, "tcp"),
            Proto::Udp => write!(f, "udp"),
            Proto::Icmp => write!(f, "icmp"),
            Proto::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// One observed packet, reduced to what traffic analysis needs.
///
/// `src`/`dst` are host-byte-order IPv4 addresses; `wire_len` is the
/// on-the-wire byte length used for byte-volume accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PacketRecord {
    /// Capture timestamp, relative to the trace epoch.
    pub ts: Nanos,
    /// Source IPv4 address (host byte order).
    pub src: u32,
    /// Destination IPv4 address (host byte order).
    pub dst: u32,
    /// On-the-wire length in bytes (what byte-volume HHH counts).
    pub wire_len: u32,
    /// Source transport port (0 when not applicable).
    pub src_port: u16,
    /// Destination transport port (0 when not applicable).
    pub dst_port: u16,
    /// IP protocol.
    pub proto: Proto,
}

impl PacketRecord {
    /// A minimal record with just the fields the HHH experiments use.
    /// Protocol defaults to UDP and ports to zero.
    pub const fn new(ts: Nanos, src: u32, dst: u32, wire_len: u32) -> Self {
        PacketRecord { ts, src, dst, wire_len, src_port: 0, dst_port: 0, proto: Proto::Udp }
    }

    /// Full constructor.
    #[allow(clippy::too_many_arguments)]
    pub const fn with_transport(
        ts: Nanos,
        src: u32,
        dst: u32,
        wire_len: u32,
        proto: Proto,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        PacketRecord { ts, src, dst, wire_len, src_port, dst_port, proto }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Nanos;

    #[test]
    fn proto_number_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(Proto::from_number(n).number(), n);
        }
        assert_eq!(Proto::from_number(6), Proto::Tcp);
        assert_eq!(Proto::from_number(17), Proto::Udp);
        assert_eq!(Proto::from_number(1), Proto::Icmp);
        assert_eq!(Proto::from_number(47), Proto::Other(47));
    }

    #[test]
    fn proto_display() {
        assert_eq!(Proto::Tcp.to_string(), "tcp");
        assert_eq!(Proto::Other(89).to_string(), "proto-89");
    }

    #[test]
    fn record_is_compact() {
        // Two records per cache line; this is the hot-path type, so the
        // size is part of the contract.
        assert!(core::mem::size_of::<PacketRecord>() <= 32);
    }

    #[test]
    fn constructors() {
        let r = PacketRecord::new(Nanos::from_secs(1), 1, 2, 100);
        assert_eq!(r.proto, Proto::Udp);
        assert_eq!(r.src_port, 0);
        let r = PacketRecord::with_transport(Nanos::ZERO, 1, 2, 64, Proto::Tcp, 1234, 80);
        assert_eq!(r.proto, Proto::Tcp);
        assert_eq!(r.dst_port, 80);
    }
}
