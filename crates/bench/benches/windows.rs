//! The window engines themselves: what does each window model cost per
//! packet, independent of any approximate detector?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hhh_bench::fixture;
use hhh_core::{ExactHhh, HhhDetector, MementoHhh, SpaceSavingHhh, Threshold};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use hhh_window::geometry;
use hhh_window::{Disjoint, Pipeline, ShardedSliding, SlidingExact};
use std::hint::black_box;

fn bench_windows(c: &mut Criterion) {
    let horizon_s = 20u64;
    let pkts = fixture(horizon_s);
    let horizon = TimeSpan::from_secs(horizon_s);
    let window = TimeSpan::from_secs(5);
    let t = [Threshold::percent(5.0)];
    let h = Ipv4Hierarchy::bytes();

    let mut g = c.benchmark_group("window_engines");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pkts.len() as u64));

    g.bench_function("disjoint_exact", |b| {
        b.iter(|| {
            let mut det = ExactHhh::new(h);
            black_box(
                Pipeline::new(pkts.iter().copied())
                    .engine(Disjoint::new(&mut det, horizon, window, &t, |p| p.src))
                    .collect()
                    .run(),
            )
        })
    });

    for step_s in [1u64, 5] {
        g.bench_function(format!("sliding_exact_step{step_s}s"), |b| {
            b.iter(|| {
                black_box(
                    Pipeline::new(pkts.iter().copied())
                        .engine(SlidingExact::new(
                            &h,
                            horizon,
                            window,
                            TimeSpan::from_secs(step_s),
                            &t,
                            |p| p.src,
                        ))
                        .collect()
                        .run(),
                )
            })
        });
    }
    g.finish();

    // The sliding-window pkts/s scoreboard (criterion leg of the
    // `scale -- sliding` experiment): per-position cost of the sharded
    // sliding engine under both cost models — the forced slot-order
    // ring merge (the pre-incremental baseline) vs the default
    // incremental rolling state — plus the non-retractable fallback
    // kind and the window-native detector that pays no merges at all.
    let step = TimeSpan::from_millis(500);
    let mut g = c.benchmark_group("sliding_scoreboard");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pkts.len() as u64));

    g.bench_function("exact_ring_k2", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(pkts.iter().copied())
                    .engine(
                        ShardedSliding::new(
                            2,
                            |_| ExactHhh::new(h),
                            horizon,
                            window,
                            step,
                            &t,
                            |p| p.src,
                        )
                        .force_ring_merge(),
                    )
                    .collect()
                    .run(),
            )
        })
    });
    g.bench_function("exact_incr_k2", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(pkts.iter().copied())
                    .engine(ShardedSliding::new(
                        2,
                        |_| ExactHhh::new(h),
                        horizon,
                        window,
                        step,
                        &t,
                        |p| p.src,
                    ))
                    .collect()
                    .run(),
            )
        })
    });
    g.bench_function("ss_hhh_ring_k1", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(pkts.iter().copied())
                    .engine(ShardedSliding::new(
                        1,
                        |_| SpaceSavingHhh::new(h, 512),
                        horizon,
                        window,
                        step,
                        &t,
                        |p| p.src,
                    ))
                    .collect()
                    .run(),
            )
        })
    });
    g.bench_function("memento_native", |b| {
        // Window-native: batched ingest plus one report per step
        // position — no engine, no merges; the window slides inside
        // the detector.
        let epw = window / step;
        let n_epochs = TimeSpan::from_secs(horizon_s) / step;
        let window_pkts = pkts.len() * 5 / horizon_s as usize;
        b.iter(|| {
            let mut det = MementoHhh::new(h, window_pkts, 10, 512);
            let mut pending: Vec<(u32, u64)> = Vec::with_capacity(8192);
            let mut cur_epoch = 0u64;
            let mut reports = 0usize;
            for p in pkts.iter() {
                let e = p.ts.bin_index(step);
                if e >= n_epochs {
                    break;
                }
                while cur_epoch < e {
                    if !pending.is_empty() {
                        det.observe_batch(&pending);
                        pending.clear();
                    }
                    if cur_epoch + 1 >= epw {
                        reports += det.report(t[0]).len();
                    }
                    cur_epoch += 1;
                }
                pending.push((p.src, p.wire_len as u64));
                if pending.len() >= 8192 {
                    det.observe_batch(&pending);
                    pending.clear();
                }
            }
            black_box(reports)
        })
    });
    g.finish();

    // Pure geometry (should be trivially cheap; regression canary).
    let mut g = c.benchmark_group("window_geometry");
    g.bench_function("schedules", |b| {
        b.iter(|| {
            let d = geometry::disjoint(TimeSpan::from_secs(3600), TimeSpan::from_secs(5));
            let s = geometry::sliding(
                TimeSpan::from_secs(3600),
                TimeSpan::from_secs(5),
                TimeSpan::from_secs(1),
            );
            let m = geometry::microvaried(
                TimeSpan::from_secs(3600),
                TimeSpan::from_secs(10),
                TimeSpan::from_millis(100),
            );
            black_box((d.len(), s.len(), m.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_windows);
criterion_main!(benches);
