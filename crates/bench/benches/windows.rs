//! The window engines themselves: what does each window model cost per
//! packet, independent of any approximate detector?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hhh_bench::fixture;
use hhh_core::{ExactHhh, Threshold};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use hhh_window::geometry;
use hhh_window::{Disjoint, Pipeline, SlidingExact};
use std::hint::black_box;

fn bench_windows(c: &mut Criterion) {
    let horizon_s = 20u64;
    let pkts = fixture(horizon_s);
    let horizon = TimeSpan::from_secs(horizon_s);
    let window = TimeSpan::from_secs(5);
    let t = [Threshold::percent(5.0)];
    let h = Ipv4Hierarchy::bytes();

    let mut g = c.benchmark_group("window_engines");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pkts.len() as u64));

    g.bench_function("disjoint_exact", |b| {
        b.iter(|| {
            let mut det = ExactHhh::new(h);
            black_box(
                Pipeline::new(pkts.iter().copied())
                    .engine(Disjoint::new(&mut det, horizon, window, &t, |p| p.src))
                    .collect()
                    .run(),
            )
        })
    });

    for step_s in [1u64, 5] {
        g.bench_function(format!("sliding_exact_step{step_s}s"), |b| {
            b.iter(|| {
                black_box(
                    Pipeline::new(pkts.iter().copied())
                        .engine(SlidingExact::new(
                            &h,
                            horizon,
                            window,
                            TimeSpan::from_secs(step_s),
                            &t,
                            |p| p.src,
                        ))
                        .collect()
                        .run(),
                )
            })
        });
    }
    g.finish();

    // Pure geometry (should be trivially cheap; regression canary).
    let mut g = c.benchmark_group("window_geometry");
    g.bench_function("schedules", |b| {
        b.iter(|| {
            let d = geometry::disjoint(TimeSpan::from_secs(3600), TimeSpan::from_secs(5));
            let s = geometry::sliding(
                TimeSpan::from_secs(3600),
                TimeSpan::from_secs(5),
                TimeSpan::from_secs(1),
            );
            let m = geometry::microvaried(
                TimeSpan::from_secs(3600),
                TimeSpan::from_secs(10),
                TimeSpan::from_millis(100),
            );
            black_box((d.len(), s.len(), m.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_windows);
criterion_main!(benches);
