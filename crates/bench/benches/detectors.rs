//! Per-packet update cost of every detector — the benchmark behind the
//! §3 "performance" comparison (E3b). Throughput is reported in
//! packets/second; expect RHHH ≈ levels× faster than full-ancestry
//! Space-Saving, and the exact hash map fastest of all (it just can't
//! afford the memory at line rate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::fixture;
use hhh_core::{
    ContinuousDetector, ExactHhh, HashPipe, HhhDetector, Rhhh, SpaceSavingHhh, TdbfHhh,
    TdbfHhhConfig, UnivMonLite,
};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let pkts = fixture(4);
    let h = Ipv4Hierarchy::bytes();
    let mut g = c.benchmark_group("detector_update");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(20);

    g.bench_function("exact", |b| {
        b.iter(|| {
            let mut d = ExactHhh::new(h);
            for p in &pkts {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("ss-hhh/256", |b| {
        b.iter(|| {
            let mut d = SpaceSavingHhh::new(h, 256);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("rhhh/256", |b| {
        b.iter(|| {
            let mut d = Rhhh::new(h, 256, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("tdbf-hhh", |b| {
        b.iter(|| {
            let mut d = TdbfHhh::new(
                h,
                TdbfHhhConfig { half_life: TimeSpan::from_secs(5), ..TdbfHhhConfig::default() },
            );
            for p in &pkts {
                d.observe(p.ts, black_box(p.src), p.wire_len as u64);
            }
            black_box(d.observed_weight())
        })
    });

    g.bench_function("hashpipe/4x1024", |b| {
        b.iter(|| {
            let mut d = HashPipe::<u32>::new(4, 1024, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("univmon/12x512", |b| {
        b.iter(|| {
            let mut d = UnivMonLite::<u32>::new(12, 512, 5, 64, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });
    g.finish();

    // Report cost: how expensive is asking for the HHH set?
    let mut g = c.benchmark_group("detector_report");
    g.sample_size(30);
    let threshold = hhh_core::Threshold::percent(5.0);
    let mut exact = ExactHhh::new(h);
    let mut ss = SpaceSavingHhh::new(h, 256);
    for p in &pkts {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut exact, p.src, p.wire_len as u64);
        ss.observe(p.src, p.wire_len as u64);
    }
    for (name, d) in [("exact", &exact as &dyn HhhDetector<Ipv4Hierarchy>), ("ss-hhh", &ss)] {
        g.bench_with_input(BenchmarkId::new("report", name), &d, |b, d| {
            b.iter(|| black_box(d.report(threshold)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
