//! Per-packet update cost of every detector — the benchmark behind the
//! §3 "performance" comparison (E3b). Throughput is reported in
//! packets/second; expect RHHH ≈ levels× faster than full-ancestry
//! Space-Saving, and the exact hash map fastest of all (it just can't
//! afford the memory at line rate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::fixture;
use hhh_core::{
    ContinuousDetector, ExactHhh, HashPipe, HhhDetector, MergeableDetector, Rhhh, SpaceSavingHhh,
    TdbfHhh, TdbfHhhConfig, Threshold, UnivMonLite,
};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use hhh_window::{Pipeline, ShardedDisjoint, DEFAULT_BATCH};
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let pkts = fixture(4);
    let h = Ipv4Hierarchy::bytes();
    let mut g = c.benchmark_group("detector_update");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(20);

    g.bench_function("exact", |b| {
        b.iter(|| {
            let mut d = ExactHhh::new(h);
            for p in &pkts {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("ss-hhh/256", |b| {
        b.iter(|| {
            let mut d = SpaceSavingHhh::new(h, 256);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("rhhh/256", |b| {
        b.iter(|| {
            let mut d = Rhhh::new(h, 256, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("tdbf-hhh", |b| {
        b.iter(|| {
            let mut d = TdbfHhh::new(
                h,
                TdbfHhhConfig { half_life: TimeSpan::from_secs(5), ..TdbfHhhConfig::default() },
            );
            for p in &pkts {
                d.observe(p.ts, black_box(p.src), p.wire_len as u64);
            }
            black_box(d.observed_weight())
        })
    });

    g.bench_function("hashpipe/4x1024", |b| {
        b.iter(|| {
            let mut d = HashPipe::<u32>::new(4, 1024, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("univmon/12x512", |b| {
        b.iter(|| {
            let mut d = UnivMonLite::<u32>::new(12, 512, 5, 64, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });
    g.finish();

    // Report cost: how expensive is asking for the HHH set?
    let mut g = c.benchmark_group("detector_report");
    g.sample_size(30);
    let threshold = hhh_core::Threshold::percent(5.0);
    let mut exact = ExactHhh::new(h);
    let mut ss = SpaceSavingHhh::new(h, 256);
    for p in &pkts {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut exact, p.src, p.wire_len as u64);
        ss.observe(p.src, p.wire_len as u64);
    }
    for (name, d) in [("exact", &exact as &dyn HhhDetector<Ipv4Hierarchy>), ("ss-hhh", &ss)] {
        g.bench_with_input(BenchmarkId::new("report", name), &d, |b, d| {
            b.iter(|| black_box(d.report(threshold)))
        });
    }
    g.finish();
}

/// Batched vs per-packet ingestion on a single detector: the
/// `observe_batch` overrides (level-major sweeps, grouped sampling)
/// against the seed's one-packet-at-a-time path.
fn bench_batched(c: &mut Criterion) {
    let pkts = fixture(4);
    let batch: Vec<(u32, u64)> = pkts.iter().map(|p| (p.src, p.wire_len as u64)).collect();
    let h = Ipv4Hierarchy::bytes();
    let mut g = c.benchmark_group("detector_batched");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(20);

    g.bench_function("exact/observe", |b| {
        b.iter(|| {
            let mut d = ExactHhh::new(h);
            for &(src, w) in &batch {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, black_box(src), w);
            }
            black_box(d.total())
        })
    });
    g.bench_function("exact/observe_batch", |b| {
        b.iter(|| {
            let mut d = ExactHhh::new(h);
            for chunk in batch.chunks(DEFAULT_BATCH) {
                HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut d, black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.bench_function("ss-hhh/observe", |b| {
        b.iter(|| {
            let mut d = SpaceSavingHhh::new(h, 256);
            for &(src, w) in &batch {
                d.observe(black_box(src), w);
            }
            black_box(d.total())
        })
    });
    g.bench_function("ss-hhh/observe_batch", |b| {
        b.iter(|| {
            let mut d = SpaceSavingHhh::new(h, 256);
            for chunk in batch.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.bench_function("rhhh/observe", |b| {
        b.iter(|| {
            let mut d = Rhhh::new(h, 256, 7);
            for &(src, w) in &batch {
                d.observe(black_box(src), w);
            }
            black_box(d.total())
        })
    });
    g.bench_function("rhhh/observe_batch", |b| {
        b.iter(|| {
            let mut d = Rhhh::new(h, 256, 7);
            for chunk in batch.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.finish();
}

/// The sharded pipeline end to end (scatter, worker threads, merge at
/// window boundaries) against the single-threaded disjoint driver.
/// Speedup over `shard/1` tracks available cores; on a single-core
/// host the sharded rows measure pure pipeline overhead instead.
fn bench_sharded(c: &mut Criterion) {
    let pkts = fixture(4);
    let h = Ipv4Hierarchy::bytes();
    let horizon = TimeSpan::from_secs(4);
    let window = TimeSpan::from_secs(2);
    let thresholds = [Threshold::percent(5.0)];
    let mut g = c.benchmark_group("detector_sharded");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(10);

    for shards in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("ss-hhh", shards), &shards, |b, &k| {
            b.iter(|| {
                let detectors: Vec<_> = (0..k).map(|_| SpaceSavingHhh::new(h, 256)).collect();
                let reports = Pipeline::new(pkts.iter().copied())
                    .engine(ShardedDisjoint::new(detectors, horizon, window, &thresholds, |p| {
                        p.src
                    }))
                    .collect()
                    .run();
                black_box(reports.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("rhhh", shards), &shards, |b, &k| {
            b.iter(|| {
                let detectors: Vec<_> = (0..k).map(|s| Rhhh::new(h, 256, 7 + s as u64)).collect();
                let reports = Pipeline::new(pkts.iter().copied())
                    .engine(ShardedDisjoint::new(detectors, horizon, window, &thresholds, |p| {
                        p.src
                    }))
                    .collect()
                    .run();
                black_box(reports.len())
            })
        });
    }
    g.finish();
}

/// Merge cost at report points: fold K shard states into one.
fn bench_merge(c: &mut Criterion) {
    let pkts = fixture(4);
    let h = Ipv4Hierarchy::bytes();
    let mut g = c.benchmark_group("detector_merge");
    g.sample_size(20);

    for shards in [2usize, 4, 8] {
        let mut shard_states: Vec<SpaceSavingHhh<Ipv4Hierarchy>> =
            (0..shards).map(|_| SpaceSavingHhh::new(h, 256)).collect();
        for (i, p) in pkts.iter().enumerate() {
            shard_states[i % shards].observe(p.src, p.wire_len as u64);
        }
        g.bench_with_input(BenchmarkId::new("ss-hhh", shards), &shard_states, |b, states| {
            b.iter(|| {
                let mut merged = states[0].clone();
                for s in &states[1..] {
                    merged.merge(s);
                }
                black_box(merged.total())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detectors, bench_batched, bench_sharded, bench_merge);
criterion_main!(benches);
