//! Micro-benchmarks for every sketch primitive: the per-update and
//! per-query costs that the detector costs decompose into.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hhh_nettypes::{Nanos, TimeSpan};
use hhh_sketches::{
    BloomFilter, CountMinSketch, CountSketch, DecayRate, ExpHistogram, LossyCounting, MisraGries,
    OnDemandTdbf, SlidingWindowSummary, SpaceSaving, SweepingTdbf,
};
use std::hint::black_box;

const N: u64 = 100_000;

/// Deterministic skewed key stream.
fn keys() -> Vec<u64> {
    (0..N)
        .map(|i| if i % 3 == 0 { i % 16 } else { (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 10_000 })
        .collect()
}

fn bench_sketches(c: &mut Criterion) {
    let ks = keys();
    let mut g = c.benchmark_group("sketch_update");
    g.throughput(Throughput::Elements(N));
    g.sample_size(20);

    g.bench_function("count_min/1024x4", |b| {
        b.iter(|| {
            let mut s = CountMinSketch::<u64>::new(1024, 4, 1);
            for k in &ks {
                s.update(black_box(k), 3);
            }
            black_box(s.total())
        })
    });

    g.bench_function("count_min_conservative/1024x4", |b| {
        b.iter(|| {
            let mut s = CountMinSketch::<u64>::new(1024, 4, 1).with_conservative_update();
            for k in &ks {
                s.update(black_box(k), 3);
            }
            black_box(s.total())
        })
    });

    g.bench_function("count_sketch/1024x5", |b| {
        b.iter(|| {
            let mut s = CountSketch::<u64>::new(1024, 5, 1);
            for k in &ks {
                s.update(black_box(k), 3);
            }
            black_box(s.total())
        })
    });

    g.bench_function("space_saving/256", |b| {
        b.iter(|| {
            let mut s = SpaceSaving::<u64>::new(256);
            for k in &ks {
                s.update(black_box(*k), 3);
            }
            black_box(s.total())
        })
    });

    g.bench_function("misra_gries/256", |b| {
        b.iter(|| {
            let mut s = MisraGries::<u64>::new(256);
            for k in &ks {
                s.update(black_box(*k), 3);
            }
            black_box(s.total())
        })
    });

    g.bench_function("lossy_counting/eps0.004", |b| {
        b.iter(|| {
            let mut s = LossyCounting::<u64>::new(0.004);
            for k in &ks {
                s.update(black_box(*k), 3);
            }
            black_box(s.len())
        })
    });

    g.bench_function("bloom/64k", |b| {
        b.iter(|| {
            let mut s = BloomFilter::<u64>::new(1 << 16, 4, 1);
            for k in &ks {
                s.insert(black_box(k));
            }
            black_box(s.inserted())
        })
    });

    let rate = DecayRate::from_half_life(TimeSpan::from_secs(5));
    g.bench_function("tdbf_on_demand/4096x4", |b| {
        b.iter(|| {
            let mut s = OnDemandTdbf::<u64>::new(4096, 4, rate, 1);
            for (i, k) in ks.iter().enumerate() {
                s.insert(black_box(k), 3.0, Nanos::from_micros(i as u64 * 40));
            }
            black_box(s.cell_count())
        })
    });

    g.bench_function("tdbf_sweeping/4096x4", |b| {
        b.iter(|| {
            let mut s = SweepingTdbf::<u64>::new(4096, 4, rate, TimeSpan::from_millis(100), 1);
            for (i, k) in ks.iter().enumerate() {
                s.insert(black_box(k), 3.0, Nanos::from_micros(i as u64 * 40));
            }
            black_box(s.sweeps())
        })
    });

    g.bench_function("sliding_window_summary/10k", |b| {
        b.iter(|| {
            let mut s = SlidingWindowSummary::<u64>::new(10_000, 10, 64);
            for k in &ks {
                s.insert(black_box(*k));
            }
            black_box(s.items_seen())
        })
    });

    g.bench_function("exp_histogram/eps0.05", |b| {
        b.iter(|| {
            let mut s = ExpHistogram::new(0.05, TimeSpan::from_secs(10));
            for i in 0..N {
                s.insert(Nanos::from_micros(i * 40));
            }
            black_box(s.bucket_count())
        })
    });
    g.finish();

    // Query costs on populated structures.
    let mut g = c.benchmark_group("sketch_query");
    g.sample_size(30);
    let mut cms = CountMinSketch::<u64>::new(1024, 4, 1);
    let mut ss = SpaceSaving::<u64>::new(256);
    let mut tdbf = OnDemandTdbf::<u64>::new(4096, 4, rate, 1);
    for (i, k) in ks.iter().enumerate() {
        cms.update(k, 3);
        ss.update(*k, 3);
        tdbf.insert(k, 3.0, Nanos::from_micros(i as u64 * 40));
    }
    let now = Nanos::from_secs(5);
    g.bench_function("count_min_estimate", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..1000u64 {
                acc += cms.estimate(black_box(&k));
            }
            black_box(acc)
        })
    });
    g.bench_function("space_saving_heavy_hitters", |b| {
        b.iter(|| black_box(ss.heavy_hitters(black_box(1000))))
    });
    g.bench_function("tdbf_estimate", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for k in 0..1000u64 {
                acc += tdbf.estimate(black_box(&k), now);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sketches);
criterion_main!(benches);
