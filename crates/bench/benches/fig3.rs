//! The Figure 3 pipeline as a benchmark: the micro-varied window run
//! (baseline + ten deltas, one pass) plus the Jaccard series.
//! Regenerating the figure itself is `cargo run --release -p
//! hhh-experiments --bin fig3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_analysis::jaccard_reports;
use hhh_bench::fixture;
use hhh_core::Threshold;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use hhh_window::{MicroVaried, Pipeline};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let horizon_s = 30u64;
    let pkts = fixture(horizon_s);
    let horizon = TimeSpan::from_secs(horizon_s);
    let base = TimeSpan::from_secs(10);
    let deltas: Vec<TimeSpan> = (1..=10).map(|k| TimeSpan::from_millis(k * 10)).collect();
    let threshold = Threshold::percent(5.0);

    let mut g = c.benchmark_group("fig3_pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pkts.len() as u64));
    // Both hierarchy granularities: the byte hierarchy is the cheap
    // one, the bit hierarchy is what the experiment uses.
    for (name, levels) in [("bytes", 8u8), ("bits", 1u8)] {
        g.bench_with_input(BenchmarkId::new("microvaried", name), &levels, |b, &gran| {
            let h = Ipv4Hierarchy::new(gran);
            b.iter(|| {
                let out = Pipeline::new(pkts.iter().copied())
                    .engine(MicroVaried::new(&h, horizon, base, &deltas, threshold, |p| p.src))
                    .collect()
                    .run();
                let baseline = &out[0];
                let sims: Vec<f64> = (0..deltas.len())
                    .flat_map(|i| {
                        baseline
                            .iter()
                            .zip(&out[1 + i])
                            .map(|(b, v)| jaccard_reports(b, v))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                black_box(sims)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
