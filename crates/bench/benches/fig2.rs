//! The Figure 2 pipeline as a benchmark: one sliding-exact pass over a
//! day slice plus the hidden-HHH analysis, at each of the paper's
//! window sizes. Regenerating the full figure is `cargo run --release
//! -p hhh-experiments --bin fig2`; this target tracks the *cost* of
//! that measurement so pipeline regressions show up in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_analysis::hidden::hidden_hhh;
use hhh_bench::fixture;
use hhh_core::Threshold;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use hhh_window::{Pipeline, SlidingExact};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let horizon_s = 30u64;
    let pkts = fixture(horizon_s);
    let horizon = TimeSpan::from_secs(horizon_s);
    let step = TimeSpan::from_secs(1);
    let thresholds = [Threshold::percent(1.0), Threshold::percent(5.0), Threshold::percent(10.0)];
    let h = Ipv4Hierarchy::bytes();

    let mut g = c.benchmark_group("fig2_pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(pkts.len() as u64));
    for window_s in [5u64, 10, 20] {
        g.bench_with_input(
            BenchmarkId::new("sliding_plus_hidden", format!("{window_s}s")),
            &window_s,
            |b, &window_s| {
                let window = TimeSpan::from_secs(window_s);
                b.iter(|| {
                    let sliding = Pipeline::new(pkts.iter().copied())
                        .engine(SlidingExact::new(&h, horizon, window, step, &thresholds, |p| {
                            p.src
                        }))
                        .collect()
                        .run();
                    let epw = window / step;
                    let mut out = Vec::new();
                    for per_threshold in &sliding {
                        let disjoint: Vec<_> =
                            per_threshold.iter().filter(|r| r.index % epw == 0).cloned().collect();
                        out.push(hidden_hhh(per_threshold, &disjoint).hidden_fraction);
                    }
                    black_box(out)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
