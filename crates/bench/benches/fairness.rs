//! The criterion mirror of the PR-8 same-memory fairness shoot-out
//! (`scale -- fairness`): every snapshot-capable detector kind fitted
//! under the same provisioned-state budget, timed on the identical
//! batched stream — plus the MVPipe depth-flatness pair (byte-level
//! IPv4, H = 5, vs hextet-level IPv6, H = 9), which must land within a
//! whisker of each other because the update rule touches exactly one
//! bucket per packet at any depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hhh_bench::fixture;
use hhh_core::{
    ContinuousDetector, ExactHhh, HhhDetector, MvPipeHhh, Rhhh, SpaceSavingHhh, TdbfHhh,
    TdbfHhhConfig,
};
use hhh_hierarchy::{Ipv4Hierarchy, Ipv6Hierarchy};
use hhh_nettypes::{Nanos, TimeSpan};
use hhh_window::DEFAULT_BATCH;
use std::hint::black_box;

/// The shared provisioned-state budget, matching
/// `hhh_experiments::fairness::FAIRNESS_BUDGET_BYTES` (the bench crate
/// deliberately has no dependency on the experiment harness).
const BUDGET_BYTES: usize = 128 * 1024;

/// The largest integer parameter whose provisioned state stays within
/// the budget — the same maximal fit the shoot-out uses.
fn fit_param(bytes_at: impl Fn(usize) -> usize) -> usize {
    if bytes_at(1) > BUDGET_BYTES {
        return 1;
    }
    let (mut lo, mut hi) = (1usize, 2usize);
    while bytes_at(hi) <= BUDGET_BYTES {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if bytes_at(mid) <= BUDGET_BYTES {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn tdbf_config(cells_per_level: usize) -> TdbfHhhConfig {
    TdbfHhhConfig {
        cells_per_level,
        hashes: 2,
        half_life: TimeSpan::from_secs(4),
        candidates_per_level: 64,
        admit_fraction: 0.001,
        seed: 0x7DBF,
    }
}

fn bench_fairness(c: &mut Criterion) {
    let pkts = fixture(4);
    let batch: Vec<(u32, u64)> = pkts.iter().map(|p| (p.src, p.wire_len as u64)).collect();
    let stamped: Vec<(Nanos, u32, u64)> =
        pkts.iter().map(|p| (p.ts, p.src, p.wire_len as u64)).collect();
    let h = Ipv4Hierarchy::bytes();

    let ss_cap = fit_param(|cap| HhhDetector::state_bytes(&SpaceSavingHhh::new(h, cap)));
    let rhhh_cap = fit_param(|cap| HhhDetector::state_bytes(&Rhhh::new(h, cap, 0x5EED)));
    let mv_buckets = fit_param(|b| HhhDetector::state_bytes(&MvPipeHhh::new(h, b)));
    let tdbf_cells =
        fit_param(|cells| ContinuousDetector::state_bytes(&TdbfHhh::new(h, tdbf_config(cells))));

    let mut g = c.benchmark_group("fairness");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.sample_size(20);

    g.bench_function("exact", |b| {
        b.iter(|| {
            let mut d = ExactHhh::new(h);
            for chunk in batch.chunks(DEFAULT_BATCH) {
                HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut d, black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.bench_function("ss-hhh", |b| {
        b.iter(|| {
            let mut d = SpaceSavingHhh::new(h, ss_cap);
            for chunk in batch.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.bench_function("rhhh", |b| {
        b.iter(|| {
            let mut d = Rhhh::new(h, rhhh_cap, 0x5EED);
            for chunk in batch.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.bench_function("mvpipe", |b| {
        b.iter(|| {
            let mut d = MvPipeHhh::new(h, mv_buckets);
            for chunk in batch.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.bench_function("tdbf-hhh", |b| {
        b.iter(|| {
            let mut d = TdbfHhh::new(h, tdbf_config(tdbf_cells));
            for chunk in stamped.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.observed_weight())
        })
    });
    g.finish();

    // Depth flatness: the same stream through MVPipe at H = 5 and
    // H = 9 — one bucket probe per packet either way. Sliced so both
    // input streams stay cache-resident (16 B vs 32 B per packet):
    // the rows then measure the update path, not the DRAM streaming
    // cost of wider items, which is a width cost every detector pays
    // and has nothing to do with hierarchy depth. Each side's pipe is
    // fitted to the shared byte budget, and the detector is warmed
    // once outside the timer so the rows measure the steady-state
    // update rule rather than the one-time pipe-fill transient.
    let depth_slice = pkts.len().min(32_768);
    let batch = batch[..depth_slice].to_vec();
    let v6: Vec<(u128, u64)> = batch
        .iter()
        .map(|&(s, w)| {
            let s = s as u128;
            ((s << 96) | (s << 64) | (s << 32) | s, w)
        })
        .collect();
    let h6 = Ipv6Hierarchy::hextets();
    let mv_buckets6 = fit_param(|b| HhhDetector::state_bytes(&MvPipeHhh::new(h6, b)));
    let mut g = c.benchmark_group("fairness_depth");
    g.throughput(Throughput::Elements(depth_slice as u64));
    g.sample_size(20);
    g.bench_with_input(BenchmarkId::new("mvpipe", "ipv4-h5"), &batch, |b, batch| {
        let mut d = MvPipeHhh::new(h, mv_buckets);
        for chunk in batch.chunks(DEFAULT_BATCH) {
            d.observe_batch(chunk);
        }
        b.iter(|| {
            for chunk in batch.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.bench_with_input(BenchmarkId::new("mvpipe", "ipv6-h9"), &v6, |b, v6| {
        let mut d = MvPipeHhh::new(h6, mv_buckets6);
        for chunk in v6.chunks(DEFAULT_BATCH) {
            d.observe_batch(chunk);
        }
        b.iter(|| {
            for chunk in v6.chunks(DEFAULT_BATCH) {
                d.observe_batch(black_box(chunk));
            }
            black_box(d.total())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fairness);
criterion_main!(benches);
