//! The match-action pipeline model's overhead: the constrained
//! programs against their unconstrained references. The delta is the
//! cost of the discipline bookkeeping (begin_packet, access tracking)
//! plus, for the TDBF, integer vs floating-point decay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hhh_bench::fixture;
use hhh_core::HashPipe;
use hhh_dataplane::programs::{DpHashPipe, DpTdbf};
use hhh_nettypes::TimeSpan;
use hhh_sketches::{DecayRate, OnDemandTdbf};
use std::hint::black_box;

fn bench_dataplane(c: &mut Criterion) {
    let pkts = fixture(4);
    let rate = DecayRate::from_half_life(TimeSpan::from_secs(5));

    let mut g = c.benchmark_group("dataplane_vs_reference");
    g.sample_size(20);
    g.throughput(Throughput::Elements(pkts.len() as u64));

    g.bench_function("hashpipe_reference", |b| {
        b.iter(|| {
            let mut d = HashPipe::<u32>::new(4, 1024, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64);
            }
            black_box(d.total())
        })
    });

    g.bench_function("hashpipe_pipeline_model", |b| {
        b.iter(|| {
            let mut d = DpHashPipe::new(4, 1024, 7);
            for p in &pkts {
                d.observe(black_box(p.src), p.wire_len as u64).expect("discipline");
            }
            black_box(d.resources().max_register_accesses)
        })
    });

    g.bench_function("tdbf_reference_float", |b| {
        b.iter(|| {
            let mut d = OnDemandTdbf::<u32>::new(4096, 4, rate, 7);
            for p in &pkts {
                d.insert(black_box(&p.src), p.wire_len as f64, p.ts);
            }
            black_box(d.cell_count())
        })
    });

    g.bench_function("tdbf_pipeline_model_fixed", |b| {
        b.iter(|| {
            let mut d = DpTdbf::new(4096, 4, rate, TimeSpan::from_millis(1), 7);
            for p in &pkts {
                d.insert(black_box(p.src), p.wire_len as u64, p.ts).expect("discipline");
            }
            black_box(d.resources().max_register_accesses)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dataplane);
criterion_main!(benches);
