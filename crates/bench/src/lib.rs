//! # hhh-bench
//!
//! Criterion benchmarks — one bench target per paper artifact plus
//! micro-benchmarks for every algorithm layer:
//!
//! | target | measures |
//! |--------|----------|
//! | `fig2` | the Figure 2 pipeline (sliding-exact run + hidden-HHH analysis) |
//! | `fig3` | the Figure 3 pipeline (micro-varied window run + Jaccard) |
//! | `detectors` | per-packet update cost of every HHH/HH detector (the §3 "performance" axis) |
//! | `sketches` | update/query cost of each sketch primitive |
//! | `windows` | the window engines themselves (disjoint vs sliding vs micro-varied) |
//! | `dataplane` | the pipeline-model programs vs their unconstrained references |
//!
//! Run all with `cargo bench --workspace`, or a single target with
//! e.g. `cargo bench -p hhh-bench --bench detectors`.
//!
//! This library exposes the shared fixture (a deterministic packet
//! batch) so all targets measure against identical traffic.

#![forbid(unsafe_code)]

use hhh_nettypes::{PacketRecord, TimeSpan};
use hhh_trace::{scenarios, TraceGenerator};

/// A deterministic packet batch: `secs` seconds of day-0 traffic.
pub fn fixture(secs: u64) -> Vec<PacketRecord> {
    TraceGenerator::new(scenarios::day_trace(0, TimeSpan::from_secs(secs)), scenarios::day_seed(0))
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_is_deterministic_and_nonempty() {
        let a = super::fixture(1);
        let b = super::fixture(1);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }
}
