//! Golden and property tests for the loadgen scorer and the planted
//! ground truth: exact numbers for the pure scorer, a known-answer
//! scenario, and a property that the exact detector always recovers a
//! synthesized flood at its planted rate.

use hhh_aggd::scenario::{distagg_threshold, hierarchy, single_process_reports_on, Kind};
use hhh_core::{ExactHhh, HhhDetector};
use hhh_loadgen::scenario::{self, ddos_flood_with, offset_net_prefix, FloodSpec};
use hhh_loadgen::score::{
    detect_time, metric_value, parse_report_windows, score_windows, ReportWindow,
};
use hhh_nettypes::{Ipv4Prefix, Nanos, TimeSpan};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn pfx(s: &str) -> Ipv4Prefix {
    s.parse().expect("test prefix")
}

fn set(prefixes: &[&str]) -> BTreeSet<Ipv4Prefix> {
    prefixes.iter().map(|s| pfx(s)).collect()
}

fn window(start_s: u64, end_s: u64, prefixes: &[&str]) -> ReportWindow {
    ReportWindow {
        start: Nanos::from_nanos(start_s * 1_000_000_000),
        end: Nanos::from_nanos(end_s * 1_000_000_000),
        total: 1,
        prefixes: set(prefixes),
    }
}

#[test]
fn report_windows_parse_the_daemon_ndjson() {
    let body = concat!(
        "{\"type\":\"report\",\"series\":0,\"index\":0,\"start_ns\":0,\
         \"end_ns\":5000000000,\"total\":77,\
         \"hhhs\":[{\"prefix\":\"10.0.0.0/8\",\"level\":3,\"estimate\":50,\"discounted\":50},\
         {\"prefix\":\"10.1.0.0/16\",\"level\":2,\"estimate\":20,\"discounted\":20}]}\n",
        "{\"type\":\"state\",\"at_ns\":5000000000,\"start_ns\":0,\
         \"snapshot\":{\"kind\":\"exact\",\"total\":77}}\n",
        "{\"type\":\"report\",\"series\":0,\"index\":1,\"start_ns\":5000000000,\
         \"end_ns\":10000000000,\"total\":3,\"hhhs\":[]}\n",
    );
    let windows = parse_report_windows(body).expect("parses");
    assert_eq!(windows.len(), 2, "state lines are skipped");
    assert_eq!(windows[0].total, 77);
    assert_eq!(windows[0].prefixes, set(&["10.0.0.0/8", "10.1.0.0/16"]));
    assert_eq!(windows[1].start, Nanos::from_nanos(5_000_000_000));
    assert!(windows[1].prefixes.is_empty());

    assert!(parse_report_windows("{\"type\":\"report\"}").is_err(), "missing fields error");
    assert!(parse_report_windows("not json").is_err());
}

#[test]
fn window_scoring_is_exact() {
    let reference =
        vec![window(0, 5, &["10.0.0.0/8", "10.1.0.0/16"]), window(5, 10, &["10.0.0.0/8"])];
    // First window: one hit, one miss, one false alarm. Second window
    // never observed: its truth prefix counts as missed.
    let observed = vec![window(0, 5, &["10.0.0.0/8", "192.168.0.0/16"])];
    let acc = score_windows(&reference, &observed);
    assert_eq!((acc.tp, acc.fp, acc.fn_), (1, 1, 2));
    assert!((acc.precision() - 0.5).abs() < 1e-12);
    assert!((acc.recall() - 1.0 / 3.0).abs() < 1e-12);

    // A perfect pass scores perfectly.
    let acc = score_windows(&reference, &reference.clone());
    assert_eq!((acc.tp, acc.fp, acc.fn_), (3, 0, 0));
    assert_eq!(acc.precision(), 1.0);
    assert_eq!(acc.recall(), 1.0);
}

#[test]
fn detect_time_finds_the_first_covering_poll() {
    let polls = vec![
        (0.5, set(&[])),
        (1.0, set(&["10.0.0.0/8"])),
        (1.5, set(&["10.0.0.0/8", "10.1.0.0/16"])),
    ];
    let target = set(&["10.0.0.0/8", "10.1.0.0/16"]);
    assert_eq!(detect_time(&polls, &target, 1.0), Some(1.5));
    assert_eq!(detect_time(&polls, &target, 0.5), Some(1.0));
    assert_eq!(detect_time(&polls, &set(&["172.16.0.0/16"]), 1.0), None);
    assert_eq!(detect_time(&polls, &set(&[]), 1.0), None, "nothing planted is not a detection");
}

#[test]
fn metric_values_parse_from_prometheus_text() {
    let body = "# HELP aggd_frames_total Frames.\n\
                # TYPE aggd_frames_total counter\n\
                aggd_frames_total 42\n\
                aggd_http_accept_errors_total 0\n\
                aggd_fold_duration_seconds{quantile=\"0.5\"} 0.001\n";
    assert_eq!(metric_value(body, "aggd_frames_total"), Some(42.0));
    assert_eq!(metric_value(body, "aggd_http_accept_errors_total"), Some(0.0));
    assert_eq!(metric_value(body, "aggd_fold_duration_seconds"), None, "labelled lines no match");
    assert_eq!(metric_value(body, "aggd_frames"), None, "prefixes of a name no match");
}

/// The golden scenario: a 10 s ddos-flood at the default spec must
/// plant exactly 38.2.0.0/16 (network offset 117), at a share over the
/// report threshold, inside the oracle truth, and the per-window exact
/// oracle must surface it in every window at/after the attack onset.
#[test]
fn golden_flood_plants_known_truth() {
    let duration = TimeSpan::from_secs(10);
    let s = scenario::ddos_flood(duration, scenario::SUITE_SEED);
    assert_eq!(s.name, "ddos-flood");
    assert_eq!(s.truth.planted.len(), 1);
    let planted = &s.truth.planted[0];
    assert_eq!(planted.prefix, pfx("38.2.0.0/16"));
    assert_eq!(planted.prefix, offset_net_prefix(117));
    assert!(
        planted.share >= s.threshold_pct / 100.0,
        "planted share {} under the {}% threshold — the scenario is undetectable",
        planted.share,
        s.threshold_pct
    );
    assert!(planted.share < 0.2, "flood share {} should stay a minority", planted.share);
    assert!(s.truth.truth.contains(&planted.prefix), "oracle truth must include the plant");
    assert_eq!(
        s.truth.legit_bytes + s.truth.attack_bytes,
        s.truth.total_bytes,
        "legit/attack split must partition the trace"
    );
    assert!(s.truth.attack_bytes > 0);
    assert_eq!(s.truth.total_packets as usize, s.packets.len());
    // Onset at 0.3 × 10 s = 3 s into the trace.
    assert_eq!(planted.onset, Nanos::ZERO + TimeSpan::from_secs(3));

    // Per-window: the exact oracle surfaces the plant in every window
    // that overlaps the attack (onset 3 s, length 4 s ⇒ both 5 s
    // windows), and the reported estimate in a window never exceeds
    // the planted total.
    let windows = single_process_reports_on(Kind::Exact, &s.packets, s.horizon);
    assert_eq!(windows.len(), 2);
    for w in &windows {
        assert!(
            w.prefix_set().contains(&planted.prefix),
            "window {}..{} misses the planted prefix",
            w.start,
            w.end
        );
    }
}

#[test]
fn every_suite_scenario_composes_with_consistent_truth() {
    let duration = TimeSpan::from_secs(10);
    let all = scenario::all(duration, scenario::SUITE_SEED);
    assert_eq!(all.len(), scenario::NAMES.len());
    for (s, name) in all.iter().zip(scenario::NAMES) {
        assert_eq!(s.name, name);
        assert!(!s.packets.is_empty(), "{name}: empty trace");
        assert_eq!(s.truth.legit_bytes + s.truth.attack_bytes, s.truth.total_bytes, "{name}");
        for p in &s.truth.planted {
            assert!(p.share > 0.0, "{name}: planted {} carries no bytes", p.prefix);
            assert!(p.packets > 0, "{name}");
        }
        for pair in s.packets.windows(2) {
            assert!(pair[0].ts <= pair[1].ts, "{name}: merged trace out of order");
        }
    }
    assert!(scenario::by_name("no-such", duration, 1).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the flood's shape, the exact detector over the merged
    /// trace recovers the planted prefix with an estimate equal to the
    /// measured planted bytes — ground truth and detector agree on the
    /// plant, always.
    #[test]
    fn exact_detector_recovers_any_planted_flood(
        offset in 80usize..200,
        bots in 50usize..400,
        attack_pps in 8_000f64..14_000.0,
        seed in 0u64..1_000,
    ) {
        let spec = FloodSpec { offset, bots, attack_pps, ..FloodSpec::default() };
        let s = ddos_flood_with(TimeSpan::from_secs(10), seed, &spec);
        let planted = &s.truth.planted[0];
        prop_assert_eq!(planted.prefix, offset_net_prefix(offset));
        prop_assert!(planted.share >= 0.01, "share {} fell under threshold", planted.share);

        let mut oracle = ExactHhh::new(hierarchy());
        for p in &s.packets {
            oracle.observe(p.src, p.wire_len as u64);
        }
        let report = oracle.report(distagg_threshold());
        let hit = report.iter().find(|r| r.prefix == planted.prefix);
        prop_assert!(hit.is_some(), "exact report misses the planted {}", planted.prefix);
        prop_assert_eq!(
            hit.expect("checked").estimate,
            planted.bytes,
            "exact estimate must equal the measured planted bytes"
        );
    }
}
