//! Scenario synthesis: attack-over-baseline traffic mixes with
//! controllable hierarchy shape and **machine-readable planted ground
//! truth**.
//!
//! Every scenario is a legit baseline stream plus zero or more attack
//! streams, each attack confined to one prefix of the IPv4 byte
//! hierarchy (a /16 botnet, a /24 scanner block). The composer merges
//! the streams, then *measures* the ground truth on the merged trace —
//! planted bytes/packets/share are exact counts over the packets
//! actually driven, not the model's expectations — and runs the
//! whole-trace [`ExactHhh`] oracle at the scenario threshold, keeping
//! the legit-vs-attack byte split separate (the snippet-3 idiom: one
//! counter for everything, one for what the defender should find).
//!
//! Everything is deterministic given `(duration, seed)` — the same
//! scenario always plants the same bytes at the same prefixes.

use hhh_aggd::scenario::{distagg_threshold, hierarchy, DISTAGG_WINDOW};
use hhh_core::{ExactHhh, HhhDetector, Threshold};
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord, TimeSpan};
use hhh_trace::{
    merge_streams, scenarios, shift_stream, PacketSizeMix, TraceGenerator, TrafficModel,
};
use std::collections::BTreeSet;

/// Base seed of the suite (each scenario derives its own from it).
pub const SUITE_SEED: u64 = 0x10AD;

/// One planted attack aggregate, measured on the merged trace.
#[derive(Clone, Debug)]
pub struct Planted {
    /// The prefix the attack is confined to.
    pub prefix: Ipv4Prefix,
    /// When the attack's first packet can appear.
    pub onset: Nanos,
    /// Exact bytes under `prefix` in the merged trace.
    pub bytes: u64,
    /// Exact packets under `prefix` in the merged trace.
    pub packets: u64,
    /// `bytes` as a fraction of the trace's total bytes.
    pub share: f64,
}

/// What a scorer may compare detector output against.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// The planted attack aggregates (empty for pure-baseline mixes).
    pub planted: Vec<Planted>,
    /// The whole-trace [`ExactHhh`] oracle report at the scenario
    /// threshold.
    pub truth: BTreeSet<Ipv4Prefix>,
    /// Bytes from the baseline streams.
    pub legit_bytes: u64,
    /// Bytes from the attack streams.
    pub attack_bytes: u64,
    /// Merged trace totals.
    pub total_packets: u64,
    /// Merged trace total bytes.
    pub total_bytes: u64,
}

/// A ready-to-drive scenario: the merged packet stream plus its truth.
pub struct Scenario {
    /// Stable CLI / report name (`ddos-flood`…).
    pub name: &'static str,
    /// One-line description for tables and docs.
    pub summary: &'static str,
    /// The merged, time-sorted packet stream.
    pub packets: Vec<PacketRecord>,
    /// Trace horizon (the pipelines' window schedule spans it).
    pub horizon: TimeSpan,
    /// Report threshold the truth was computed at.
    pub threshold: Threshold,
    /// Threshold as a percentage (for query strings and reports).
    pub threshold_pct: f64,
    /// The measured ground truth.
    pub truth: GroundTruth,
}

/// One attack stream before composition.
struct Attack {
    packets: Vec<PacketRecord>,
    prefix: Ipv4Prefix,
    onset: Nanos,
}

/// A fraction of a span, rounded to whole nanoseconds.
fn frac(d: TimeSpan, f: f64) -> TimeSpan {
    TimeSpan::from_secs_f64(d.as_secs_f64() * f)
}

/// The /16 the trace generator places `network_offset`'s first network
/// in: `oct1 = 1 + (offset % 40)`, `oct2 = offset / 40`. Keeping this
/// in one place (and asserting it in [`compose`]) guards against the
/// generator's address derivation drifting under us.
pub fn offset_net_prefix(offset: usize) -> Ipv4Prefix {
    let oct1 = 1 + (offset % 40) as u32;
    let oct2 = (offset / 40) as u32;
    Ipv4Prefix::new((oct1 << 24) | (oct2 << 16), 16)
}

/// Collapse a packet's source into one /24 of its /16 (zero the third
/// octet) — how the scan scenarios confine scanners to a single /24.
fn into_slash24(p: PacketRecord) -> PacketRecord {
    PacketRecord { src: (p.src & 0xFFFF_0000) | (p.src & 0xFF), ..p }
}

/// The suite's baseline: ISP-like heavy-tailed background traffic in
/// the low address space (networks 0..64 ⇒ first two /8 rows).
fn baseline(duration: TimeSpan, pps: f64) -> TrafficModel {
    TrafficModel {
        duration,
        sources: 1_500,
        total_pps: pps,
        networks: 64,
        ..TrafficModel::default()
    }
}

/// Merge attack streams over a baseline and measure the ground truth.
fn compose(
    name: &'static str,
    summary: &'static str,
    horizon: TimeSpan,
    legit: Vec<PacketRecord>,
    attacks: Vec<Attack>,
) -> Scenario {
    let legit_bytes: u64 = legit.iter().map(|p| p.wire_len as u64).sum();
    let attack_bytes: u64 =
        attacks.iter().flat_map(|a| a.packets.iter()).map(|p| p.wire_len as u64).sum();
    let mut merged = legit;
    for attack in &attacks {
        for p in &attack.packets {
            assert!(
                attack.prefix.contains_addr(p.src),
                "{name}: attack packet src outside its planted prefix — \
                 the generator's address derivation moved"
            );
        }
        merged = merge_streams(merged.into_iter(), attack.packets.iter().copied()).collect();
    }
    let total_bytes = legit_bytes + attack_bytes;
    let total_packets = merged.len() as u64;

    let planted = attacks
        .iter()
        .map(|a| {
            let (mut bytes, mut packets) = (0u64, 0u64);
            for p in merged.iter().filter(|p| a.prefix.contains_addr(p.src)) {
                bytes += p.wire_len as u64;
                packets += 1;
            }
            Planted {
                prefix: a.prefix,
                onset: a.onset,
                bytes,
                packets,
                share: bytes as f64 / total_bytes as f64,
            }
        })
        .collect();

    let threshold = distagg_threshold();
    let mut oracle = ExactHhh::new(hierarchy());
    for p in &merged {
        oracle.observe(p.src, p.wire_len as u64);
    }
    let truth: BTreeSet<Ipv4Prefix> =
        oracle.report(threshold).into_iter().map(|r| r.prefix).collect();

    Scenario {
        name,
        summary,
        packets: merged,
        horizon,
        threshold,
        threshold_pct: 1.0,
        truth: GroundTruth {
            planted,
            truth,
            legit_bytes,
            attack_bytes,
            total_packets,
            total_bytes,
        },
    }
}

/// Knobs of the parameterized source-prefix flood — exposed so the
/// property tests can sweep them.
pub struct FloodSpec {
    /// Network offset of the botnet /16 (keep ≥ 80 to stay clear of
    /// the baseline's address space).
    pub offset: usize,
    /// Bots in the /16.
    pub bots: usize,
    /// Aggregate flood rate while the pulse is on.
    pub attack_pps: f64,
    /// Pulse onset as a fraction of the trace.
    pub onset_frac: f64,
    /// Pulse length as a fraction of the trace.
    pub len_frac: f64,
}

impl Default for FloodSpec {
    fn default() -> Self {
        FloodSpec { offset: 117, bots: 300, attack_pps: 9_000.0, onset_frac: 0.3, len_frac: 0.4 }
    }
}

/// A parameterized DDoS source-prefix flood over the baseline: bots
/// all in one /16, flat per-bot rates (no bot is a heavy hitter on its
/// own — the attack exists only as the hierarchical aggregate), small
/// constant packets at one victim.
pub fn ddos_flood_with(duration: TimeSpan, seed: u64, spec: &FloodSpec) -> Scenario {
    let legit: Vec<PacketRecord> =
        TraceGenerator::new(baseline(duration, 18_000.0), seed).collect();
    let pulse = frac(duration, spec.len_frac);
    let onset = Nanos::ZERO + frac(duration, spec.onset_frac);
    let attack_model = TrafficModel {
        duration: pulse,
        sources: spec.bots,
        zipf_alpha: 0.05, // flat: every bot individually modest
        total_pps: spec.attack_pps,
        bursty_fraction: 0.0,
        stable_top: 0,
        networks: 1,
        network_offset: spec.offset,
        net_alpha: 1.0,
        sizes: PacketSizeMix::constant(120),
        destinations: 1,
        ..TrafficModel::default()
    };
    let attack: Vec<PacketRecord> = shift_stream(
        TraceGenerator::new(attack_model, seed ^ 0xDD05),
        frac(duration, spec.onset_frac),
    )
    .collect();
    compose(
        "ddos-flood",
        "pulsed botnet flood from one /16, flat per-bot rates, one victim",
        duration,
        legit,
        vec![Attack { packets: attack, prefix: offset_net_prefix(spec.offset), onset }],
    )
}

/// The suite's `ddos-flood` entry at the default spec.
pub fn ddos_flood(duration: TimeSpan, seed: u64) -> Scenario {
    ddos_flood_with(duration, seed, &FloodSpec::default())
}

/// A flash crowd: mid-trace, two fresh /16s of new users ramp in and
/// shift the heavy-hitter population (the traffic-engineering
/// motivation — legitimate, but the hierarchy moves).
pub fn flash_crowd(duration: TimeSpan, seed: u64) -> Scenario {
    let legit: Vec<PacketRecord> =
        TraceGenerator::new(baseline(duration, 18_000.0), seed).collect();
    let onset = Nanos::ZERO + duration / 2;
    let crowd_model = TrafficModel {
        duration: duration / 2,
        sources: 400,
        zipf_alpha: 0.3,
        total_pps: 8_000.0,
        bursty_fraction: 0.0,
        stable_top: 0,
        networks: 2,
        network_offset: 200, // two fresh /16s: 1.5.0.0/16, 2.5.0.0/16
        net_alpha: 0.5,
        destinations: 4,
        ..TrafficModel::default()
    };
    let crowd: Vec<PacketRecord> =
        shift_stream(TraceGenerator::new(crowd_model, seed ^ 0xF1A5), duration / 2).collect();
    // The crowd spans two networks; split it so each planted /16 gets
    // its own measured row.
    let (net_a, net_b) = (offset_net_prefix(200), offset_net_prefix(201));
    let (crowd_a, crowd_b): (Vec<_>, Vec<_>) =
        crowd.into_iter().partition(|p| net_a.contains_addr(p.src));
    compose(
        "flash-crowd",
        "two fresh /16s of users ramp in mid-trace and shift the hierarchy",
        duration,
        legit,
        vec![
            Attack { packets: crowd_a, prefix: net_a, onset },
            Attack { packets: crowd_b, prefix: net_b, onset },
        ],
    )
}

/// A subnet scan: many scanners confined to one /24, tiny constant
/// probe packets for the whole trace — invisible per host, obvious at
/// the /24.
pub fn subnet_scan(duration: TimeSpan, seed: u64) -> Scenario {
    let legit: Vec<PacketRecord> =
        TraceGenerator::new(baseline(duration, 18_000.0), seed).collect();
    let scan_model = TrafficModel {
        duration,
        sources: 220,
        zipf_alpha: 0.05,
        total_pps: 6_000.0,
        bursty_fraction: 0.0,
        stable_top: 0,
        networks: 1,
        network_offset: 170,
        net_alpha: 1.0,
        sizes: PacketSizeMix::constant(64), // bare probe packets
        destinations: 2_000,                // sweeping a wide target block
        ..TrafficModel::default()
    };
    let scan: Vec<PacketRecord> =
        TraceGenerator::new(scan_model, seed ^ 0x5CA9).map(into_slash24).collect();
    let slash16 = offset_net_prefix(170);
    let slash24 = Ipv4Prefix::new(slash16.addr(), 24);
    compose(
        "subnet-scan",
        "scanner block confined to one /24, tiny probes across the whole trace",
        duration,
        legit,
        vec![Attack { packets: scan, prefix: slash24, onset: Nanos::ZERO }],
    )
}

/// A pure heavy-tail Zipf mix (day 1 of the acceptance traces): no
/// attack, ground truth is the oracle alone — the control scenario.
pub fn zipf_mix(duration: TimeSpan, seed: u64) -> Scenario {
    let model = scenarios::day_trace(1, duration);
    let legit: Vec<PacketRecord> =
        TraceGenerator::new(model, seed ^ scenarios::day_seed(1)).collect();
    compose(
        "zipf-mix",
        "heavy-tail ISP day trace, no attack: the oracle-only control",
        duration,
        legit,
        Vec::new(),
    )
}

/// A multi-vector blend: the baseline plus a /16 flood *and* a /24
/// scan, staggered onsets — the legit-vs-attack split the SNIPPETS
/// exemplar tracks, with two planted aggregates at different depths.
pub fn attack_blend(duration: TimeSpan, seed: u64) -> Scenario {
    let legit: Vec<PacketRecord> =
        TraceGenerator::new(baseline(duration, 18_000.0), seed).collect();
    let flood_model = TrafficModel {
        duration: duration / 2,
        sources: 250,
        zipf_alpha: 0.05,
        total_pps: 6_000.0,
        bursty_fraction: 0.0,
        stable_top: 0,
        networks: 1,
        network_offset: 117,
        net_alpha: 1.0,
        sizes: PacketSizeMix::constant(120),
        destinations: 1,
        ..TrafficModel::default()
    };
    let flood_onset = Nanos::ZERO + duration / 4;
    let flood: Vec<PacketRecord> =
        shift_stream(TraceGenerator::new(flood_model, seed ^ 0xDD05), duration / 4).collect();
    let scan_model = TrafficModel {
        duration: duration / 2,
        sources: 180,
        zipf_alpha: 0.05,
        total_pps: 5_000.0,
        bursty_fraction: 0.0,
        stable_top: 0,
        networks: 1,
        network_offset: 170,
        net_alpha: 1.0,
        sizes: PacketSizeMix::constant(64),
        destinations: 2_000,
        ..TrafficModel::default()
    };
    let scan_onset = Nanos::ZERO + duration / 2;
    let scan: Vec<PacketRecord> =
        shift_stream(TraceGenerator::new(scan_model, seed ^ 0x5CA9), duration / 2)
            .map(into_slash24)
            .collect();
    let slash16 = offset_net_prefix(170);
    compose(
        "attack-blend",
        "baseline + staggered /16 flood and /24 scan: two planted depths at once",
        duration,
        legit,
        vec![
            Attack { packets: flood, prefix: offset_net_prefix(117), onset: flood_onset },
            Attack {
                packets: scan,
                prefix: Ipv4Prefix::new(slash16.addr(), 24),
                onset: scan_onset,
            },
        ],
    )
}

/// Borderline bursty traffic: a large bursty fraction with ON sojourns
/// shorter than the window, the mechanism behind hidden HHHs — no
/// planted attack, the oracle is the truth, and the interesting score
/// is how the approximate kinds track a churning hierarchy.
pub fn hidden_burst(duration: TimeSpan, seed: u64) -> Scenario {
    let model = TrafficModel {
        duration,
        sources: 2_000,
        zipf_alpha: 1.05,
        total_pps: 22_000.0,
        bursty_fraction: 0.9,
        stable_top: 2,
        burst_on: TimeSpan::from_secs(2),
        burst_off: TimeSpan::from_secs(8),
        networks: 48,
        ..TrafficModel::default()
    };
    let legit: Vec<PacketRecord> = TraceGenerator::new(model, seed ^ 0xB0B5).collect();
    compose(
        "hidden-burst",
        "90% bursty sources with sub-window ON times: hidden-HHH churn",
        duration,
        legit,
        Vec::new(),
    )
}

/// The whole suite at a duration (rounded down to whole report
/// windows) and seed — the sweep order of `hhh-loadgen`.
pub fn all(duration: TimeSpan, seed: u64) -> Vec<Scenario> {
    let windows = (duration / DISTAGG_WINDOW).max(1);
    let d = DISTAGG_WINDOW * windows;
    vec![
        ddos_flood(d, seed),
        flash_crowd(d, seed.wrapping_add(1)),
        subnet_scan(d, seed.wrapping_add(2)),
        zipf_mix(d, seed.wrapping_add(3)),
        attack_blend(d, seed.wrapping_add(4)),
        hidden_burst(d, seed.wrapping_add(5)),
    ]
}

/// Every scenario name, in sweep order — for `--list` and validation.
pub const NAMES: [&str; 6] =
    ["ddos-flood", "flash-crowd", "subnet-scan", "zipf-mix", "attack-blend", "hidden-burst"];

/// Build one scenario by name.
pub fn by_name(name: &str, duration: TimeSpan, seed: u64) -> Option<Scenario> {
    let windows = (duration / DISTAGG_WINDOW).max(1);
    let d = DISTAGG_WINDOW * windows;
    match name {
        "ddos-flood" => Some(ddos_flood(d, seed)),
        "flash-crowd" => Some(flash_crowd(d, seed.wrapping_add(1))),
        "subnet-scan" => Some(subnet_scan(d, seed.wrapping_add(2))),
        "zipf-mix" => Some(zipf_mix(d, seed.wrapping_add(3))),
        "attack-blend" => Some(attack_blend(d, seed.wrapping_add(4))),
        "hidden-burst" => Some(hidden_burst(d, seed.wrapping_add(5))),
        _ => None,
    }
}
