//! # hhh-loadgen
//!
//! The closed-loop scenario suite: synthesize attack-over-baseline
//! traffic with **planted, machine-readable ground truth**
//! ([`scenario`]), drive it through real shard pipelines and the
//! socket transport into a live `hhh-aggd` ([`drive`]), and score what
//! the daemon served — per detector kind — against the truth
//! ([`score`]).
//!
//! Three questions per (scenario, kind):
//!
//! 1. **Was it right?** Window-by-window precision/recall/F1 of the
//!    daemon's `/hhh` answers against the unsharded exact oracle.
//! 2. **Was it fast?** Seconds from drive start until the planted
//!    attack prefixes were live in `/hhh` (time-to-detect), and the
//!    sustained pkts/s the shard feeders pushed before back-pressure
//!    (feeder stall seconds are reported alongside).
//! 3. **Did the front door hold?** `/metrics` is scraped continuously
//!    for the whole run; a single dropped scrape fails the sweep, and
//!    the run errors if `aggd_http_accept_errors_total` is missing —
//!    the hardened accept loop must be observable, not assumed.
//!
//! `hhh-loadgen` (the binary) sweeps the suite and emits the records
//! as a table, JSON lines (the `BENCH_pr9.json` schema), and CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod mitigate_drive;
pub mod scenario;
pub mod score;

pub use drive::{run_scenario, DriveOptions, ScenarioRun, ScrapeStats};
pub use mitigate_drive::{run_mitigate_scenario, MitigateRun};
pub use scenario::{GroundTruth, Planted, Scenario, SUITE_SEED};
pub use score::{
    detect_time, metric_value, parse_report_windows, score_windows, stream_metric_value, KindScore,
    MitigateKindScore, ReportWindow,
};

use hhh_mitigate::PolicyConfig;
use hhh_nettypes::TimeSpan;
use std::fmt::Write as _;

/// The reproducibility stamp carried on **every** JSON and CSV record
/// a sweep emits: enough to re-run the exact sweep that produced a
/// number found in a committed artifact.
#[derive(Clone, Debug)]
pub struct RunStamp {
    /// The suite seed the scenarios were synthesized from.
    pub seed: u64,
    /// `git rev-parse --short HEAD` at run time (`HHH_GIT_REV`
    /// overrides; `unknown` when neither is available).
    pub git_rev: String,
    /// Comma-free echo of the sweep configuration
    /// (`scale=… shards=… kinds=…`), safe to embed in CSV.
    pub config: String,
}

impl RunStamp {
    fn new(seed: u64, scale: LoadScale, opts: &DriveOptions) -> RunStamp {
        let kinds: Vec<&str> = opts.kinds.iter().map(|k| k.label()).collect();
        RunStamp {
            seed,
            git_rev: git_rev(),
            config: format!(
                "scale={} shards={} kinds={}",
                scale.label(),
                opts.shards,
                kinds.join("+")
            ),
        }
    }

    /// The stamp as trailing JSON-object fields (leading comma
    /// included), appended to every record.
    fn json_fields(&self) -> String {
        format!(
            ", \"seed\": {}, \"git_rev\": \"{}\", \"config\": \"{}\"",
            self.seed, self.git_rev, self.config
        )
    }
}

/// The working tree's short git revision, for stamping artifacts. The
/// `HHH_GIT_REV` environment variable overrides (CI sets it so stamps
/// survive shallow or detached checkouts); otherwise `git rev-parse`,
/// falling back to `unknown` outside a repository.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("HHH_GIT_REV") {
        if !rev.trim().is_empty() {
            return rev.trim().to_string();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Sweep size: how much trace each scenario synthesizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadScale {
    /// 20 s traces — CI-sized, seconds per scenario.
    Smoke,
    /// 60 s traces — local iteration.
    Quick,
    /// 240 s traces — the committed artifact.
    Paper,
}

impl LoadScale {
    /// Trace duration at this scale.
    pub fn duration(self) -> TimeSpan {
        match self {
            LoadScale::Smoke => TimeSpan::from_secs(20),
            LoadScale::Quick => TimeSpan::from_secs(60),
            LoadScale::Paper => TimeSpan::from_secs(240),
        }
    }

    /// The scale's report label.
    pub fn label(self) -> &'static str {
        match self {
            LoadScale::Smoke => "smoke",
            LoadScale::Quick => "quick",
            LoadScale::Paper => "paper",
        }
    }

    /// Parse a CLI scale word.
    pub fn parse(s: &str) -> Option<LoadScale> {
        match s {
            "smoke" => Some(LoadScale::Smoke),
            "quick" => Some(LoadScale::Quick),
            "paper" => Some(LoadScale::Paper),
            _ => None,
        }
    }
}

/// One scored scenario with everything the renderers need.
pub struct SweepRow {
    /// The scenario's name.
    pub scenario_name: &'static str,
    /// Planted prefixes rendered as `prefix@share%` strings.
    pub planted: Vec<String>,
    /// Legit/attack byte split.
    pub legit_bytes: u64,
    /// Bytes contributed by the attack streams.
    pub attack_bytes: u64,
    /// Merged trace packet count.
    pub total_packets: u64,
    /// The closed-loop result.
    pub run: ScenarioRun,
}

/// The sweep's collected output.
pub struct SweepResults {
    /// Scale the sweep ran at.
    pub scale: LoadScale,
    /// Report threshold (percent of total bytes).
    pub threshold_pct: f64,
    /// The reproducibility stamp on every emitted record.
    pub stamp: RunStamp,
    /// One row per scenario.
    pub rows: Vec<SweepRow>,
}

/// Run scenarios through the closed loop in order, stopping at the
/// first plumbing error. `names` of `None` sweeps the whole suite.
pub fn sweep(
    scale: LoadScale,
    seed: u64,
    names: Option<&[String]>,
    opts: &DriveOptions,
    mut progress: impl FnMut(&str),
) -> Result<SweepResults, String> {
    let duration = scale.duration();
    let scenarios: Vec<Scenario> = match names {
        None => scenario::all(duration, seed),
        Some(names) => names
            .iter()
            .map(|n| {
                scenario::by_name(n, duration, seed)
                    .ok_or_else(|| format!("unknown scenario `{n}` (see --list)"))
            })
            .collect::<Result<_, _>>()?,
    };
    let mut rows = Vec::new();
    let mut threshold_pct = 1.0;
    for s in &scenarios {
        progress(&format!(
            "{}: {} packets, {} planted prefixes",
            s.name,
            s.packets.len(),
            s.truth.planted.len()
        ));
        threshold_pct = s.threshold_pct;
        let run = run_scenario(s, opts).map_err(|e| format!("{}: {e}", s.name))?;
        rows.push(SweepRow {
            scenario_name: s.name,
            planted: s
                .truth
                .planted
                .iter()
                .map(|p| format!("{}@{:.2}%", p.prefix, p.share * 100.0))
                .collect(),
            legit_bytes: s.truth.legit_bytes,
            attack_bytes: s.truth.attack_bytes,
            total_packets: s.truth.total_packets,
            run,
        });
    }
    Ok(SweepResults { scale, threshold_pct, stamp: RunStamp::new(seed, scale, opts), rows })
}

fn fmt_detect(t: Option<f64>) -> String {
    match t {
        Some(s) => format!("{s:.2}s"),
        None => "-".into(),
    }
}

impl SweepResults {
    /// Human-readable summary table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<13} {:<9} {:>7} {:>7} {:>7} {:>8} {:>9} {:>12} {:>7}",
            "scenario", "kind", "prec", "recall", "f1", "detect", "windows", "pkts/s", "stall"
        );
        for row in &self.rows {
            for ks in &row.run.kinds {
                let _ = writeln!(
                    out,
                    "{:<13} {:<9} {:>7.4} {:>7.4} {:>7.4} {:>8} {:>4}/{:<4} {:>12.0} {:>6.2}s",
                    row.scenario_name,
                    ks.kind,
                    ks.accuracy.precision(),
                    ks.accuracy.recall(),
                    ks.accuracy.f1(),
                    fmt_detect(ks.time_to_detect),
                    ks.windows_observed,
                    ks.windows_expected,
                    ks.pkts_per_sec,
                    ks.stall_seconds,
                );
            }
            let planted =
                if row.planted.is_empty() { "none".to_string() } else { row.planted.join(" ") };
            let _ = writeln!(
                out,
                "  planted: {planted}  (legit {} B / attack {} B, {} scrapes, 0 dropped)",
                row.legit_bytes, row.attack_bytes, row.run.scrapes.scrapes
            );
        }
        out
    }

    /// The `BENCH_pr9.json` records: one `loadgen` line per
    /// (scenario, kind), one `loadgen_scrapes` line per scenario for
    /// the HTTP-plane health, one `loadgen_truth` line per scenario
    /// for the planted ground truth.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            for ks in &row.run.kinds {
                let detect = match ks.time_to_detect {
                    Some(t) => format!("{t:.3}"),
                    None => "null".into(),
                };
                let _ = writeln!(
                    out,
                    "{{\"experiment\": \"loadgen\", \"scale\": \"{}\", \"scenario\": \"{}\", \
                     \"detector\": \"{}\", \"shards\": {}, \"packets\": {}, \
                     \"windows\": {}, \"windows_expected\": {}, \
                     \"precision\": {:.6}, \"recall\": {:.6}, \"f1\": {:.6}, \
                     \"time_to_detect_s\": {}, \"detected\": {}, \
                     \"sustained_pkts_per_sec\": {:.1}, \"drive_seconds\": {:.6}, \
                     \"stall_seconds\": {:.6}, \"threshold_pct\": {}{}}}",
                    self.scale.label(),
                    row.scenario_name,
                    ks.kind,
                    ks.shards,
                    ks.packets,
                    ks.windows_observed,
                    ks.windows_expected,
                    ks.accuracy.precision(),
                    ks.accuracy.recall(),
                    ks.accuracy.f1(),
                    detect,
                    ks.detected,
                    ks.pkts_per_sec,
                    ks.drive_seconds,
                    ks.stall_seconds,
                    self.threshold_pct,
                    self.stamp.json_fields(),
                );
            }
            let s = &row.run.scrapes;
            let _ = writeln!(
                out,
                "{{\"experiment\": \"loadgen_scrapes\", \"scale\": \"{}\", \"scenario\": \"{}\", \
                 \"metrics_scrapes\": {}, \"metrics_scrape_failures\": {}, \
                 \"accept_errors_total\": {}, \"http_busy_total\": {}, \
                 \"frames_total\": {}, \"wall_seconds\": {:.3}{}}}",
                self.scale.label(),
                row.scenario_name,
                s.scrapes,
                s.failures,
                s.accept_errors_total,
                s.busy_total,
                s.frames_total,
                s.wall_seconds,
                self.stamp.json_fields(),
            );
            let planted: Vec<String> = row.planted.iter().map(|p| format!("\"{p}\"")).collect();
            let _ = writeln!(
                out,
                "{{\"experiment\": \"loadgen_truth\", \"scale\": \"{}\", \"scenario\": \"{}\", \
                 \"planted\": [{}], \"legit_bytes\": {}, \"attack_bytes\": {}, \
                 \"total_packets\": {}{}}}",
                self.scale.label(),
                row.scenario_name,
                planted.join(", "),
                row.legit_bytes,
                row.attack_bytes,
                row.total_packets,
                self.stamp.json_fields(),
            );
        }
        out
    }

    /// CSV of the per-(scenario, kind) rows.
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "scenario,detector,shards,packets,windows,windows_expected,precision,recall,f1,\
             time_to_detect_s,detected,sustained_pkts_per_sec,drive_seconds,stall_seconds,\
             seed,git_rev,config\n",
        );
        for row in &self.rows {
            for ks in &row.run.kinds {
                let detect = match ks.time_to_detect {
                    Some(t) => format!("{t:.3}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{:.1},{:.6},{:.6},{},{},{}",
                    row.scenario_name,
                    ks.kind,
                    ks.shards,
                    ks.packets,
                    ks.windows_observed,
                    ks.windows_expected,
                    ks.accuracy.precision(),
                    ks.accuracy.recall(),
                    ks.accuracy.f1(),
                    detect,
                    ks.detected,
                    ks.pkts_per_sec,
                    ks.drive_seconds,
                    ks.stall_seconds,
                    self.stamp.seed,
                    self.stamp.git_rev,
                    self.stamp.config,
                );
            }
        }
        out
    }
}

/// One mitigated scenario with everything the renderers need.
pub struct MitigateRow {
    /// The scenario's name.
    pub scenario_name: &'static str,
    /// Planted prefixes rendered as `prefix@share%` strings.
    pub planted: Vec<String>,
    /// Earliest planted onset, trace seconds (`None`: nothing planted).
    pub onset_s: Option<f64>,
    /// Legit/attack byte split of the offered trace.
    pub legit_bytes: u64,
    /// Bytes contributed by the attack streams.
    pub attack_bytes: u64,
    /// The closed-loop mitigation result.
    pub run: MitigateRun,
}

/// The mitigation sweep's collected output.
pub struct MitigateResults {
    /// Scale the sweep ran at.
    pub scale: LoadScale,
    /// Report threshold (percent of total bytes).
    pub threshold_pct: f64,
    /// The reproducibility stamp on every emitted record.
    pub stamp: RunStamp,
    /// One row per scenario.
    pub rows: Vec<MitigateRow>,
}

/// Run scenarios through the **mitigation** closed loop in order,
/// stopping at the first plumbing error. `names` of `None` sweeps the
/// whole suite.
pub fn mitigate_sweep(
    scale: LoadScale,
    seed: u64,
    names: Option<&[String]>,
    opts: &DriveOptions,
    policy: &PolicyConfig,
    mut progress: impl FnMut(&str),
) -> Result<MitigateResults, String> {
    let duration = scale.duration();
    let scenarios: Vec<Scenario> = match names {
        None => scenario::all(duration, seed),
        Some(names) => names
            .iter()
            .map(|n| {
                scenario::by_name(n, duration, seed)
                    .ok_or_else(|| format!("unknown scenario `{n}` (see --list)"))
            })
            .collect::<Result<_, _>>()?,
    };
    let mut rows = Vec::new();
    let mut threshold_pct = 1.0;
    for s in &scenarios {
        progress(&format!(
            "{}: {} packets, {} planted prefixes, mitigating",
            s.name,
            s.packets.len(),
            s.truth.planted.len()
        ));
        threshold_pct = s.threshold_pct;
        let run = run_mitigate_scenario(s, opts, policy).map_err(|e| format!("{}: {e}", s.name))?;
        rows.push(MitigateRow {
            scenario_name: s.name,
            planted: s
                .truth
                .planted
                .iter()
                .map(|p| format!("{}@{:.2}%", p.prefix, p.share * 100.0))
                .collect(),
            onset_s: s.truth.planted.iter().map(|p| p.onset).min().map(|o| o.as_secs_f64()),
            legit_bytes: s.truth.legit_bytes,
            attack_bytes: s.truth.attack_bytes,
            run,
        });
    }
    Ok(MitigateResults { scale, threshold_pct, stamp: RunStamp::new(seed, scale, opts), rows })
}

fn fmt_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{:.2}%", v * 100.0),
        None => "-".into(),
    }
}

fn json_ratio(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.6}"),
        None => "null".into(),
    }
}

impl MitigateResults {
    /// Human-readable summary table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<13} {:<9} {:<6} {:>8} {:>9} {:>9} {:>10} {:>6} {:>7}",
            "scenario",
            "kind",
            "action",
            "t_mit",
            "post-drop",
            "atk-drop",
            "collateral",
            "rules",
            "churn"
        );
        for row in &self.rows {
            for ks in &row.run.kinds {
                let _ = writeln!(
                    out,
                    "{:<13} {:<9} {:<6} {:>8} {:>9} {:>9} {:>9.4}% {:>6} {:>7}",
                    row.scenario_name,
                    ks.kind,
                    ks.first_rule_action.unwrap_or("-"),
                    fmt_detect(ks.time_to_mitigate),
                    fmt_ratio(ks.post_rule_drop_ratio()),
                    fmt_ratio(ks.attack_drop_ratio()),
                    ks.collateral_ratio() * 100.0,
                    ks.rules_fired,
                    ks.rule_churn,
                );
            }
            let planted =
                if row.planted.is_empty() { "none".to_string() } else { row.planted.join(" ") };
            let _ = writeln!(
                out,
                "  planted: {planted}  (legit {} B / attack {} B)",
                row.legit_bytes, row.attack_bytes
            );
        }
        out
    }

    /// The `BENCH_pr10.json` records: one `mitigate` line per
    /// (scenario, kind) and one `mitigate_truth` line per scenario.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            for ks in &row.run.kinds {
                let _ = writeln!(
                    out,
                    "{{\"experiment\": \"mitigate\", \"scale\": \"{}\", \"scenario\": \"{}\", \
                     \"detector\": \"{}\", \"shards\": {}, \"windows\": {}, \
                     \"attack_offered_bytes\": {}, \"attack_dropped_bytes\": {}, \
                     \"legit_offered_bytes\": {}, \"legit_dropped_bytes\": {}, \
                     \"attack_drop_ratio\": {}, \"post_rule_attack_drop_ratio\": {}, \
                     \"collateral_ratio\": {:.6}, \"time_to_mitigate_s\": {}, \
                     \"mitigated\": {}, \"first_rule_action\": {}, \
                     \"rules_fired\": {}, \"rules_expired\": {}, \"rule_churn\": {}, \
                     \"max_rules_active\": {}, \"daemon_rule_churn\": {}, \
                     \"packets\": {}, \"packets_dropped\": {}, \
                     \"drive_seconds\": {:.6}, \"threshold_pct\": {}{}}}",
                    self.scale.label(),
                    row.scenario_name,
                    ks.kind,
                    ks.shards,
                    ks.windows,
                    ks.attack_offered_bytes,
                    ks.attack_dropped_bytes,
                    ks.legit_offered_bytes,
                    ks.legit_dropped_bytes,
                    json_ratio(ks.attack_drop_ratio()),
                    json_ratio(ks.post_rule_drop_ratio()),
                    ks.collateral_ratio(),
                    json_ratio(ks.time_to_mitigate),
                    ks.mitigated,
                    match ks.first_rule_action {
                        Some(a) => format!("\"{a}\""),
                        None => "null".into(),
                    },
                    ks.rules_fired,
                    ks.rules_expired,
                    ks.rule_churn,
                    ks.max_rules_active,
                    json_ratio(ks.daemon_rule_churn),
                    ks.packets,
                    ks.packets_dropped,
                    ks.drive_seconds,
                    self.threshold_pct,
                    self.stamp.json_fields(),
                );
            }
            let planted: Vec<String> = row.planted.iter().map(|p| format!("\"{p}\"")).collect();
            let _ = writeln!(
                out,
                "{{\"experiment\": \"mitigate_truth\", \"scale\": \"{}\", \"scenario\": \"{}\", \
                 \"planted\": [{}], \"onset_s\": {}, \"legit_bytes\": {}, \
                 \"attack_bytes\": {}{}}}",
                self.scale.label(),
                row.scenario_name,
                planted.join(", "),
                json_ratio(row.onset_s),
                row.legit_bytes,
                row.attack_bytes,
                self.stamp.json_fields(),
            );
        }
        out
    }

    /// CSV of the per-(scenario, kind) rows.
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "scenario,detector,shards,windows,attack_offered_bytes,attack_dropped_bytes,\
             legit_offered_bytes,legit_dropped_bytes,attack_drop_ratio,\
             post_rule_attack_drop_ratio,collateral_ratio,time_to_mitigate_s,mitigated,\
             first_rule_action,rules_fired,rules_expired,rule_churn,max_rules_active,\
             packets,packets_dropped,drive_seconds,seed,git_rev,config\n",
        );
        for row in &self.rows {
            for ks in &row.run.kinds {
                let csv_opt = |r: Option<f64>| match r {
                    Some(v) => format!("{v:.6}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{},{:.6},{},{},{}",
                    row.scenario_name,
                    ks.kind,
                    ks.shards,
                    ks.windows,
                    ks.attack_offered_bytes,
                    ks.attack_dropped_bytes,
                    ks.legit_offered_bytes,
                    ks.legit_dropped_bytes,
                    csv_opt(ks.attack_drop_ratio()),
                    csv_opt(ks.post_rule_drop_ratio()),
                    ks.collateral_ratio(),
                    csv_opt(ks.time_to_mitigate),
                    ks.mitigated,
                    ks.first_rule_action.unwrap_or(""),
                    ks.rules_fired,
                    ks.rules_expired,
                    ks.rule_churn,
                    ks.max_rules_active,
                    ks.packets,
                    ks.packets_dropped,
                    ks.drive_seconds,
                    self.stamp.seed,
                    self.stamp.git_rev,
                    self.stamp.config,
                );
            }
        }
        out
    }
}
