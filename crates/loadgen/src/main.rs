//! `hhh-loadgen` — sweep the closed-loop scenario suite against a
//! live `hhh-aggd` (spawned in-process by default) and emit scores.

use hhh_aggd::scenario::Kind;
use hhh_loadgen::{mitigate_sweep, sweep, DriveOptions, LoadScale, SUITE_SEED};
use hhh_mitigate::PolicyConfig;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "\
usage: hhh-loadgen [smoke|quick|paper] [options]

Synthesizes the attack-over-baseline scenario suite, drives it through
shard pipelines into a live hhh-aggd, and scores each detector kind
against the planted ground truth.

options:
  --scenario NAME     run only NAME (repeatable; default: whole suite)
  --kind LABEL        drive only detector LABEL (repeatable;
                      default: exact ss-hhh rhhh mvpipe)
  --shards K          shards per kind (default 2)
  --seed N            suite seed (default 0x10AD)
  --daemon-http ADDR  score an already-running daemon (needs --daemon-frames)
  --daemon-frames ADDR  its frame port
  --out FILE          write JSON-lines records to FILE
  --csv FILE          write CSV to FILE
  --list              list scenarios and exit
  --mitigate          run the mitigation closed loop instead of the
                      detection score: packets pass a rule-table gate
                      fed by a policy engine ingesting the daemon's
                      own /hhh answers; scores attack bytes dropped,
                      legit collateral, and time-to-mitigate
  --mitigate-hysteresis M   policy: consecutive windows before a rule
  --mitigate-ttl SECONDS    policy: rule lifetime
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hhh-loadgen: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = LoadScale::Smoke;
    let mut names: Vec<String> = Vec::new();
    let mut kinds: Vec<Kind> = Vec::new();
    let mut opts = DriveOptions::default();
    let mut seed = SUITE_SEED;
    let mut out_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut daemon_http: Option<String> = None;
    let mut daemon_frames: Option<String> = None;
    let mut mitigate = false;
    let mut policy = PolicyConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match arg.as_str() {
            "smoke" | "quick" | "paper" => {
                scale = LoadScale::parse(&arg).expect("matched above");
            }
            "--scenario" => match value("--scenario") {
                Ok(v) => names.push(v),
                Err(e) => return fail(&e),
            },
            "--kind" => match value("--kind").map(|v| (Kind::parse(&v), v)) {
                Ok((Some(k), _)) => kinds.push(k),
                Ok((None, v)) => return fail(&format!("unknown kind `{v}`")),
                Err(e) => return fail(&e),
            },
            "--shards" => match value("--shards").map(|v| v.parse::<usize>()) {
                Ok(Ok(k)) if k >= 1 => opts.shards = k,
                _ => return fail("--shards needs a positive integer"),
            },
            "--seed" => match value("--seed").map(|v| v.parse::<u64>()) {
                Ok(Ok(s)) => seed = s,
                _ => return fail("--seed needs an integer"),
            },
            "--daemon-http" => match value("--daemon-http") {
                Ok(v) => daemon_http = Some(v),
                Err(e) => return fail(&e),
            },
            "--daemon-frames" => match value("--daemon-frames") {
                Ok(v) => daemon_frames = Some(v),
                Err(e) => return fail(&e),
            },
            "--out" => match value("--out") {
                Ok(v) => out_path = Some(v),
                Err(e) => return fail(&e),
            },
            "--csv" => match value("--csv") {
                Ok(v) => csv_path = Some(v),
                Err(e) => return fail(&e),
            },
            "--list" => {
                for name in hhh_loadgen::scenario::NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--mitigate" => mitigate = true,
            "--mitigate-hysteresis" => {
                match value("--mitigate-hysteresis").map(|v| v.parse::<u32>()) {
                    Ok(Ok(m)) if m >= 1 => policy.hysteresis = m,
                    _ => return fail("--mitigate-hysteresis needs a positive integer"),
                }
            }
            "--mitigate-ttl" => match value("--mitigate-ttl").map(|v| v.parse::<u64>()) {
                Ok(Ok(s)) if s >= 1 => policy.ttl = hhh_nettypes::TimeSpan::from_secs(s),
                _ => return fail("--mitigate-ttl needs whole seconds"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    match (daemon_http, daemon_frames) {
        (Some(http), Some(frames)) => opts.external = Some((frames, http)),
        (None, None) => {}
        _ => return fail("--daemon-http and --daemon-frames must be given together"),
    }
    if !kinds.is_empty() {
        opts.kinds = kinds;
    }

    let names = if names.is_empty() { None } else { Some(names.as_slice()) };
    let (table, json, csv) = if mitigate {
        match mitigate_sweep(scale, seed, names, &opts, &policy, |msg| eprintln!("loadgen: {msg}"))
        {
            Ok(r) => (r.table(), r.json_lines(), r.csv()),
            Err(e) => return fail(&e),
        }
    } else {
        match sweep(scale, seed, names, &opts, |msg| eprintln!("loadgen: {msg}")) {
            Ok(r) => (r.table(), r.json_lines(), r.csv()),
            Err(e) => return fail(&e),
        }
    };

    print!("{table}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes()))
        {
            return fail(&format!("write {path}: {e}"));
        }
        eprintln!("loadgen: wrote {path}");
    }
    if let Some(path) = csv_path {
        if let Err(e) = std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            return fail(&format!("write {path}: {e}"));
        }
        eprintln!("loadgen: wrote {path}");
    }
    ExitCode::SUCCESS
}
