//! Scoring: turn the daemon's `/hhh` report stream and `/metrics`
//! text into per-kind precision / recall / time-to-detect numbers
//! against a reference window schedule.
//!
//! Everything here is pure — no sockets, no clocks — so the golden
//! tests can pin exact numbers.

use hhh_analysis::SetAccuracy;
use hhh_core::snapshot::json::Json;
use hhh_nettypes::{Ipv4Prefix, Nanos};
use std::collections::BTreeSet;

/// One report window as parsed off the daemon's ndjson stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportWindow {
    /// Window start (trace time).
    pub start: Nanos,
    /// Window end (trace time).
    pub end: Nanos,
    /// Total weight folded into the window.
    pub total: u64,
    /// The reported HHH prefixes.
    pub prefixes: BTreeSet<Ipv4Prefix>,
}

/// Parse the daemon's `/hhh` body (one JSON object per line) into
/// report windows, ignoring non-`report` lines.
pub fn parse_report_windows(body: &str) -> Result<Vec<ReportWindow>, String> {
    let mut out = Vec::new();
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        let v = Json::parse(line).map_err(|e| format!("bad report line: {e}: {line}"))?;
        if v.get("type").and_then(Json::as_str) != Some("report") {
            continue;
        }
        let field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing {name}: {line}"))
        };
        let start = Nanos::from_nanos(field("start_ns")?);
        let end = Nanos::from_nanos(field("end_ns")?);
        let total = field("total")?;
        let mut prefixes = BTreeSet::new();
        if let Some(hhhs) = v.get("hhhs").and_then(Json::as_arr) {
            for h in hhhs {
                let text = h
                    .get("prefix")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("hhh entry without prefix: {line}"))?;
                let prefix: Ipv4Prefix =
                    text.parse().map_err(|e| format!("bad prefix {text:?}: {e}"))?;
                prefixes.insert(prefix);
            }
        }
        out.push(ReportWindow { start, end, total, prefixes });
    }
    out.sort_by_key(|w| w.start);
    Ok(out)
}

/// Score observed windows against a reference schedule, matching by
/// `(start, end)`. A reference window with no observed counterpart
/// counts every truth prefix as a miss — a detector that drops windows
/// must not score as if it had answered.
pub fn score_windows(reference: &[ReportWindow], observed: &[ReportWindow]) -> SetAccuracy {
    let mut acc = SetAccuracy::default();
    for r in reference {
        match observed.iter().find(|o| o.start == r.start && o.end == r.end) {
            Some(o) => acc.merge(SetAccuracy::compare(&r.prefixes, &o.prefixes)),
            None => acc.fn_ += r.prefixes.len(),
        }
    }
    acc
}

/// First wall-clock offset (seconds) at which a poll's reported set
/// covered at least `min_recall` of `target`. `None` when never, or
/// when `target` is empty (nothing to detect — report it as such
/// rather than claiming an instant detection).
pub fn detect_time(
    polls: &[(f64, BTreeSet<Ipv4Prefix>)],
    target: &BTreeSet<Ipv4Prefix>,
    min_recall: f64,
) -> Option<f64> {
    if target.is_empty() {
        return None;
    }
    let need = (target.len() as f64 * min_recall).ceil() as usize;
    polls.iter().find(|(_, set)| target.intersection(set).count() >= need).map(|(t, _)| *t)
}

/// Pull one sample value out of a Prometheus text body: the last token
/// of the first line that is exactly `name` followed by a space (label
/// variants don't match — families here are unlabelled counters).
pub fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.strip_prefix(name).is_some_and(|rest| rest.starts_with(' ')))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// The per-(scenario, kind) closed-loop score.
#[derive(Clone, Debug)]
pub struct KindScore {
    /// Detector kind label (`exact`, `ss-hhh`, …).
    pub kind: &'static str,
    /// Shard count the kind was driven with.
    pub shards: usize,
    /// Window-by-window accuracy vs the exact oracle schedule.
    pub accuracy: SetAccuracy,
    /// Windows the daemon produced / the oracle schedule expected.
    pub windows_observed: usize,
    /// Reference window count.
    pub windows_expected: usize,
    /// Seconds from drive start until the planted prefixes were live
    /// in `/hhh` (None: nothing planted, or never detected).
    pub time_to_detect: Option<f64>,
    /// Whether every planted prefix was eventually reported.
    pub detected: bool,
    /// Packets pushed through this kind's pipelines.
    pub packets: u64,
    /// Wall seconds of the slowest shard drive.
    pub drive_seconds: f64,
    /// Sustained feed rate: `packets / drive_seconds`.
    pub pkts_per_sec: f64,
    /// Total feeder stall time across shards (back-pressure seconds).
    pub stall_seconds: f64,
}
