//! Scoring: turn the daemon's `/hhh` report stream and `/metrics`
//! text into per-kind precision / recall / time-to-detect numbers
//! against a reference window schedule.
//!
//! Everything here is pure — no sockets, no clocks — so the golden
//! tests can pin exact numbers.

use hhh_analysis::SetAccuracy;
use hhh_core::snapshot::json::Json;
use hhh_nettypes::{Ipv4Prefix, Nanos};
use std::collections::BTreeSet;

/// One report window as parsed off the daemon's ndjson stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportWindow {
    /// Window start (trace time).
    pub start: Nanos,
    /// Window end (trace time).
    pub end: Nanos,
    /// Total weight folded into the window.
    pub total: u64,
    /// The reported HHH prefixes.
    pub prefixes: BTreeSet<Ipv4Prefix>,
}

/// Parse the daemon's `/hhh` body (one JSON object per line) into
/// report windows, ignoring non-`report` lines.
pub fn parse_report_windows(body: &str) -> Result<Vec<ReportWindow>, String> {
    let mut out = Vec::new();
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        let v = Json::parse(line).map_err(|e| format!("bad report line: {e}: {line}"))?;
        if v.get("type").and_then(Json::as_str) != Some("report") {
            continue;
        }
        let field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing {name}: {line}"))
        };
        let start = Nanos::from_nanos(field("start_ns")?);
        let end = Nanos::from_nanos(field("end_ns")?);
        let total = field("total")?;
        let mut prefixes = BTreeSet::new();
        if let Some(hhhs) = v.get("hhhs").and_then(Json::as_arr) {
            for h in hhhs {
                let text = h
                    .get("prefix")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("hhh entry without prefix: {line}"))?;
                let prefix: Ipv4Prefix =
                    text.parse().map_err(|e| format!("bad prefix {text:?}: {e}"))?;
                prefixes.insert(prefix);
            }
        }
        out.push(ReportWindow { start, end, total, prefixes });
    }
    out.sort_by_key(|w| w.start);
    Ok(out)
}

/// Score observed windows against a reference schedule, matching by
/// `(start, end)`. A reference window with no observed counterpart
/// counts every truth prefix as a miss — a detector that drops windows
/// must not score as if it had answered.
pub fn score_windows(reference: &[ReportWindow], observed: &[ReportWindow]) -> SetAccuracy {
    let mut acc = SetAccuracy::default();
    for r in reference {
        match observed.iter().find(|o| o.start == r.start && o.end == r.end) {
            Some(o) => acc.merge(SetAccuracy::compare(&r.prefixes, &o.prefixes)),
            None => acc.fn_ += r.prefixes.len(),
        }
    }
    acc
}

/// First wall-clock offset (seconds) at which a poll's reported set
/// covered at least `min_recall` of `target`. `None` when never, or
/// when `target` is empty (nothing to detect — report it as such
/// rather than claiming an instant detection).
pub fn detect_time(
    polls: &[(f64, BTreeSet<Ipv4Prefix>)],
    target: &BTreeSet<Ipv4Prefix>,
    min_recall: f64,
) -> Option<f64> {
    if target.is_empty() {
        return None;
    }
    let need = (target.len() as f64 * min_recall).ceil() as usize;
    polls.iter().find(|(_, set)| target.intersection(set).count() >= need).map(|(t, _)| *t)
}

/// Pull one sample value out of a Prometheus text body: the last token
/// of the first line that is exactly `name` followed by a space (label
/// variants don't match — families here are unlabelled counters).
pub fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.strip_prefix(name).is_some_and(|rest| rest.starts_with(' ')))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Pull one per-stream sample out of a Prometheus text body: the
/// value of `name{stream="<id>",…}` — the daemon's per-stream families
/// put the stream id first in the label set.
pub fn stream_metric_value(body: &str, name: &str, stream: u64) -> Option<f64> {
    let tag = format!("{{stream=\"{stream}\",");
    body.lines()
        .find(|l| l.strip_prefix(name).is_some_and(|rest| rest.starts_with(&tag)))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// The per-(scenario, kind) mitigation closed-loop score: what the
/// rule table did to the traffic, split attack/legit by the planted
/// ground truth, plus how fast the first planted-covering rule fired.
#[derive(Clone, Debug)]
pub struct MitigateKindScore {
    /// Detector kind label (`exact`, `ss-hhh`, …).
    pub kind: &'static str,
    /// Shard count the kind was driven with.
    pub shards: usize,
    /// Windows driven through the loop.
    pub windows: usize,
    /// Attack bytes offered to the gate (whole run).
    pub attack_offered_bytes: u64,
    /// Attack bytes the gate dropped (whole run).
    pub attack_dropped_bytes: u64,
    /// Legit bytes offered to the gate (whole run).
    pub legit_offered_bytes: u64,
    /// Legit bytes the gate dropped — the collateral damage.
    pub legit_dropped_bytes: u64,
    /// Attack bytes offered in windows *after* the first
    /// planted-covering rule fired.
    pub post_rule_attack_offered: u64,
    /// Attack bytes dropped in those windows.
    pub post_rule_attack_dropped: u64,
    /// Trace seconds from the earliest planted onset to the first
    /// planted-covering rule fire (`None`: nothing planted, or no rule
    /// ever covered a planted prefix).
    pub time_to_mitigate: Option<f64>,
    /// Did a rule ever cover a planted prefix?
    pub mitigated: bool,
    /// Action label of that first planted-covering rule.
    pub first_rule_action: Option<&'static str>,
    /// Rules the local engine fired (fresh installs).
    pub rules_fired: u64,
    /// Rules that aged out.
    pub rules_expired: u64,
    /// Table churn: inserts + evictions + expirations.
    pub rule_churn: u64,
    /// Peak concurrently-installed rules.
    pub max_rules_active: u64,
    /// The daemon-side engine's `mitigate_rule_churn_total`, when the
    /// daemon ran with mitigation enabled.
    pub daemon_rule_churn: Option<f64>,
    /// Packets offered to the gate.
    pub packets: u64,
    /// Packets the gate dropped.
    pub packets_dropped: u64,
    /// Wall seconds for the whole windowed loop.
    pub drive_seconds: f64,
}

impl MitigateKindScore {
    /// Fraction of all attack bytes dropped (`None` when no attack).
    pub fn attack_drop_ratio(&self) -> Option<f64> {
        (self.attack_offered_bytes > 0)
            .then(|| self.attack_dropped_bytes as f64 / self.attack_offered_bytes as f64)
    }

    /// Fraction of post-rule attack bytes dropped — the mitigation
    /// quality once the loop has closed (`None` until a planted rule
    /// fires).
    pub fn post_rule_drop_ratio(&self) -> Option<f64> {
        (self.post_rule_attack_offered > 0)
            .then(|| self.post_rule_attack_dropped as f64 / self.post_rule_attack_offered as f64)
    }

    /// Fraction of legit bytes dropped — collateral damage.
    pub fn collateral_ratio(&self) -> f64 {
        if self.legit_offered_bytes == 0 {
            return 0.0;
        }
        self.legit_dropped_bytes as f64 / self.legit_offered_bytes as f64
    }
}

/// The per-(scenario, kind) closed-loop score.
#[derive(Clone, Debug)]
pub struct KindScore {
    /// Detector kind label (`exact`, `ss-hhh`, …).
    pub kind: &'static str,
    /// Shard count the kind was driven with.
    pub shards: usize,
    /// Window-by-window accuracy vs the exact oracle schedule.
    pub accuracy: SetAccuracy,
    /// Windows the daemon produced / the oracle schedule expected.
    pub windows_observed: usize,
    /// Reference window count.
    pub windows_expected: usize,
    /// Seconds from drive start until the planted prefixes were live
    /// in `/hhh` (None: nothing planted, or never detected).
    pub time_to_detect: Option<f64>,
    /// Whether every planted prefix was eventually reported.
    pub detected: bool,
    /// Packets pushed through this kind's pipelines.
    pub packets: u64,
    /// Wall seconds of the slowest shard drive.
    pub drive_seconds: f64,
    /// Sustained feed rate: `packets / drive_seconds`.
    pub pkts_per_sec: f64,
    /// Total feeder stall time across shards (back-pressure seconds).
    pub stall_seconds: f64,
}
