//! The mitigation closed loop: the same real topology as [`crate::drive`]
//! (shard pipelines → socket transport → live `hhh-aggd`), but with the
//! control plane closed — every packet passes a
//! [`RuleFilter`]/[`TableGate`] stage fed by a [`PolicyEngine`] that
//! ingests the daemon's own `/hhh` answers, so a rule fired from window
//! *w*'s report drops window *w+1*'s packets.
//!
//! The loop is **window-synchronous**, which is what makes the scores
//! deterministic in trace time: for each report window the driver
//!
//! 1. filters the window's packets through the gate (harvesting the
//!    attack/legit drop totals the previous windows' rules caused),
//! 2. ships the survivors to the per-shard feeders and closes the
//!    window with a zero-weight tick packet at the window boundary,
//! 3. waits until every shard stream has delivered the window's two
//!    frames (report + state) *and* the fold has gone clean,
//! 4. fetches `/hhh` and ingests the new window into the policy
//!    engine — whose rule table the gate consults next iteration.
//!
//! Scoring classes every offered/dropped byte against the scenario's
//! planted ground truth: attack bytes dropped is the mitigation doing
//! its job, legit bytes dropped is collateral damage, and
//! time-to-mitigate is trace time from the earliest planted onset to
//! the first planted-covering rule fire.

use crate::drive::{http_get, DriveOptions};
use crate::scenario::Scenario;
use crate::score::{metric_value, stream_metric_value, MitigateKindScore};
use hhh_aggd::scenario::{
    distagg_threshold, shard_label, shard_packets, stream_id, Kind, DISTAGG_WINDOW,
};
use hhh_aggd::{spawn_daemon, DaemonConfig, DaemonHandle, MitigateConfig};
use hhh_mitigate::{parse_policy_windows, GateTotals, PolicyConfig, PolicyEngine, TableGate};
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord};
use hhh_window::source::{bounded, Source};
use hhh_window::{RuleFilter, TcpTransport, TransportSink};
use std::time::Instant;

/// One scenario's mitigation run across the requested kinds.
pub struct MitigateRun {
    /// Per-kind closed-loop scores, in `opts.kinds` order.
    pub kinds: Vec<MitigateKindScore>,
}

/// Drive `scenario` through the mitigation closed loop, one detector
/// kind at a time. Spawns a fresh in-process daemon per kind (with the
/// daemon-side policy engine enabled, so `/rules` and the `mitigate_*`
/// metrics are exercised too) unless `opts.external` points at a
/// running one.
pub fn run_mitigate_scenario(
    scenario: &Scenario,
    opts: &DriveOptions,
    policy: &PolicyConfig,
) -> Result<MitigateRun, String> {
    let n_windows = (scenario.horizon / DISTAGG_WINDOW) as usize;
    if n_windows == 0 {
        return Err("scenario shorter than one report window".into());
    }
    // Partition the trace by report window once; the per-kind loops
    // re-filter (rules differ per kind) but never re-sort.
    let mut by_window: Vec<Vec<PacketRecord>> = vec![Vec::new(); n_windows];
    for p in &scenario.packets {
        let w = (p.ts.as_nanos() / DISTAGG_WINDOW.as_nanos()) as usize;
        if let Some(bin) = by_window.get_mut(w) {
            bin.push(*p);
        }
    }
    let truth: Vec<Ipv4Prefix> = scenario.truth.planted.iter().map(|p| p.prefix).collect();
    let mut kinds = Vec::new();
    for &kind in &opts.kinds {
        kinds.push(drive_kind(scenario, &by_window, kind, opts, policy, &truth)?);
    }
    Ok(MitigateRun { kinds })
}

/// The spawned-or-external daemon a kind talks to.
struct Target {
    spawned: Option<DaemonHandle>,
    frame_addr: String,
    http_addr: String,
}

impl Target {
    fn acquire(
        opts: &DriveOptions,
        kind: Kind,
        policy: &PolicyConfig,
        truth: &[Ipv4Prefix],
    ) -> Result<Target, String> {
        match &opts.external {
            Some((frames, http)) => {
                Ok(Target { spawned: None, frame_addr: frames.clone(), http_addr: http.clone() })
            }
            None => {
                let handle = spawn_daemon(DaemonConfig {
                    thresholds: vec![distagg_threshold()],
                    retain: None,
                    mitigate: Some(MitigateConfig {
                        kind: kind.label().into(),
                        policy: policy.clone(),
                        truth: truth.to_vec(),
                    }),
                    ..DaemonConfig::default()
                })
                .map_err(|e| format!("spawn daemon: {e}"))?;
                Ok(Target {
                    frame_addr: handle.frame_addr.to_string(),
                    http_addr: handle.http_addr.to_string(),
                    spawned: Some(handle),
                })
            }
        }
    }
}

/// Does `prefix` cover or sit inside any planted prefix?
fn covers_planted(truth: &[Ipv4Prefix], prefix: Ipv4Prefix) -> bool {
    truth.iter().any(|t| t.contains(prefix) || prefix.contains(*t))
}

#[allow(clippy::too_many_lines)]
fn drive_kind(
    scenario: &Scenario,
    by_window: &[Vec<PacketRecord>],
    kind: Kind,
    opts: &DriveOptions,
    policy: &PolicyConfig,
    truth: &[Ipv4Prefix],
) -> Result<MitigateKindScore, String> {
    let (k, label, n_windows) = (opts.shards, kind.label(), by_window.len());
    let target = Target::acquire(opts, kind, policy, truth)?;
    let all_query = format!("/hhh?kind={label}&all=1&threshold={}", scenario.threshold_pct);

    let mut engine = PolicyEngine::new(policy.clone());
    let mut gate = Some(TableGate::new(engine.table()).with_truth(truth.to_vec()));

    // Long-lived feeders: the pipelines stay up across the whole run,
    // consuming window after window as the loop releases them.
    let mut feeders = Vec::with_capacity(k);
    let mut pipes = Vec::with_capacity(k);
    for shard in 0..k {
        let (feeder, source) = bounded(4, 1024);
        feeders.push(feeder);
        let (frame_addr, horizon) = (target.frame_addr.clone(), scenario.horizon);
        pipes.push(std::thread::spawn(move || {
            let transport = TcpTransport::connect(&frame_addr)
                .with_hello(stream_id(kind, k, shard), shard_label(kind, k, shard));
            let (_t, err) = hhh_aggd::scenario::shard_source_into(
                kind,
                source,
                horizon,
                shard,
                TransportSink::new(transport),
            );
            err
        }));
    }

    let t0 = Instant::now();
    let mut window_totals: Vec<GateTotals> = Vec::with_capacity(n_windows);
    let mut ingested_through = Nanos::ZERO;
    let mut planted_fire: Option<(usize, Nanos, &'static str)> = None;
    let mut max_rules_active = 0u64;

    for (w, window) in by_window.iter().enumerate() {
        // 1. Filter this window through the gate: rules fired off
        // windows ≤ w-1 act on window w's packets.
        let mut filter = RuleFilter::new(window.iter().copied(), gate.take().expect("gate"));
        let mut survivors: Vec<PacketRecord> = Vec::with_capacity(window.len());
        while filter.pull_chunk(&mut survivors) {}
        let (_, mut g) = filter.into_parts();
        window_totals.push(g.take_totals());
        gate = Some(g);

        // 2. Ship the survivors; a zero-weight tick at the window
        // boundary makes every shard flush window w now rather than
        // whenever the next real packet happens to arrive.
        let window_end = Nanos::ZERO + DISTAGG_WINDOW * (w as u64 + 1);
        for (shard, feeder) in feeders.iter_mut().enumerate() {
            let sp = shard_packets(&survivors, k, shard);
            if !sp.is_empty() {
                feeder.send_batch(&sp);
            }
            feeder.send(PacketRecord::new(window_end, 0, 0, 0));
            feeder.flush();
        }
        if w + 1 == n_windows {
            // Horizon reached: close the channels so the pipelines
            // drain their trailing windows and hang up.
            feeders.clear();
        }

        // 3. Converge: each shard stream delivers two frames per
        // window (report + state), and the fold must have consumed
        // them (`aggd_points_dirty` back to zero) before `/hhh` can
        // answer for window w.
        let need = 2.0 * (w as f64 + 1.0);
        let deadline = Instant::now() + opts.converge_timeout;
        loop {
            let (code, body) = http_get(&target.http_addr, "/metrics")?;
            if code == 200 {
                let delivered = (0..k).all(|shard| {
                    stream_metric_value(&body, "aggd_stream_delivered", stream_id(kind, k, shard))
                        .is_some_and(|v| v >= need)
                });
                if delivered && metric_value(&body, "aggd_points_dirty") == Some(0.0) {
                    break;
                }
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "{label}: window {w} never converged ({need} frames/stream wanted)"
                ));
            }
            std::thread::sleep(opts.poll_interval);
        }

        // 4. Close the loop: ingest window w's report. Rules fired
        // here gate window w+1.
        let (code, body) = http_get(&target.http_addr, &all_query)?;
        if code != 200 {
            return Err(format!("{label}: GET {all_query} -> {code}"));
        }
        let reports = parse_policy_windows(&body).map_err(|e| format!("{label}: {e}"))?;
        let fired_before = engine.fired_log().len();
        let mark = ingested_through;
        for report in reports.iter().filter(|r| r.end > mark && r.end <= window_end) {
            ingested_through = ingested_through.max(report.end);
            engine.ingest(report);
        }
        for fired in &engine.fired_log()[fired_before..] {
            if std::env::var_os("LOADGEN_MITIGATE_LOG").is_some() {
                eprintln!(
                    "loadgen: {label} window {w}: fired {} {} (planted: {})",
                    fired.action.label(),
                    fired.prefix,
                    covers_planted(truth, fired.prefix),
                );
            }
            if planted_fire.is_none() && covers_planted(truth, fired.prefix) {
                planted_fire = Some((w, fired.at, fired.action.label()));
            }
        }
        max_rules_active = max_rules_active.max(engine.table().lock().unwrap().len() as u64);
    }

    for (shard, pipe) in pipes.into_iter().enumerate() {
        let err = pipe.join().map_err(|_| format!("{label} shard {shard}: pipeline panicked"))?;
        if let Some(e) = err {
            return Err(format!("{label} shard {shard}: transport: {e}"));
        }
    }
    let drive_seconds = t0.elapsed().as_secs_f64();

    // Daemon-side view: exercise `/rules` and pick up the daemon
    // engine's churn counter (present only when mitigation is on —
    // always true for spawned daemons, optional for external ones).
    let (code, _) = http_get(&target.http_addr, "/rules?text=1")?;
    if target.spawned.is_some() && code != 200 {
        return Err(format!("{label}: GET /rules -> {code} on a mitigation-enabled daemon"));
    }
    let (_, metrics_body) = http_get(&target.http_addr, "/metrics")?;
    let daemon_rule_churn = metric_value(&metrics_body, "mitigate_rule_churn_total");
    if let Some(handle) = target.spawned {
        handle.shutdown();
    }

    let mut sum = GateTotals::default();
    for t in &window_totals {
        sum.absorb(*t);
    }
    let (mut post_offered, mut post_dropped) = (0u64, 0u64);
    if let Some((fire_w, _, _)) = planted_fire {
        for t in &window_totals[fire_w + 1..] {
            post_offered += t.attack_offered_bytes;
            post_dropped += t.attack_dropped_bytes;
        }
    }
    let time_to_mitigate = planted_fire.map(|(_, at, _)| {
        let onset = scenario.truth.planted.iter().map(|p| p.onset).min().unwrap_or(Nanos::ZERO);
        (at - onset).as_secs_f64()
    });
    let stats = engine.stats();
    let table = engine.table();
    let table = table.lock().unwrap();

    Ok(MitigateKindScore {
        kind: label,
        shards: k,
        windows: n_windows,
        attack_offered_bytes: sum.attack_offered_bytes,
        attack_dropped_bytes: sum.attack_dropped_bytes,
        legit_offered_bytes: sum.legit_offered_bytes,
        legit_dropped_bytes: sum.legit_dropped_bytes,
        post_rule_attack_offered: post_offered,
        post_rule_attack_dropped: post_dropped,
        time_to_mitigate,
        mitigated: planted_fire.is_some(),
        first_rule_action: planted_fire.map(|(_, _, action)| action),
        rules_fired: stats.fired,
        rules_expired: stats.expired,
        rule_churn: table.churn(),
        max_rules_active,
        daemon_rule_churn,
        packets: sum.packets_offered,
        packets_dropped: sum.packets_dropped,
        drive_seconds,
    })
}
