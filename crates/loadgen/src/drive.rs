//! The closed loop: drive a scenario's packets through real shard
//! pipelines over the socket transport into a live `hhh-aggd`, while
//! polling `/hhh` and `/metrics` over HTTP, then score what the
//! daemon *served* against the scenario's planted ground truth.
//!
//! Per detector kind the driver runs the real distributed topology:
//! one producer thread per shard pushes that shard's packets through a
//! [`bounded`] channel (the back-pressure seam — stall time is
//! reported), a pipeline thread runs the shard's windowed detector and
//! streams native snapshot frames to the daemon's frame port, and a
//! poller thread watches `/hhh?kind=…` for the planted prefixes to
//! measure time-to-detect. A scrape thread hammers `/metrics` for the
//! whole run; a single failed scrape fails the run — the PR 9
//! front-door hardening promises the metrics plane stays up under
//! load.
//!
//! Kinds run sequentially (shards within a kind in parallel) so the
//! sustained pkts/s figure per kind is not cross-kind contention.

use crate::scenario::Scenario;
use crate::score::{
    detect_time, metric_value, parse_report_windows, score_windows, KindScore, ReportWindow,
};
use hhh_aggd::scenario::{
    distagg_threshold, hierarchy, shard_label, shard_packets, single_process_reports_on, stream_id,
    Kind,
};
use hhh_aggd::{spawn_daemon, DaemonConfig, DaemonHandle};
use hhh_nettypes::Ipv4Prefix;
use hhh_window::source::bounded;
use hhh_window::{TcpTransport, TransportSink};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a scenario is driven.
pub struct DriveOptions {
    /// Shards per detector kind (the distributed fan-in width).
    pub shards: usize,
    /// Detector kinds to drive. The default skips `tdbf-hhh`: its
    /// continuous probe schedule has no disjoint-window counterpart to
    /// score against the oracle.
    pub kinds: Vec<Kind>,
    /// `/hhh` + `/metrics` poll cadence.
    pub poll_interval: Duration,
    /// Drive an already-running daemon at `(frame_addr, http_addr)`
    /// instead of spawning one in-process.
    pub external: Option<(String, String)>,
    /// How long to wait for the fold to catch up after the last frame.
    pub converge_timeout: Duration,
}

impl Default for DriveOptions {
    fn default() -> Self {
        DriveOptions {
            shards: 2,
            kinds: vec![Kind::Exact, Kind::SsHhh, Kind::Rhhh, Kind::MvPipe],
            poll_interval: Duration::from_millis(100),
            external: None,
            converge_timeout: Duration::from_secs(60),
        }
    }
}

/// Health of the HTTP plane over one scenario run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScrapeStats {
    /// Successful `/metrics` scrapes.
    pub scrapes: u64,
    /// Scrapes that failed (transport error or non-200) — the
    /// acceptance bar is zero.
    pub failures: u64,
    /// Final `aggd_http_accept_errors_total` sample.
    pub accept_errors_total: f64,
    /// Final `aggd_http_busy_total` sample.
    pub busy_total: f64,
    /// Final `aggd_frames_total` sample.
    pub frames_total: f64,
    /// Wall seconds the whole scenario run took.
    pub wall_seconds: f64,
}

/// One scenario's closed-loop result.
pub struct ScenarioRun {
    /// Per-kind scores, in `opts.kinds` order.
    pub kinds: Vec<KindScore>,
    /// HTTP-plane health over the run.
    pub scrapes: ScrapeStats,
}

/// Plain-text HTTP GET against the daemon: returns `(status, body)`.
/// Transport errors are `Err` — the caller decides whether a torn
/// connection is fatal (scrapes) or retryable (convergence polls).
pub(crate) fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let conn = |e: std::io::Error| format!("GET {path}: {e}");
    let mut stream = TcpStream::connect(addr).map_err(conn)?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).map_err(conn)?;
    stream.set_write_timeout(Some(Duration::from_secs(10))).map_err(conn)?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(conn)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(conn)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("GET {path}: malformed status line"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

/// Timestamped samples of the prefixes `/hhh` served — the
/// [`detect_time`] input.
type PollLog = Vec<(f64, BTreeSet<Ipv4Prefix>)>;

/// The daemon to drive: in-process (owned) or external (addresses).
enum Target {
    Spawned(DaemonHandle),
    External { frames: String, http: String },
}

impl Target {
    fn frame_addr(&self) -> String {
        match self {
            Target::Spawned(h) => h.frame_addr.to_string(),
            Target::External { frames, .. } => frames.clone(),
        }
    }
    fn http_addr(&self) -> String {
        match self {
            Target::Spawned(h) => h.http_addr.to_string(),
            Target::External { http, .. } => http.clone(),
        }
    }
}

/// Drive one scenario end to end and score it. Errors are plumbing
/// failures (daemon spawn, dropped scrapes, missing metric families,
/// fold never converging) — accuracy shortfalls are *results*, not
/// errors.
pub fn run_scenario(scenario: &Scenario, opts: &DriveOptions) -> Result<ScenarioRun, String> {
    let k = opts.shards.max(1);
    let target = match &opts.external {
        Some((frames, http)) => Target::External { frames: frames.clone(), http: http.clone() },
        None => Target::Spawned(
            spawn_daemon(DaemonConfig {
                frame_addr: "127.0.0.1:0".into(),
                http_addr: "127.0.0.1:0".into(),
                hierarchy: hierarchy(),
                thresholds: vec![distagg_threshold()],
                retain: None,
                log: false,
                ..DaemonConfig::default()
            })
            .map_err(|e| format!("spawn daemon: {e}"))?,
        ),
    };
    let frame_addr = target.frame_addr();
    let http_addr = target.http_addr();

    let run_start = Instant::now();
    let stop_scrapes = Arc::new(AtomicBool::new(false));
    let scrape_ok = Arc::new(AtomicU64::new(0));
    let scrape_fail = Arc::new(AtomicU64::new(0));
    let scraper = {
        let (stop, ok, fail) = (stop_scrapes.clone(), scrape_ok.clone(), scrape_fail.clone());
        let (addr, every) = (http_addr.clone(), opts.poll_interval);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match http_get(&addr, "/metrics") {
                    Ok((200, _)) => ok.fetch_add(1, Ordering::Relaxed),
                    _ => fail.fetch_add(1, Ordering::Relaxed),
                };
                std::thread::sleep(every);
            }
        })
    };

    // The oracle schedule every kind is scored against: the unsharded
    // exact detector over the same disjoint windows.
    let reference: Vec<ReportWindow> =
        single_process_reports_on(Kind::Exact, &scenario.packets, scenario.horizon)
            .into_iter()
            .map(|w| ReportWindow {
                start: w.start,
                end: w.end,
                total: w.total,
                prefixes: w.prefix_set(),
            })
            .collect();
    let planted: BTreeSet<Ipv4Prefix> = scenario.truth.planted.iter().map(|p| p.prefix).collect();

    let mut kind_scores = Vec::new();
    for &kind in &opts.kinds {
        kind_scores.push(drive_kind(
            kind,
            scenario,
            k,
            &frame_addr,
            &http_addr,
            &reference,
            &planted,
            opts,
        )?);
    }

    stop_scrapes.store(true, Ordering::Relaxed);
    let _ = scraper.join();

    let (status, body) =
        http_get(&http_addr, "/metrics").map_err(|e| format!("final metrics scrape: {e}"))?;
    if status != 200 {
        return Err(format!("final metrics scrape: HTTP {status}"));
    }
    let accept_errors_total = metric_value(&body, "aggd_http_accept_errors_total")
        .ok_or("aggd_http_accept_errors_total missing from /metrics")?;
    let scrapes = ScrapeStats {
        scrapes: scrape_ok.load(Ordering::Relaxed) + 1,
        failures: scrape_fail.load(Ordering::Relaxed),
        accept_errors_total,
        busy_total: metric_value(&body, "aggd_http_busy_total").unwrap_or(0.0),
        frames_total: metric_value(&body, "aggd_frames_total").unwrap_or(0.0),
        wall_seconds: run_start.elapsed().as_secs_f64(),
    };
    if scrapes.failures > 0 {
        return Err(format!(
            "{} of {} /metrics scrapes failed during the run — the metrics plane \
             must stay up under load",
            scrapes.failures,
            scrapes.failures + scrapes.scrapes
        ));
    }

    if let Target::Spawned(handle) = target {
        handle.shutdown();
    }
    Ok(ScenarioRun { kinds: kind_scores, scrapes })
}

/// Drive one detector kind's shard topology and score it.
#[allow(clippy::too_many_arguments)]
fn drive_kind(
    kind: Kind,
    scenario: &Scenario,
    k: usize,
    frame_addr: &str,
    http_addr: &str,
    reference: &[ReportWindow],
    planted: &BTreeSet<Ipv4Prefix>,
    opts: &DriveOptions,
) -> Result<KindScore, String> {
    let label = kind.label();
    let all_query = format!("/hhh?kind={label}&all=1&threshold={}", scenario.threshold_pct);
    let t0 = Instant::now();

    // Detect poller: sample the union of every window the daemon has
    // served for this kind so far — time-to-detect is the wall-clock
    // delay from drive start until the planted prefixes were live in
    // `/hhh`, regardless of which window carried them.
    let stop_polls = Arc::new(AtomicBool::new(false));
    let polls: Arc<Mutex<PollLog>> = Arc::new(Mutex::new(Vec::new()));
    let poller = {
        let (stop, polls) = (stop_polls.clone(), polls.clone());
        let (addr, path, every) = (http_addr.to_string(), all_query.clone(), opts.poll_interval);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Ok((200, body)) = http_get(&addr, &path) {
                    if let Ok(windows) = parse_report_windows(&body) {
                        let at = t0.elapsed().as_secs_f64();
                        let served: BTreeSet<Ipv4Prefix> =
                            windows.iter().flat_map(|w| w.prefixes.iter().copied()).collect();
                        polls.lock().expect("polls lock").push((at, served));
                    }
                }
                std::thread::sleep(every);
            }
        })
    };

    // One producer + pipeline pair per shard, all shards in parallel.
    let shard_results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|shard| {
                let packets = shard_packets(&scenario.packets, k, shard);
                scope.spawn(move || {
                    let (mut feeder, source) = bounded(4, 1024);
                    let n = packets.len() as u64;
                    let producer = std::thread::spawn(move || {
                        feeder.send_batch(&packets);
                        feeder.flush();
                        feeder.stats()
                    });
                    let start = Instant::now();
                    let transport = TcpTransport::connect(frame_addr)
                        .with_hello(stream_id(kind, k, shard), shard_label(kind, k, shard));
                    let (_t, err) = hhh_aggd::scenario::shard_source_into(
                        kind,
                        source,
                        scenario.horizon,
                        shard,
                        TransportSink::new(transport),
                    );
                    let elapsed = start.elapsed().as_secs_f64();
                    let stats = producer.join().expect("producer thread");
                    match err {
                        Some(e) => Err(format!("{label} shard {shard}: transport: {e}")),
                        None => Ok((n, elapsed, stats.stall_seconds)),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard thread")).collect()
    });

    let mut packets = 0u64;
    let mut drive_seconds = 0f64;
    let mut stall_seconds = 0f64;
    for r in shard_results {
        let (n, elapsed, stall) = r?;
        packets += n;
        drive_seconds = drive_seconds.max(elapsed);
        stall_seconds += stall;
    }

    // Convergence: the fold must surface every oracle window, then go
    // clean (no dirty points awaiting a refold).
    let deadline = Instant::now() + opts.converge_timeout;
    let observed = loop {
        if let Ok((200, body)) = http_get(http_addr, &all_query) {
            if let Ok(windows) = parse_report_windows(&body) {
                if windows.len() >= reference.len() {
                    break windows;
                }
            }
        }
        if Instant::now() > deadline {
            return Err(format!(
                "{label}: fold never reached {} windows within {:?}",
                reference.len(),
                opts.converge_timeout
            ));
        }
        std::thread::sleep(opts.poll_interval);
    };
    while metric_value(
        &http_get(http_addr, "/metrics").map_err(|e| format!("{label}: {e}"))?.1,
        "aggd_points_dirty",
    )
    .is_none_or(|v| v > 0.0)
    {
        if Instant::now() > deadline {
            return Err(format!("{label}: fold stayed dirty past {:?}", opts.converge_timeout));
        }
        std::thread::sleep(opts.poll_interval);
    }

    // One guaranteed post-convergence sample: if the fold beat the
    // poll cadence, the converged answer itself is the detection
    // moment.
    let final_set: BTreeSet<Ipv4Prefix> =
        observed.iter().flat_map(|w| w.prefixes.iter().copied()).collect();
    polls.lock().expect("polls lock").push((t0.elapsed().as_secs_f64(), final_set.clone()));
    stop_polls.store(true, Ordering::Relaxed);
    let _ = poller.join();

    let accuracy = score_windows(reference, &observed);
    let polls = polls.lock().expect("polls lock");
    let time_to_detect = detect_time(&polls, planted, 1.0);
    let detected = !planted.is_empty() && planted.iter().all(|p| final_set.contains(p));

    Ok(KindScore {
        kind: label,
        shards: k,
        accuracy,
        windows_observed: observed.len(),
        windows_expected: reference.len(),
        time_to_detect,
        detected,
        packets,
        drive_seconds,
        pkts_per_sec: if drive_seconds > 0.0 { packets as f64 / drive_seconds } else { 0.0 },
        stall_seconds,
    })
}
