//! The daemon itself: a [`FrameHub`] accepting shard connections, a
//! fold loop turning [`HubEvent`]s into an incremental
//! [`hhh_agg::FoldState`], and the HTTP server answering queries over
//! the same state.
//!
//! The fold loop is the only writer: it drains the hub's event channel
//! in bursts (so a batch of frames pays for one refold, not one each),
//! pushes state frames into the fold keyed by stream id, and refolds
//! dirty report points under the registry's lock. HTTP handlers are
//! readers — they briefly take the same lock to render, so a query
//! always sees a complete, consistent fold (never a half-applied
//! burst).

use crate::http::{self, HttpShared};
use crate::metrics::Metrics;
use crate::registry::Registry;
use hhh_core::snapshot::binary::REPORT_KIND;
use hhh_core::{Threshold, WireSnapshot};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_window::{FrameHub, HubEvent, HubHandle, ACK_KIND, HELLO_KIND};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How the daemon should run. `Default` binds both sockets to
/// ephemeral localhost ports — what in-process tests want; the
/// `hhh-aggd` binary fills in its CLI flags.
pub struct DaemonConfig {
    /// Address shard transports connect to (v2 frames + hello/ack).
    pub frame_addr: String,
    /// Address the HTTP endpoints serve on.
    pub http_addr: String,
    /// Hierarchy the fold restores detectors against.
    pub hierarchy: Ipv4Hierarchy,
    /// Report thresholds `/hhh` renders by default.
    pub thresholds: Vec<Threshold>,
    /// Most recent report points retained **per kind** (`None` =
    /// unbounded — only for bounded runs like tests).
    pub retain: Option<usize>,
    /// Maximum concurrently running HTTP handler threads; connections
    /// beyond the cap get an immediate 503.
    pub http_max_inflight: usize,
    /// Log joins/leaves/gaps to stderr.
    pub log: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            frame_addr: "127.0.0.1:0".into(),
            http_addr: "127.0.0.1:0".into(),
            hierarchy: Ipv4Hierarchy::bytes(),
            thresholds: vec![Threshold::percent(1.0)],
            // 720 five-second windows ≈ one hour of rolling state.
            retain: Some(720),
            // Plenty for scrapes + polls; small enough that a
            // slow-loris swarm tops out at ~128 parked threads.
            http_max_inflight: 128,
            log: false,
        }
    }
}

/// A running daemon. Dropping the handle (or calling
/// [`shutdown`](Self::shutdown)) stops the hub, the fold loop, and the
/// HTTP server; admitted shard connections are not torn down — their
/// reader threads end when the peers hang up.
pub struct DaemonHandle {
    /// The bound frame (shard transport) address.
    pub frame_addr: SocketAddr,
    /// The bound HTTP address.
    pub http_addr: SocketAddr,
    /// The shared registry — tests reach in to inspect the fold.
    pub registry: Arc<Registry>,
    /// The shared metric set.
    pub metrics: Arc<Metrics>,
    hub: Option<HubHandle>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// Stop accepting, stop folding, stop serving; joins every daemon
    /// thread.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(hub) = self.hub.take() {
            hub.shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// Bind both sockets and start the daemon's threads (hub accept loop,
/// fold loop, HTTP accept loop). Returns once everything is listening;
/// the handle carries the resolved addresses.
pub fn spawn_daemon(config: DaemonConfig) -> io::Result<DaemonHandle> {
    let hub = FrameHub::bind(&config.frame_addr)?;
    let frame_addr = hub.local_addr()?;
    let http_listener = TcpListener::bind(&config.http_addr)?;
    let http_addr = http_listener.local_addr()?;

    let registry = Arc::new(Registry::new(config.retain));
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));

    let (hub_handle, events) = hub.start()?;

    let fold_registry = Arc::clone(&registry);
    let fold_metrics = Arc::clone(&metrics);
    let fold_stop = Arc::clone(&stop);
    let hierarchy = config.hierarchy;
    let log = config.log;
    let fold_thread = std::thread::spawn(move || {
        fold_loop(&events, &fold_registry, &fold_metrics, &hierarchy, &fold_stop, log);
    });

    let shared = Arc::new(HttpShared {
        registry: Arc::clone(&registry),
        metrics: Arc::clone(&metrics),
        thresholds: config.thresholds,
        max_inflight: config.http_max_inflight.max(1),
        inflight: std::sync::atomic::AtomicUsize::new(0),
    });
    let http_stop = Arc::clone(&stop);
    let http_thread = std::thread::spawn(move || http::serve(http_listener, shared, http_stop));

    Ok(DaemonHandle {
        frame_addr,
        http_addr,
        registry,
        metrics,
        hub: Some(hub_handle),
        stop,
        threads: vec![fold_thread, http_thread],
    })
}

/// Drain events in bursts, refold once per burst.
fn fold_loop(
    events: &mpsc::Receiver<HubEvent>,
    registry: &Registry,
    metrics: &Metrics,
    hierarchy: &Ipv4Hierarchy,
    stop: &AtomicBool,
    log: bool,
) {
    while !stop.load(Ordering::Relaxed) {
        let first = match events.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => ev,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        apply_event(first, registry, metrics, log);
        while let Ok(ev) = events.try_recv() {
            apply_event(ev, registry, metrics, log);
        }
        refold(registry, metrics, hierarchy);
    }
    // A final refold so anything pushed by the last burst is visible
    // to a test that queries right up to shutdown.
    refold(registry, metrics, hierarchy);
}

fn apply_event(ev: HubEvent, registry: &Registry, metrics: &Metrics, log: bool) {
    match ev {
        HubEvent::Joined { id, label, resume_at } => {
            registry.joined(id, &label, resume_at);
            metrics.join();
            if log {
                eprintln!("hhh-aggd: stream {id} ({label}) joined, resuming at frame {resume_at}");
            }
        }
        HubEvent::Frame { id, pos, frame } => {
            registry.note_frame(id, pos);
            metrics.frame();
            // Reports re-derive from the fold; hello/ack frames are
            // protocol, not state. Everything else is a state snapshot.
            if frame.kind != REPORT_KIND && frame.kind != HELLO_KIND && frame.kind != ACK_KIND {
                registry.fold.lock().expect("fold lock").push(id, WireSnapshot::Binary(frame));
            }
        }
        HubEvent::Left { id, clean } => {
            registry.left(id);
            if log {
                let how = if clean { "cleanly" } else { "mid-frame" };
                eprintln!("hhh-aggd: stream {id} disconnected {how}");
            }
        }
        HubEvent::Gap { id, claimed, received } => {
            registry.gap(id, claimed, received);
            metrics.gap();
            if log {
                eprintln!(
                    "hhh-aggd: refused stream {id}: claimed resume at {claimed}, \
                     hub holds {received} — restart the shard from its spool (or from zero)"
                );
            }
        }
    }
}

fn refold(registry: &Registry, metrics: &Metrics, hierarchy: &Ipv4Hierarchy) {
    let mut fold = registry.fold.lock().expect("fold lock");
    if fold.dirty_count() == 0 {
        return;
    }
    let start = Instant::now();
    match fold.refold(hierarchy) {
        Ok(points) => metrics.fold(start.elapsed().as_secs_f64(), points as u64),
        Err(e) => {
            metrics.fold_error();
            eprintln!("hhh-aggd: fold error (stream sent a bad frame?): {e}");
        }
    }
}
