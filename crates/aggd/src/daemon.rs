//! The daemon itself: a [`FrameHub`] accepting shard connections, a
//! fold loop turning [`HubEvent`]s into an incremental
//! [`hhh_agg::FoldState`], and the HTTP server answering queries over
//! the same state.
//!
//! The fold loop is the only writer: it drains the hub's event channel
//! in bursts (so a batch of frames pays for one refold, not one each),
//! pushes state frames into the fold keyed by stream id, and refolds
//! dirty report points under the registry's lock. HTTP handlers are
//! readers — they briefly take the same lock to render, so a query
//! always sees a complete, consistent fold (never a half-applied
//! burst).

use crate::http::{self, HttpShared};
use crate::metrics::Metrics;
use crate::registry::Registry;
use hhh_core::snapshot::binary::REPORT_KIND;
use hhh_core::{Threshold, WireSnapshot};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_mitigate::{Action, PolicyConfig, PolicyEngine};
use hhh_nettypes::{Ipv4Prefix, Nanos};
use hhh_window::{FrameHub, HubEvent, HubHandle, WindowReport, ACK_KIND, HELLO_KIND};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How the daemon should run. `Default` binds both sockets to
/// ephemeral localhost ports — what in-process tests want; the
/// `hhh-aggd` binary fills in its CLI flags.
pub struct DaemonConfig {
    /// Address shard transports connect to (v2 frames + hello/ack).
    pub frame_addr: String,
    /// Address the HTTP endpoints serve on.
    pub http_addr: String,
    /// Hierarchy the fold restores detectors against.
    pub hierarchy: Ipv4Hierarchy,
    /// Report thresholds `/hhh` renders by default.
    pub thresholds: Vec<Threshold>,
    /// Most recent report points retained **per kind** (`None` =
    /// unbounded — only for bounded runs like tests).
    pub retain: Option<usize>,
    /// Maximum concurrently running HTTP handler threads; connections
    /// beyond the cap get an immediate 503.
    pub http_max_inflight: usize,
    /// Log joins/leaves/gaps to stderr.
    pub log: bool,
    /// Run the mitigation policy engine over one kind's merged
    /// reports (`None` = `/rules` is a 404 and no mitigate metrics).
    pub mitigate: Option<MitigateConfig>,
}

/// Daemon-side mitigation: which reports drive the policy, with what
/// knobs, and (optionally) which prefixes count as ground-truth
/// attack for classifying matched bytes.
#[derive(Clone, Debug)]
pub struct MitigateConfig {
    /// Kind label whose merged points feed the engine (a shard label
    /// like `exact/0of2` — each label is one merged series).
    pub kind: String,
    /// Policy knobs.
    pub policy: PolicyConfig,
    /// Planted attack prefixes; when non-empty, matched bytes are
    /// classed `attack`/`legit` in `/metrics`.
    pub truth: Vec<Ipv4Prefix>,
}

/// What the HTTP layer and the fold loop share when mitigation is on:
/// the engine (fold loop writes, `/rules` reads) and the Prometheus
/// counters derived from it.
pub(crate) struct MitigateShared {
    pub engine: Mutex<PolicyEngine>,
    pub truth: Vec<Ipv4Prefix>,
    /// Gauge: rules currently installed.
    pub rules_active: AtomicU64,
    /// Counter: total table membership churn (inserts + evictions +
    /// expirations).
    pub churn_total: AtomicU64,
    /// Counters: reported bytes matched by a non-watch rule, classed
    /// against `truth`. An *estimate* from report discounts — the
    /// measured drop counts live in the data plane's gate.
    pub matched_attack_bytes: AtomicU64,
    pub matched_legit_bytes: AtomicU64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            frame_addr: "127.0.0.1:0".into(),
            http_addr: "127.0.0.1:0".into(),
            hierarchy: Ipv4Hierarchy::bytes(),
            thresholds: vec![Threshold::percent(1.0)],
            // 720 five-second windows ≈ one hour of rolling state.
            retain: Some(720),
            // Plenty for scrapes + polls; small enough that a
            // slow-loris swarm tops out at ~128 parked threads.
            http_max_inflight: 128,
            log: false,
            mitigate: None,
        }
    }
}

/// A running daemon. Dropping the handle (or calling
/// [`shutdown`](Self::shutdown)) stops the hub, the fold loop, and the
/// HTTP server; admitted shard connections are not torn down — their
/// reader threads end when the peers hang up.
pub struct DaemonHandle {
    /// The bound frame (shard transport) address.
    pub frame_addr: SocketAddr,
    /// The bound HTTP address.
    pub http_addr: SocketAddr,
    /// The shared registry — tests reach in to inspect the fold.
    pub registry: Arc<Registry>,
    /// The shared metric set.
    pub metrics: Arc<Metrics>,
    hub: Option<HubHandle>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// Stop accepting, stop folding, stop serving; joins every daemon
    /// thread.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(hub) = self.hub.take() {
            hub.shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// Bind both sockets and start the daemon's threads (hub accept loop,
/// fold loop, HTTP accept loop). Returns once everything is listening;
/// the handle carries the resolved addresses.
pub fn spawn_daemon(config: DaemonConfig) -> io::Result<DaemonHandle> {
    let hub = FrameHub::bind(&config.frame_addr)?;
    let frame_addr = hub.local_addr()?;
    let http_listener = TcpListener::bind(&config.http_addr)?;
    let http_addr = http_listener.local_addr()?;

    let registry = Arc::new(Registry::new(config.retain));
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));

    let (hub_handle, events) = hub.start()?;

    let mitigate = config.mitigate.map(|m| {
        let shared = Arc::new(MitigateShared {
            engine: Mutex::new(PolicyEngine::new(m.policy)),
            truth: m.truth,
            rules_active: AtomicU64::new(0),
            churn_total: AtomicU64::new(0),
            matched_attack_bytes: AtomicU64::new(0),
            matched_legit_bytes: AtomicU64::new(0),
        });
        // Policy runs at the daemon's first (primary) threshold.
        let threshold = config.thresholds.first().copied().unwrap_or(Threshold::percent(1.0));
        MitigateCtx { shared, kind: m.kind, threshold }
    });

    let fold_registry = Arc::clone(&registry);
    let fold_metrics = Arc::clone(&metrics);
    let fold_stop = Arc::clone(&stop);
    let hierarchy = config.hierarchy;
    let log = config.log;
    let fold_mitigate = mitigate.clone();
    let fold_thread = std::thread::spawn(move || {
        fold_loop(
            &events,
            &fold_registry,
            &fold_metrics,
            &hierarchy,
            &fold_stop,
            log,
            fold_mitigate,
        );
    });

    let shared = Arc::new(HttpShared {
        registry: Arc::clone(&registry),
        metrics: Arc::clone(&metrics),
        thresholds: config.thresholds,
        max_inflight: config.http_max_inflight.max(1),
        inflight: std::sync::atomic::AtomicUsize::new(0),
        mitigate: mitigate.map(|m| m.shared),
    });
    let http_stop = Arc::clone(&stop);
    let http_thread = std::thread::spawn(move || http::serve(http_listener, shared, http_stop));

    Ok(DaemonHandle {
        frame_addr,
        http_addr,
        registry,
        metrics,
        hub: Some(hub_handle),
        stop,
        threads: vec![fold_thread, http_thread],
    })
}

/// The fold loop's handle on the mitigation engine: which kind's
/// merged points to feed it, at what threshold.
#[derive(Clone)]
struct MitigateCtx {
    shared: Arc<MitigateShared>,
    kind: String,
    threshold: Threshold,
}

/// Drain events in bursts, refold once per burst.
fn fold_loop(
    events: &mpsc::Receiver<HubEvent>,
    registry: &Registry,
    metrics: &Metrics,
    hierarchy: &Ipv4Hierarchy,
    stop: &AtomicBool,
    log: bool,
    mitigate: Option<MitigateCtx>,
) {
    // Windows whose report point is at or before this instant have
    // already been fed to the policy engine.
    let mut policy_seen_through = Nanos::ZERO;
    while !stop.load(Ordering::Relaxed) {
        let first = match events.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => ev,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        apply_event(first, registry, metrics, log);
        while let Ok(ev) = events.try_recv() {
            apply_event(ev, registry, metrics, log);
        }
        refold(registry, metrics, hierarchy);
        if let Some(ctx) = &mitigate {
            feed_policy(registry, ctx, &mut policy_seen_through);
        }
    }
    // A final refold so anything pushed by the last burst is visible
    // to a test that queries right up to shutdown.
    refold(registry, metrics, hierarchy);
    if let Some(ctx) = &mitigate {
        feed_policy(registry, ctx, &mut policy_seen_through);
    }
}

/// Feed merged report points newer than `seen_through` (for the
/// configured kind, in window order) into the policy engine, then
/// refresh the derived mitigate metrics.
fn feed_policy(registry: &Registry, ctx: &MitigateCtx, seen_through: &mut Nanos) {
    let windows: Vec<WindowReport<Ipv4Prefix>> = {
        let fold = registry.fold.lock().expect("fold lock");
        let mut points: Vec<_> =
            fold.points().filter(|p| p.kind == ctx.kind && p.at > *seen_through).collect();
        points.sort_by_key(|p| p.at);
        points.iter().map(|p| p.report(0, ctx.threshold)).collect()
    };
    if windows.is_empty() {
        return;
    }
    let mut engine = ctx.shared.engine.lock().expect("policy engine lock");
    for window in &windows {
        engine.ingest(window);
        *seen_through = (*seen_through).max(window.end);
        // Matched-bytes estimate: reported (discounted) bytes covered
        // by a non-watch rule, classed against ground truth. Residual
        // discounts keep nested HHH entries from double-counting.
        let table = engine.table();
        let table = table.lock().expect("rule table lock");
        for hhh in &window.hhhs {
            let rule = hhh.prefix.self_and_ancestors().find_map(|a| table.get(a));
            let Some(rule) = rule else { continue };
            if rule.action == Action::Watch {
                continue;
            }
            let attack = ctx.shared.truth.iter().any(|t| t.contains(hhh.prefix));
            let counter = if attack {
                &ctx.shared.matched_attack_bytes
            } else {
                &ctx.shared.matched_legit_bytes
            };
            counter.fetch_add(hhh.discounted, Ordering::Relaxed);
        }
        ctx.shared.rules_active.store(table.len() as u64, Ordering::Relaxed);
        ctx.shared.churn_total.store(table.churn(), Ordering::Relaxed);
    }
}

fn apply_event(ev: HubEvent, registry: &Registry, metrics: &Metrics, log: bool) {
    match ev {
        HubEvent::Joined { id, label, resume_at } => {
            registry.joined(id, &label, resume_at);
            metrics.join();
            if log {
                eprintln!("hhh-aggd: stream {id} ({label}) joined, resuming at frame {resume_at}");
            }
        }
        HubEvent::Frame { id, pos, frame } => {
            // Reports re-derive from the fold; hello/ack frames are
            // protocol, not state. Everything else is a state snapshot.
            // Push *before* bumping the delivered counter: pollers
            // treat `delivered >= N` as "frame N is queryable", so the
            // counter must never run ahead of the fold.
            if frame.kind != REPORT_KIND && frame.kind != HELLO_KIND && frame.kind != ACK_KIND {
                registry.fold.lock().expect("fold lock").push(id, WireSnapshot::Binary(frame));
            }
            registry.note_frame(id, pos);
            metrics.frame();
        }
        HubEvent::Left { id, clean } => {
            registry.left(id);
            if log {
                let how = if clean { "cleanly" } else { "mid-frame" };
                eprintln!("hhh-aggd: stream {id} disconnected {how}");
            }
        }
        HubEvent::Gap { id, claimed, received } => {
            registry.gap(id, claimed, received);
            metrics.gap();
            if log {
                eprintln!(
                    "hhh-aggd: refused stream {id}: claimed resume at {claimed}, \
                     hub holds {received} — restart the shard from its spool (or from zero)"
                );
            }
        }
    }
}

fn refold(registry: &Registry, metrics: &Metrics, hierarchy: &Ipv4Hierarchy) {
    let mut fold = registry.fold.lock().expect("fold lock");
    if fold.dirty_count() == 0 {
        return;
    }
    let start = Instant::now();
    match fold.refold(hierarchy) {
        Ok(points) => metrics.fold(start.elapsed().as_secs_f64(), points as u64),
        Err(e) => {
            metrics.fold_error();
            eprintln!("hhh-aggd: fold error (stream sent a bad frame?): {e}");
        }
    }
}
