//! `aggd-shard` — one deterministic scenario shard streaming to a
//! running `hhh-aggd`.
//!
//! ```text
//! aggd-shard <kind> <k> <shard> <seconds> --connect ADDR
//!            [--id N] [--spool PATH] [--die-after FRAMES]
//! ```
//!
//! Regenerates the scenario's day trace over a `<seconds>` horizon,
//! filters it to `<shard>`'s key partition, runs the per-shard
//! pipeline, and streams its v2 snapshot frames to the daemon. The
//! stream is a pure function of the arguments, which is what makes
//! restarts exact:
//!
//! * `--spool PATH` journals every frame to a spool file; on restart
//!   the transport recovers the spool, claims it in a resume hello,
//!   and replays only what the daemon's ack says is missing.
//! * without a spool, a restarted shard replays from zero and the
//!   daemon's position dedupe drops the already-delivered prefix.
//! * `--die-after N` simulates a crash: the process exits with code 9
//!   immediately before writing frame N+1 — mid-stream, torn state
//!   and all. The restart-resume test and the CI smoke use it to kill
//!   a shard deterministically.
//! * `--id N` sets the stream id for multi-kind topologies (default:
//!   the shard index; use `scenario::stream_id`'s `kind_index*k +
//!   shard` convention when one daemon folds several kinds).

use hhh_aggd::scenario::{self, Kind};
use hhh_core::SnapshotFrame;
use hhh_nettypes::TimeSpan;
use hhh_window::{FrameSpool, FrameWrite, TcpTransport, TransportError, TransportSink};
use std::process::ExitCode;

const USAGE: &str = "usage: aggd-shard <kind> <k> <shard> <seconds> --connect ADDR\n\
                     \x20                 [--id N] [--spool PATH] [--die-after FRAMES]\n\
                     kinds: exact ss-hhh rhhh tdbf-hhh";

/// Exit code of a `--die-after` simulated crash (distinct from 1 so
/// harnesses can tell "died on cue" from "failed").
const DIE_CODE: u8 = 9;

/// Forwards frames until the fuse runs out, then kills the process on
/// the spot — no flush, no drop handlers on the socket: as close to
/// `kill -9` as a deterministic harness gets.
struct DieAfter<W: FrameWrite> {
    inner: W,
    left: Option<u64>,
}

impl<W: FrameWrite> FrameWrite for DieAfter<W> {
    fn write_frame(&mut self, frame: &SnapshotFrame) -> Result<(), TransportError> {
        if let Some(left) = &mut self.left {
            if *left == 0 {
                eprintln!("aggd-shard: --die-after fuse burned, dying");
                std::process::exit(i32::from(DIE_CODE));
            }
            *left -= 1;
        }
        self.inner.write_frame(frame)
    }

    fn flush(&mut self) -> Result<(), TransportError> {
        self.inner.flush()
    }
}

struct Args {
    kind: Kind,
    k: usize,
    shard: usize,
    seconds: u64,
    connect: String,
    id: u64,
    spool: Option<String>,
    die_after: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut connect = None;
    let mut id = None;
    let mut spool = None;
    let mut die_after = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--connect" => connect = Some(argv.next().ok_or("--connect needs an address")?),
            "--id" => {
                let v = argv.next().ok_or("--id needs a stream id")?;
                id = Some(v.parse::<u64>().map_err(|_| format!("--id `{v}` is not a number"))?);
            }
            "--spool" => spool = Some(argv.next().ok_or("--spool needs a path")?),
            "--die-after" => {
                let v = argv.next().ok_or("--die-after needs a frame count")?;
                die_after =
                    Some(v.parse::<u64>().map_err(|_| format!("--die-after `{v}` not a count"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            p => positional.push(p.to_string()),
        }
    }
    let [kind, k, shard, seconds] = positional.as_slice() else {
        return Err("expected <kind> <k> <shard> <seconds>".into());
    };
    let kind = Kind::parse(kind).ok_or_else(|| format!("unknown kind `{kind}`"))?;
    let k: usize = k.parse().map_err(|_| format!("k `{k}` is not a count"))?;
    let shard: usize = shard.parse().map_err(|_| format!("shard `{shard}` is not an index"))?;
    if k == 0 || shard >= k {
        return Err(format!("shard {shard} out of range for k={k}"));
    }
    let seconds: u64 = seconds.parse().map_err(|_| format!("seconds `{seconds}` not a number"))?;
    if seconds == 0 {
        return Err("seconds must be at least 1".into());
    }
    let connect = connect.ok_or("--connect ADDR is required")?;
    Ok(Args { kind, k, shard, seconds, connect, id: id.unwrap_or(shard as u64), spool, die_after })
}

fn run(args: &Args) -> Result<(), String> {
    let horizon = TimeSpan::from_secs(args.seconds);
    let trace = scenario::scenario_trace(horizon);
    let packets = scenario::shard_packets(&trace, args.k, args.shard);
    let label = scenario::shard_label(args.kind, args.k, args.shard);
    let mut transport = TcpTransport::connect(&args.connect).with_hello(args.id, label);
    if let Some(path) = &args.spool {
        let spool = FrameSpool::open(path).map_err(|e| format!("spool {path}: {e}"))?;
        transport = transport.with_spool(spool);
    }
    let sink = TransportSink::new(DieAfter { inner: transport, left: args.die_after });
    let (_writer, err) = scenario::shard_into(args.kind, &packets, horizon, args.shard, sink);
    match err {
        None => Ok(()),
        Some(e) => Err(format!("{} -> {}: {e}", args.shard, args.connect)),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("aggd-shard: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("aggd-shard: {msg}");
            ExitCode::FAILURE
        }
    }
}
