//! The **distributed-aggregation scenario** shared by the `distagg`
//! experiment (in `hhh-experiments`) and the daemon's shard driver
//! (`aggd-shard`): one day trace split K ways by the sharded
//! pipeline's own key partition ([`shard_of`]), K independent
//! per-shard pipelines writing their per-report-point detector
//! snapshots, and the reference runs the folds are checked against.
//!
//! Everything here is **deterministic**: the same
//! `(kind, trace, k, shard)` always produces the same stream bytes.
//! That determinism is what makes restart recovery exact — a shard
//! process restarted from zero regenerates its stream bit-for-bit, so
//! the hub's position dedupe (or the spool replay) resumes the fold as
//! if nothing happened.
//!
//! The module lives in `hhh-aggd` (not `hhh-experiments`) so the
//! daemon's binaries and integration tests can drive scenario shards
//! without a dependency cycle; `hhh_experiments::distagg` re-exports
//! every name, so experiment callers are unaffected.

use hhh_agg::{fold_streams, read_stream, MergedPoint};
use hhh_core::{
    ExactHhh, HhhDetector, MergeableDetector, MvPipeHhh, Rhhh, SpaceSavingHhh, TdbfHhh,
    TdbfHhhConfig, Threshold, WireFormat,
};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord, TimeSpan};
use hhh_window::{
    shard_of, Continuous, Disjoint, PacketSource, Pipeline, ReportSink, ShardedContinuous,
    ShardedDisjoint, SnapshotSink, TcpTransport, TransportError, TransportSink, WindowReport,
};

/// Report window / probe cadence of the scenario.
pub const DISTAGG_WINDOW: TimeSpan = TimeSpan::from_secs(5);

/// Report threshold of the scenario (1% of bytes).
pub fn distagg_threshold() -> Threshold {
    Threshold::percent(1.0)
}

/// Space-Saving counters for `ss-hhh`/`rhhh` in the scenario.
pub const DISTAGG_CAPACITY: usize = 512;

/// Majority-vote buckets for `mvpipe` in the scenario — sized so the
/// single pipe roughly matches the per-level Space-Saving state
/// (`DISTAGG_CAPACITY` counters × the hierarchy's non-root levels).
pub const DISTAGG_MVPIPE_BUCKETS: usize = 2048;

/// The detector kinds the scenario exercises — every kind the snapshot
/// codec can round-trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// [`ExactHhh`] in disjoint windows (lossless merges).
    Exact,
    /// [`SpaceSavingHhh`] in disjoint windows.
    SsHhh,
    /// [`Rhhh`] in disjoint windows (per-shard sampling seeds).
    Rhhh,
    /// [`TdbfHhh`] probed continuously.
    Tdbf,
    /// [`MvPipeHhh`] in disjoint windows (single bottom-level pipe).
    MvPipe,
}

/// All five kinds, in fixed order.
pub const KINDS: [Kind; 5] = [Kind::Exact, Kind::SsHhh, Kind::Rhhh, Kind::Tdbf, Kind::MvPipe];

impl Kind {
    /// The wire `kind` label.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Exact => "exact",
            Kind::SsHhh => "ss-hhh",
            Kind::Rhhh => "rhhh",
            Kind::Tdbf => "tdbf-hhh",
            Kind::MvPipe => "mvpipe",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "exact" => Some(Kind::Exact),
            "ss-hhh" => Some(Kind::SsHhh),
            "rhhh" => Some(Kind::Rhhh),
            "tdbf-hhh" => Some(Kind::Tdbf),
            "mvpipe" => Some(Kind::MvPipe),
            _ => None,
        }
    }

    /// This kind's index within [`KINDS`].
    pub fn index(self) -> u64 {
        match self {
            Kind::Exact => 0,
            Kind::SsHhh => 1,
            Kind::Rhhh => 2,
            Kind::Tdbf => 3,
            Kind::MvPipe => 4,
        }
    }
}

/// The scenario hierarchy (IPv4 source prefixes weighted by bytes).
pub fn hierarchy() -> Ipv4Hierarchy {
    Ipv4Hierarchy::bytes()
}

/// RHHH sampling seed for a shard — shared between the split runs and
/// the in-process sharded reference, so their states are bit-identical.
pub fn rhhh_seed(shard: usize) -> u64 {
    0x5EED_0000 + shard as u64
}

/// TDBF configuration of the scenario (half-life = half a window).
pub fn tdbf_config() -> TdbfHhhConfig {
    TdbfHhhConfig { half_life: DISTAGG_WINDOW / 2, ..TdbfHhhConfig::default() }
}

/// The scenario's day trace over an explicit horizon — day 0 of the
/// acceptance traces, the same generator and seed at every scale, so
/// two processes that agree on the horizon agree on every packet.
pub fn scenario_trace(horizon: TimeSpan) -> Vec<PacketRecord> {
    use hhh_trace::{scenarios, TraceGenerator};
    TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect()
}

/// TDBF probe instants: every window boundary in the horizon.
pub fn probes(horizon: TimeSpan) -> Vec<Nanos> {
    (1..=horizon / DISTAGG_WINDOW).map(|i| Nanos::ZERO + DISTAGG_WINDOW * i).collect()
}

/// The **globally unique stream id** for `(kind, shard)` in a K-shard
/// all-kinds topology: `kind.index() * k + shard`. The hub and the
/// daemon identify a logical stream by its id alone — for its whole
/// lifetime, across reconnects — so two different streams must never
/// share one. Single-kind topologies may keep the bare shard index
/// (what [`shard_to_addr_on`] does); anything driving more than one
/// kind at the same daemon uses this.
pub fn stream_id(kind: Kind, k: usize, shard: usize) -> u64 {
    kind.index() * k as u64 + shard as u64
}

/// The hello label for `(kind, shard)` — `exact/0of3` style.
pub fn shard_label(kind: Kind, k: usize, shard: usize) -> String {
    format!("{}/{shard}of{k}", kind.label())
}

/// Run the scenario's windowed sharded pipeline over an arbitrary
/// packet [`PacketSource`] into an arbitrary sink — the source decides
/// where packets come from (a slice, a bounded live feed), the sink
/// decides the medium (byte buffer, file, socket, in-process channel).
fn windowed_source_into<Src, D, S>(
    source: Src,
    horizon: TimeSpan,
    detectors: Vec<D>,
    sink: S,
) -> S::Output
where
    Src: PacketSource,
    D: HhhDetector<Ipv4Hierarchy> + MergeableDetector + Clone + Send,
    S: ReportSink<Ipv4Prefix>,
{
    Pipeline::new(source)
        .engine(ShardedDisjoint::new(
            detectors,
            horizon,
            DISTAGG_WINDOW,
            &[distagg_threshold()],
            |p| p.src,
        ))
        .sink(sink)
        .run()
}

/// [`windowed_source_into`] over an in-memory packet slice.
fn windowed_into<D, S>(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    detectors: Vec<D>,
    sink: S,
) -> S::Output
where
    D: HhhDetector<Ipv4Hierarchy> + MergeableDetector + Clone + Send,
    S: ReportSink<Ipv4Prefix>,
{
    windowed_source_into(packets.iter().copied(), horizon, detectors, sink)
}

/// The continuous (TDBF) counterpart of [`windowed_source_into`].
fn continuous_source_into<Src, S>(
    source: Src,
    horizon: TimeSpan,
    shards: usize,
    sink: S,
) -> S::Output
where
    Src: PacketSource,
    S: ReportSink<Ipv4Prefix>,
{
    let detectors: Vec<_> = (0..shards).map(|_| TdbfHhh::new(hierarchy(), tdbf_config())).collect();
    Pipeline::new(source)
        .engine(ShardedContinuous::new(detectors, &probes(horizon), distagg_threshold(), |p| p.src))
        .sink(sink)
        .run()
}

/// [`continuous_source_into`] over an in-memory packet slice.
fn continuous_into<S: ReportSink<Ipv4Prefix>>(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    shards: usize,
    sink: S,
) -> S::Output {
    continuous_source_into(packets.iter().copied(), horizon, shards, sink)
}

fn windowed_stream<D>(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    detectors: Vec<D>,
    format: WireFormat,
) -> Vec<u8>
where
    D: HhhDetector<Ipv4Hierarchy> + MergeableDetector + Clone + Send,
{
    let (bytes, err) =
        windowed_into(packets, horizon, detectors, SnapshotSink::with_format(Vec::new(), format));
    assert!(err.is_none(), "Vec<u8> writes cannot fail");
    bytes
}

fn continuous_stream(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    shards: usize,
    format: WireFormat,
) -> Vec<u8> {
    let (bytes, err) =
        continuous_into(packets, horizon, shards, SnapshotSink::with_format(Vec::new(), format));
    assert!(err.is_none(), "Vec<u8> writes cannot fail");
    bytes
}

/// The sub-stream [`shard_of`] assigns to `shard` among `k`.
pub fn shard_packets(trace: &[PacketRecord], k: usize, shard: usize) -> Vec<PacketRecord> {
    trace.iter().copied().filter(|p| shard_of(&p.src, k) == shard).collect()
}

/// One shard's pipeline of the scenario over an arbitrary
/// [`PacketSource`] into an arbitrary sink — the medium-agnostic core
/// everything shares. [`shard_into`] wraps it for in-memory slices;
/// live drivers (like `hhh-loadgen`) hand it the consuming half of a
/// [`bounded`](hhh_window::source::bounded) channel so a producer
/// thread feeds the shard with back-pressure.
pub fn shard_source_into<Src, S>(
    kind: Kind,
    source: Src,
    horizon: TimeSpan,
    shard: usize,
    sink: S,
) -> S::Output
where
    Src: PacketSource,
    S: ReportSink<Ipv4Prefix>,
{
    match kind {
        Kind::Exact => {
            windowed_source_into(source, horizon, vec![ExactHhh::new(hierarchy())], sink)
        }
        Kind::SsHhh => windowed_source_into(
            source,
            horizon,
            vec![SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY)],
            sink,
        ),
        Kind::Rhhh => windowed_source_into(
            source,
            horizon,
            vec![Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(shard))],
            sink,
        ),
        Kind::Tdbf => continuous_source_into(source, horizon, 1, sink),
        Kind::MvPipe => windowed_source_into(
            source,
            horizon,
            vec![MvPipeHhh::new(hierarchy(), DISTAGG_MVPIPE_BUCKETS)],
            sink,
        ),
    }
}

/// [`shard_source_into`] over the shard's already-partitioned
/// in-memory sub-stream (see [`shard_packets`]).
pub fn shard_into<S: ReportSink<Ipv4Prefix>>(
    kind: Kind,
    packets: &[PacketRecord],
    horizon: TimeSpan,
    shard: usize,
    sink: S,
) -> S::Output {
    shard_source_into(kind, packets.iter().copied(), horizon, shard, sink)
}

/// One shard's run of the distributed scenario: filter the trace to
/// the keys [`shard_of`] assigns to `shard` among `k`, run the
/// per-shard pipeline, and return its snapshot stream in `format` —
/// exactly what that shard's *process* would write.
pub fn shard_stream_on(
    kind: Kind,
    trace: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
    shard: usize,
    format: WireFormat,
) -> Vec<u8> {
    assert!(shard < k, "shard index out of range");
    let packets = shard_packets(trace, k, shard);
    let (bytes, err) =
        shard_into(kind, &packets, horizon, shard, SnapshotSink::with_format(Vec::new(), format));
    assert!(err.is_none(), "Vec<u8> writes cannot fail");
    bytes
}

/// [`shard_stream_on`] in the v1 JSONL format.
pub fn shard_jsonl_on(
    kind: Kind,
    trace: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
    shard: usize,
) -> Vec<u8> {
    shard_stream_on(kind, trace, horizon, k, shard, WireFormat::Json)
}

/// One shard's run streamed **over TCP** to an aggregator at `addr`
/// with an explicit stream id — what `aggd-shard` and the aggd e2e
/// driver use ([`stream_id`] for multi-kind topologies). The transport
/// opens with a hello frame carrying `id`, so the aggregator folds in
/// stream-id order no matter who connects first; frames are the
/// detector's **native** encodes (no JSON anywhere on the shard side).
pub fn shard_to_addr_with(
    kind: Kind,
    trace: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
    shard: usize,
    addr: &str,
    id: u64,
) -> Result<(), TransportError> {
    assert!(shard < k, "shard index out of range");
    let transport = TcpTransport::connect(addr).with_hello(id, shard_label(kind, k, shard));
    let packets = shard_packets(trace, k, shard);
    let (_transport, err) =
        shard_into(kind, &packets, horizon, shard, TransportSink::new(transport));
    match err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// [`shard_to_addr_with`] with the single-kind id convention
/// (`id == shard`) — what `distagg shard --connect` does.
pub fn shard_to_addr_on(
    kind: Kind,
    trace: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
    shard: usize,
    addr: &str,
) -> Result<(), TransportError> {
    shard_to_addr_with(kind, trace, horizon, k, shard, addr, shard as u64)
}

/// The in-process K-shard reference stream: one sharded pipeline over
/// the whole trace, whose state lines carry the *merged* detector at
/// every report point — what the cross-process fold must reproduce
/// byte-for-byte.
pub fn inprocess_sharded_jsonl_on(
    kind: Kind,
    packets: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
) -> Vec<u8> {
    let format = WireFormat::Json;
    match kind {
        Kind::Exact => windowed_stream(
            packets,
            horizon,
            (0..k).map(|_| ExactHhh::new(hierarchy())).collect(),
            format,
        ),
        Kind::SsHhh => windowed_stream(
            packets,
            horizon,
            (0..k).map(|_| SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY)).collect(),
            format,
        ),
        Kind::Rhhh => windowed_stream(
            packets,
            horizon,
            (0..k).map(|s| Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(s))).collect(),
            format,
        ),
        Kind::Tdbf => continuous_stream(packets, horizon, k, format),
        Kind::MvPipe => windowed_stream(
            packets,
            horizon,
            (0..k).map(|_| MvPipeHhh::new(hierarchy(), DISTAGG_MVPIPE_BUCKETS)).collect(),
            format,
        ),
    }
}

/// The unsharded single-process reference reports (series 0 at the
/// scenario threshold).
pub fn single_process_reports_on(
    kind: Kind,
    packets: &[PacketRecord],
    horizon: TimeSpan,
) -> Vec<WindowReport<Ipv4Prefix>> {
    let mut reports = match kind {
        Kind::Exact => Pipeline::new(packets.iter().copied())
            .engine(Disjoint::new(
                ExactHhh::new(hierarchy()),
                horizon,
                DISTAGG_WINDOW,
                &[distagg_threshold()],
                |p| p.src,
            ))
            .collect()
            .run(),
        Kind::SsHhh => Pipeline::new(packets.iter().copied())
            .engine(Disjoint::new(
                SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY),
                horizon,
                DISTAGG_WINDOW,
                &[distagg_threshold()],
                |p| p.src,
            ))
            .collect()
            .run(),
        Kind::Rhhh => Pipeline::new(packets.iter().copied())
            .engine(Disjoint::new(
                Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(0)),
                horizon,
                DISTAGG_WINDOW,
                &[distagg_threshold()],
                |p| p.src,
            ))
            .collect()
            .run(),
        Kind::Tdbf => Pipeline::new(packets.iter().copied())
            .engine(Continuous::new(
                TdbfHhh::new(hierarchy(), tdbf_config()),
                &probes(horizon),
                distagg_threshold(),
                |p| p.src,
            ))
            .collect()
            .run(),
        Kind::MvPipe => Pipeline::new(packets.iter().copied())
            .engine(Disjoint::new(
                MvPipeHhh::new(hierarchy(), DISTAGG_MVPIPE_BUCKETS),
                horizon,
                DISTAGG_WINDOW,
                &[distagg_threshold()],
                |p| p.src,
            ))
            .collect()
            .run(),
    };
    reports.remove(0)
}

/// Fold K shard streams (bytes, as the shard processes wrote them)
/// into merged report points.
pub fn fold_shard_streams(
    streams: &[Vec<u8>],
) -> Result<Vec<MergedPoint<Ipv4Hierarchy>>, hhh_agg::AggError> {
    let mut parsed = Vec::with_capacity(streams.len());
    for (i, bytes) in streams.iter().enumerate() {
        parsed.push(read_stream(i, bytes.as_slice())?);
    }
    fold_streams(&hierarchy(), &parsed)
}
