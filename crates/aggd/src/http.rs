//! A minimal hand-rolled HTTP/1.1 server for the daemon's three
//! endpoints — enough for `curl` and Prometheus scrapes, nothing more:
//! `GET` only, `Connection: close` on every response, one thread per
//! connection **bounded** by the daemon's in-flight cap (connections
//! beyond it get an immediate 503, so slow clients can saturate their
//! slots but never the process). Transient accept errors retry with
//! backoff and are counted as `aggd_http_accept_errors_total`; only a
//! shutdown stops the loop.
//!
//! | Endpoint | Answer |
//! |----------|--------|
//! | `GET /healthz` | `ok` |
//! | `GET /metrics` | Prometheus text exposition ([`crate::metrics`]) |
//! | `GET /hhh` | merged HHH report lines (v1 JSONL, exactly what `hhh-agg` prints) |
//! | `GET /rules` | the mitigation rule table (JSON; `?text=1` for the CLI render) — 404 unless the daemon runs a policy engine |
//!
//! `/hhh` query parameters: `kind=<label>` filters to one detector
//! kind; `all=1` renders every retained report point instead of the
//! latest per kind; `state=1` also emits the folded state line per
//! point (the stream another aggregation tier would ingest);
//! `threshold=PCT` overrides the daemon's report threshold(s). Query
//! keys and values are percent-decoded (`%XX` and `+`) before
//! matching; a malformed escape is a 400.

use crate::daemon::MitigateShared;
use crate::metrics::Metrics;
use crate::registry::Registry;
use hhh_agg::{write_merged, MergedPoint};
use hhh_core::{Threshold, WireFormat};
use hhh_hierarchy::Ipv4Hierarchy;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// First retry delay after a transient accept failure; doubles per
/// consecutive failure up to [`ACCEPT_BACKOFF_MAX`]. EMFILE-style
/// pressure usually clears within a handful of milliseconds (a handler
/// finishing returns an fd), so start small.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);

/// Ceiling on the accept-retry delay — keeps the server responsive to
/// `stop` and quick to recover once fd pressure clears.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(250);

/// What a handler thread needs to answer any request.
pub(crate) struct HttpShared {
    pub registry: Arc<Registry>,
    pub metrics: Arc<Metrics>,
    pub thresholds: Vec<Threshold>,
    /// Hard cap on concurrently running handler threads; connections
    /// beyond it get an immediate 503 instead of a thread.
    pub max_inflight: usize,
    /// Handler threads currently running (admitted, not yet finished).
    pub inflight: AtomicUsize,
    /// Mitigation state when the daemon runs a policy engine
    /// (`/rules` and the `mitigate_*` metric families); `None` makes
    /// `/rules` a 404.
    pub mitigate: Option<Arc<MitigateShared>>,
}

/// Holds one admission slot; releases it when the handler returns, on
/// any path.
struct InflightGuard(Arc<HttpShared>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::Release);
    }
}

/// Try to claim a handler slot (a semaphore `try_acquire` on the
/// `inflight` counter).
fn try_admit(shared: &Arc<HttpShared>) -> Option<InflightGuard> {
    let mut current = shared.inflight.load(Ordering::Relaxed);
    loop {
        if current >= shared.max_inflight {
            return None;
        }
        match shared.inflight.compare_exchange_weak(
            current,
            current + 1,
            Ordering::Acquire,
            Ordering::Relaxed,
        ) {
            Ok(_) => return Some(InflightGuard(Arc::clone(shared))),
            Err(now) => current = now,
        }
    }
}

/// Accept loop: non-blocking so `stop` is honored within a few
/// milliseconds; each admitted connection is handled on its own thread
/// (queries are short-lived — curl, scrapes, polls), bounded by
/// `max_inflight` so a slow-loris swarm cannot pin unbounded threads.
///
/// Transient accept failures (ECONNABORTED, EMFILE under fd pressure,
/// EINTR…) are counted and retried with exponential backoff — only
/// `stop` ends the loop. A server that dies on the first aborted
/// handshake is no server at all.
pub(crate) fn serve(listener: TcpListener, shared: Arc<HttpShared>, stop: Arc<AtomicBool>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut backoff = ACCEPT_BACKOFF_MIN;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                let Some(guard) = try_admit(&shared) else {
                    shared.metrics.http_busy();
                    let mut conn = conn;
                    // Take the request off the socket (bounded) before
                    // answering: closing with unread bytes in the
                    // receive buffer makes the kernel RST the 503 out
                    // of the client's hands.
                    let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
                    let mut scratch = [0u8; 1024];
                    let _ = io::Read::read(&mut conn, &mut scratch);
                    respond(
                        &mut conn,
                        503,
                        "Service Unavailable",
                        "text/plain",
                        b"handler capacity saturated, retry\n",
                    );
                    continue;
                };
                let handler_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("aggd-http".into())
                    .spawn(move || {
                        let _slot = guard;
                        handle(conn, &handler_shared);
                    })
                    .is_ok();
                if !spawned {
                    // Thread exhaustion: the closure (and its guard and
                    // connection) were dropped — slot released, peer
                    // sees a close. Count it as capacity pressure.
                    shared.metrics.http_busy();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                shared.metrics.http_accept_error();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

fn handle(conn: TcpStream, shared: &HttpShared) {
    shared.metrics.http_request();
    // A client that never finishes its request line must not pin the
    // thread.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = conn.set_nodelay(true);
    let Ok(reader_half) = conn.try_clone() else { return };
    let mut reader = BufReader::new(reader_half);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return,
    };
    // Drain the headers; we never need them.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut conn = conn;
    if method != "GET" {
        respond(&mut conn, 405, "Method Not Allowed", "text/plain", b"GET only\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    match path {
        "/healthz" => respond(&mut conn, 200, "OK", "text/plain", b"ok\n"),
        "/metrics" => {
            let streams = shared.registry.streams();
            let (held, dirty) = {
                let fold = shared.registry.fold.lock().expect("fold lock");
                (fold.points().count(), fold.dirty_count())
            };
            let inflight = shared.inflight.load(Ordering::Relaxed);
            let mut body = shared.metrics.render(&streams, held, dirty, inflight);
            if let Some(m) = &shared.mitigate {
                render_mitigate_metrics(&mut body, m);
            }
            respond(
                &mut conn,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
            );
        }
        "/hhh" => match render_hhh(shared, query) {
            Ok(body) => respond(&mut conn, 200, "OK", "application/x-ndjson", &body),
            Err(msg) => {
                respond(&mut conn, 400, "Bad Request", "text/plain", format!("{msg}\n").as_bytes())
            }
        },
        "/rules" => match render_rules(shared, query) {
            Ok((body, content_type)) => respond(&mut conn, 200, "OK", content_type, &body),
            Err(RulesError::Disabled) => respond(
                &mut conn,
                404,
                "Not Found",
                "text/plain",
                b"mitigation is not enabled on this daemon\n",
            ),
            Err(RulesError::BadQuery(msg)) => {
                respond(&mut conn, 400, "Bad Request", "text/plain", format!("{msg}\n").as_bytes())
            }
        },
        _ => respond(&mut conn, 404, "Not Found", "text/plain", b"not found\n"),
    }
}

enum RulesError {
    Disabled,
    BadQuery(String),
}

/// Append the `mitigate_*` families to a `/metrics` body. The
/// dropped-bytes family only appears when ground truth is attached —
/// without truth there is no attack/legit split to report.
fn render_mitigate_metrics(body: &mut String, m: &MitigateShared) {
    use std::fmt::Write as _;
    let _ = write!(
        body,
        "# HELP mitigate_rules_active Mitigation rules currently installed.\n\
         # TYPE mitigate_rules_active gauge\n\
         mitigate_rules_active {}\n\
         # HELP mitigate_rule_churn_total Rule table membership changes \
         (inserts + evictions + expirations).\n\
         # TYPE mitigate_rule_churn_total counter\n\
         mitigate_rule_churn_total {}\n",
        m.rules_active.load(Ordering::Relaxed),
        m.churn_total.load(Ordering::Relaxed),
    );
    if !m.truth.is_empty() {
        let _ = write!(
            body,
            "# HELP mitigate_dropped_bytes_total Reported bytes matched by a non-watch \
             rule, classed against attached ground truth (estimate from report \
             discounts; measured drops live in the data-plane gate).\n\
             # TYPE mitigate_dropped_bytes_total counter\n\
             mitigate_dropped_bytes_total{{class=\"attack\"}} {}\n\
             mitigate_dropped_bytes_total{{class=\"legit\"}} {}\n",
            m.matched_attack_bytes.load(Ordering::Relaxed),
            m.matched_legit_bytes.load(Ordering::Relaxed),
        );
    }
}

/// Render `/rules`: the policy engine's table as JSON (default) or
/// the CLI's aligned text (`?text=1`).
fn render_rules(shared: &HttpShared, query: &str) -> Result<(Vec<u8>, &'static str), RulesError> {
    let Some(mitigate) = &shared.mitigate else {
        return Err(RulesError::Disabled);
    };
    let params = parse_query(query, &["text"]).map_err(RulesError::BadQuery)?;
    let text = params.get("text").is_some_and(|v| v == "1");
    let engine = mitigate.engine.lock().expect("policy engine lock");
    let table = engine.table();
    let table = table.lock().expect("rule table lock");
    if text {
        Ok((hhh_mitigate::rules_text(&table).into_bytes(), "text/plain; charset=utf-8"))
    } else {
        let mut body = hhh_mitigate::rules_json(&table).into_bytes();
        body.push(b'\n');
        Ok((body, "application/json"))
    }
}

/// Render the merged HHH answer for a `/hhh` query string. The output
/// lines are exactly what `hhh-agg` would print for the same
/// snapshots, thresholds, and flags — `curl | diff` against a
/// file-based fold is the daemon's acceptance check.
fn render_hhh(shared: &HttpShared, query: &str) -> Result<Vec<u8>, String> {
    let params = parse_query(query, &["kind", "all", "state", "threshold"])?;
    let kind = params.get("kind").cloned();
    let all = params.get("all").is_some_and(|v| v == "1");
    let state = params.get("state").is_some_and(|v| v == "1");
    let thresholds = match params.get("threshold") {
        Some(v) => {
            let pct: f64 = v.parse().map_err(|_| format!("threshold `{v}` is not a number"))?;
            if !(pct > 0.0 && pct <= 100.0) {
                return Err(format!("threshold {pct} out of (0, 100]"));
            }
            vec![Threshold::percent(pct)]
        }
        None => shared.thresholds.clone(),
    };

    let fold = shared.registry.fold.lock().expect("fold lock");
    let wanted = |p: &&MergedPoint<Ipv4Hierarchy>| kind.as_deref().is_none_or(|k| p.kind == k);
    let mut body = Vec::new();
    let result = if all {
        write_merged(&mut body, fold.points().filter(wanted), &thresholds, state, WireFormat::Json)
    } else {
        // Latest point per kind (or of the one requested kind), in
        // kind order.
        let mut latest: BTreeMap<&str, &MergedPoint<Ipv4Hierarchy>> = BTreeMap::new();
        for p in fold.points().filter(wanted) {
            latest.insert(&p.kind, p);
        }
        write_merged(&mut body, latest.into_values(), &thresholds, state, WireFormat::Json)
    };
    result.map_err(|e| e.to_string())?;
    Ok(body)
}

/// Decode one query component: `+` is a space, `%XX` is the escaped
/// byte. Malformed escapes (truncated, non-hex, or bytes that don't
/// form UTF-8) are errors — the handler turns them into a 400.
fn percent_decode(component: &str) -> Result<String, String> {
    let bytes = component.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let byte = bytes
                    .get(i + 1..i + 3)
                    .and_then(|hex| std::str::from_utf8(hex).ok())
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok())
                    .ok_or_else(|| format!("malformed percent escape in `{component}`"))?;
                out.push(byte);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| format!("percent escapes in `{component}` decode to invalid UTF-8"))
}

/// Longest query string any endpoint accepts. The legitimate queries
/// are tens of bytes; anything kilobytes long is a confused client or
/// a probe, and deserves a 400 rather than silent best-effort
/// parsing.
const MAX_QUERY_LEN: usize = 1024;

fn parse_query(query: &str, allowed: &[&str]) -> Result<BTreeMap<String, String>, String> {
    if query.len() > MAX_QUERY_LEN {
        return Err(format!("query string longer than {MAX_QUERY_LEN} bytes"));
    }
    let mut params = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, "1"));
        // Decode *before* matching keys, per the curl contract:
        // `threshold=2%2E5` is `threshold=2.5`.
        let k = percent_decode(k)?;
        let v = percent_decode(v)?;
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown query parameter `{k}`"));
        }
        // A duplicate key is ambiguous — refusing beats silently
        // letting the last occurrence win.
        if params.insert(k.clone(), v).is_some() {
            return Err(format!("duplicate query parameter `{k}`"));
        }
    }
    Ok(params)
}

fn respond(conn: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = conn.write_all(head.as_bytes()).and_then(|()| conn.write_all(body));
    let _ = conn.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    const HHH_KEYS: &[&str] = &["kind", "all", "state", "threshold"];

    #[test]
    fn query_strings_parse_and_reject_unknown_keys() {
        let p = parse_query("kind=exact&all=1&state=1&threshold=2.5", HHH_KEYS).expect("parses");
        assert_eq!(p.get("kind").map(String::as_str), Some("exact"));
        assert_eq!(p.get("all").map(String::as_str), Some("1"));
        assert_eq!(p.get("threshold").map(String::as_str), Some("2.5"));
        assert!(parse_query("", HHH_KEYS).expect("empty ok").is_empty());
        // Bare keys default to "1" (curl's ?all shorthand).
        let p = parse_query("all", HHH_KEYS).expect("parses");
        assert_eq!(p.get("all").map(String::as_str), Some("1"));
        assert!(parse_query("nope=1", HHH_KEYS).is_err());
        // Per-endpoint allow-lists: /rules takes `text`, /hhh doesn't.
        assert!(parse_query("text=1", &["text"]).is_ok());
        assert!(parse_query("text=1", HHH_KEYS).is_err());
    }

    #[test]
    fn query_strings_percent_decode_keys_and_values() {
        // The doc contract's own example: an escaped dot in a number.
        let p = parse_query("threshold=2%2E5", HHH_KEYS).expect("escaped value parses");
        assert_eq!(p.get("threshold").map(String::as_str), Some("2.5"));
        // Escapes in the *key* decode before key matching.
        let p = parse_query("%6bind=exact", HHH_KEYS).expect("escaped key parses");
        assert_eq!(p.get("kind").map(String::as_str), Some("exact"));
        // `+` is a space.
        let p = parse_query("kind=a+b", HHH_KEYS).expect("plus decodes");
        assert_eq!(p.get("kind").map(String::as_str), Some("a b"));
        // Upper- and lower-case hex both work.
        assert_eq!(percent_decode("%2e%2E").expect("hex case-insensitive"), "..");
    }

    #[test]
    fn malformed_percent_escapes_are_errors() {
        for bad in ["threshold=2%", "threshold=2%2", "threshold=2%zz", "kind=%ff%fe"] {
            assert!(parse_query(bad, HHH_KEYS).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn duplicate_keys_are_errors_not_last_wins() {
        let err = parse_query("kind=a&kind=b", HHH_KEYS).expect_err("duplicates rejected");
        assert!(err.contains("duplicate"), "got: {err}");
        // Even when the duplicate is spelled via an escape.
        assert!(parse_query("kind=a&%6bind=b", HHH_KEYS).is_err());
    }

    #[test]
    fn overlong_query_strings_are_errors() {
        let long = format!("kind={}", "x".repeat(MAX_QUERY_LEN));
        let err = parse_query(&long, HHH_KEYS).expect_err("overlong rejected");
        assert!(err.contains("longer than"), "got: {err}");
        // Right at the cap still parses.
        let edge = format!("kind={}", "x".repeat(MAX_QUERY_LEN - 5));
        assert!(parse_query(&edge, HHH_KEYS).is_ok());
    }
}
