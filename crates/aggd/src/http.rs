//! A minimal hand-rolled HTTP/1.1 server for the daemon's three
//! endpoints — enough for `curl` and Prometheus scrapes, nothing more:
//! `GET` only, `Connection: close` on every response, one thread per
//! connection.
//!
//! | Endpoint | Answer |
//! |----------|--------|
//! | `GET /healthz` | `ok` |
//! | `GET /metrics` | Prometheus text exposition ([`crate::metrics`]) |
//! | `GET /hhh` | merged HHH report lines (v1 JSONL, exactly what `hhh-agg` prints) |
//!
//! `/hhh` query parameters: `kind=<label>` filters to one detector
//! kind; `all=1` renders every retained report point instead of the
//! latest per kind; `state=1` also emits the folded state line per
//! point (the stream another aggregation tier would ingest);
//! `threshold=PCT` overrides the daemon's report threshold(s).

use crate::metrics::Metrics;
use crate::registry::Registry;
use hhh_agg::{write_merged, MergedPoint};
use hhh_core::{Threshold, WireFormat};
use hhh_hierarchy::Ipv4Hierarchy;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a handler thread needs to answer any request.
pub(crate) struct HttpShared {
    pub registry: Arc<Registry>,
    pub metrics: Arc<Metrics>,
    pub thresholds: Vec<Threshold>,
}

/// Accept loop: non-blocking so `stop` is honored within a few
/// milliseconds; each accepted connection is handled on its own
/// thread (queries are short-lived — curl, scrapes, polls).
pub(crate) fn serve(listener: TcpListener, shared: Arc<HttpShared>, stop: Arc<AtomicBool>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle(conn, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn handle(conn: TcpStream, shared: &HttpShared) {
    // A client that never finishes its request line must not pin the
    // thread.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = conn.set_nodelay(true);
    let Ok(reader_half) = conn.try_clone() else { return };
    let mut reader = BufReader::new(reader_half);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return,
    };
    // Drain the headers; we never need them.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut conn = conn;
    if method != "GET" {
        respond(&mut conn, 405, "Method Not Allowed", "text/plain", b"GET only\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    match path {
        "/healthz" => respond(&mut conn, 200, "OK", "text/plain", b"ok\n"),
        "/metrics" => {
            let streams = shared.registry.streams();
            let (held, dirty) = {
                let fold = shared.registry.fold.lock().expect("fold lock");
                (fold.points().count(), fold.dirty_count())
            };
            let body = shared.metrics.render(&streams, held, dirty);
            respond(
                &mut conn,
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
            );
        }
        "/hhh" => match render_hhh(shared, query) {
            Ok(body) => respond(&mut conn, 200, "OK", "application/x-ndjson", &body),
            Err(msg) => {
                respond(&mut conn, 400, "Bad Request", "text/plain", format!("{msg}\n").as_bytes())
            }
        },
        _ => respond(&mut conn, 404, "Not Found", "text/plain", b"not found\n"),
    }
}

/// Render the merged HHH answer for a `/hhh` query string. The output
/// lines are exactly what `hhh-agg` would print for the same
/// snapshots, thresholds, and flags — `curl | diff` against a
/// file-based fold is the daemon's acceptance check.
fn render_hhh(shared: &HttpShared, query: &str) -> Result<Vec<u8>, String> {
    let params = parse_query(query)?;
    let kind = params.get("kind").cloned();
    let all = params.get("all").is_some_and(|v| v == "1");
    let state = params.get("state").is_some_and(|v| v == "1");
    let thresholds = match params.get("threshold") {
        Some(v) => {
            let pct: f64 = v.parse().map_err(|_| format!("threshold `{v}` is not a number"))?;
            if !(pct > 0.0 && pct <= 100.0) {
                return Err(format!("threshold {pct} out of (0, 100]"));
            }
            vec![Threshold::percent(pct)]
        }
        None => shared.thresholds.clone(),
    };

    let fold = shared.registry.fold.lock().expect("fold lock");
    let wanted = |p: &&MergedPoint<Ipv4Hierarchy>| kind.as_deref().is_none_or(|k| p.kind == k);
    let mut body = Vec::new();
    let result = if all {
        write_merged(&mut body, fold.points().filter(wanted), &thresholds, state, WireFormat::Json)
    } else {
        // Latest point per kind (or of the one requested kind), in
        // kind order.
        let mut latest: BTreeMap<&str, &MergedPoint<Ipv4Hierarchy>> = BTreeMap::new();
        for p in fold.points().filter(wanted) {
            latest.insert(&p.kind, p);
        }
        write_merged(&mut body, latest.into_values(), &thresholds, state, WireFormat::Json)
    };
    result.map_err(|e| e.to_string())?;
    Ok(body)
}

fn parse_query(query: &str) -> Result<BTreeMap<String, String>, String> {
    let mut params = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, "1"));
        match k {
            "kind" | "all" | "state" | "threshold" => {
                params.insert(k.to_string(), v.to_string());
            }
            other => return Err(format!("unknown query parameter `{other}`")),
        }
    }
    Ok(params)
}

fn respond(conn: &mut TcpStream, code: u16, reason: &str, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = conn.write_all(head.as_bytes()).and_then(|()| conn.write_all(body));
    let _ = conn.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_parse_and_reject_unknown_keys() {
        let p = parse_query("kind=exact&all=1&state=1&threshold=2.5").expect("parses");
        assert_eq!(p.get("kind").map(String::as_str), Some("exact"));
        assert_eq!(p.get("all").map(String::as_str), Some("1"));
        assert_eq!(p.get("threshold").map(String::as_str), Some("2.5"));
        assert!(parse_query("").expect("empty ok").is_empty());
        // Bare keys default to "1" (curl's ?all shorthand).
        assert_eq!(parse_query("all").expect("parses").get("all").map(String::as_str), Some("1"));
        assert!(parse_query("nope=1").is_err());
    }
}
