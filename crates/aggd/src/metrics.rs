//! Prometheus-style text metrics for the daemon: counters kept by the
//! fold loop, a sliding frames/s window, and a fold-latency reservoir
//! rendered as p50/p99 quantiles. Everything is hand-rolled on
//! `std::sync` — the exposition format is plain text, no client
//! library needed.

use crate::registry::StreamInfo;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Trailing window (whole seconds) the frames/s gauge averages over.
const RATE_WINDOW_SECS: u64 = 10;

/// Per-second buckets kept (must exceed [`RATE_WINDOW_SECS`] so the
/// current partial second never aliases a bucket still being summed).
const RATE_SLOTS: usize = 16;

/// Fold-latency samples retained for the quantile reservoir.
const LATENCY_SAMPLES: usize = 512;

/// A ring of per-second frame counts: O(1) ticks, rate = the mean over
/// the last [`RATE_WINDOW_SECS`] *complete* seconds (the current
/// partial second is excluded so the gauge doesn't sag at the start of
/// every second).
struct RateWindow {
    counts: [u64; RATE_SLOTS],
    stamps: [u64; RATE_SLOTS],
}

impl RateWindow {
    fn new() -> Self {
        RateWindow { counts: [0; RATE_SLOTS], stamps: [u64::MAX; RATE_SLOTS] }
    }

    fn tick(&mut self, sec: u64) {
        let i = (sec % RATE_SLOTS as u64) as usize;
        if self.stamps[i] != sec {
            self.stamps[i] = sec;
            self.counts[i] = 0;
        }
        self.counts[i] += 1;
    }

    fn rate(&self, now_sec: u64) -> f64 {
        let lo = now_sec.saturating_sub(RATE_WINDOW_SECS);
        let frames: u64 = (0..RATE_SLOTS)
            .filter(|&i| self.stamps[i] >= lo && self.stamps[i] < now_sec)
            .map(|i| self.counts[i])
            .sum();
        // Early in the daemon's life fewer than RATE_WINDOW_SECS whole
        // seconds exist; average over the ones that do.
        let span = (now_sec - lo).max(1);
        frames as f64 / span as f64
    }
}

/// Bounded reservoir of recent fold durations; quantiles come from a
/// sorted copy at render time (renders are rare, folds are not).
struct LatencyRing {
    samples: Vec<f64>,
    next: usize,
    count: u64,
    sum: f64,
}

impl LatencyRing {
    fn new() -> Self {
        LatencyRing { samples: Vec::with_capacity(LATENCY_SAMPLES), next: 0, count: 0, sum: 0.0 }
    }

    fn push(&mut self, seconds: f64) {
        if self.samples.len() < LATENCY_SAMPLES {
            self.samples.push(seconds);
        } else {
            self.samples[self.next] = seconds;
            self.next = (self.next + 1) % LATENCY_SAMPLES;
        }
        self.count += 1;
        self.sum += seconds;
    }

    fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        if self.samples.is_empty() {
            return qs.iter().map(|_| 0.0).collect();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        qs.iter()
            .map(|q| {
                let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                sorted[idx]
            })
            .collect()
    }
}

/// The daemon's metric set. Counter increments come from the fold
/// loop; `render` is called by `/metrics` handlers.
pub struct Metrics {
    started: Instant,
    frames: AtomicU64,
    folds: AtomicU64,
    refolded_points: AtomicU64,
    joins: AtomicU64,
    gaps: AtomicU64,
    fold_errors: AtomicU64,
    http_requests: AtomicU64,
    http_accept_errors: AtomicU64,
    http_busy: AtomicU64,
    rate: Mutex<RateWindow>,
    latency: Mutex<LatencyRing>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A zeroed metric set; uptime counts from now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            frames: AtomicU64::new(0),
            folds: AtomicU64::new(0),
            refolded_points: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            gaps: AtomicU64::new(0),
            fold_errors: AtomicU64::new(0),
            http_requests: AtomicU64::new(0),
            http_accept_errors: AtomicU64::new(0),
            http_busy: AtomicU64::new(0),
            rate: Mutex::new(RateWindow::new()),
            latency: Mutex::new(LatencyRing::new()),
        }
    }

    /// Seconds since the daemon started.
    pub fn uptime(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// One frame was delivered to the fold loop.
    pub fn frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.rate.lock().expect("rate lock").tick(self.started.elapsed().as_secs());
    }

    /// One refold pass completed, touching `points` report points.
    pub fn fold(&self, seconds: f64, points: u64) {
        self.folds.fetch_add(1, Ordering::Relaxed);
        self.refolded_points.fetch_add(points, Ordering::Relaxed);
        self.latency.lock().expect("latency lock").push(seconds);
    }

    /// A connection completed its handshake.
    pub fn join(&self) {
        self.joins.fetch_add(1, Ordering::Relaxed);
    }

    /// A resume claim was refused.
    pub fn gap(&self) {
        self.gaps.fetch_add(1, Ordering::Relaxed);
    }

    /// A refold failed (bad frame); the daemon keeps serving.
    pub fn fold_error(&self) {
        self.fold_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Total frames delivered so far.
    pub fn frames_total(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// One HTTP request was admitted to a handler.
    pub fn http_request(&self) {
        self.http_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// The HTTP accept loop hit a transient error and retried.
    pub fn http_accept_error(&self) {
        self.http_accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was refused (503 or dropped) at the in-flight
    /// handler cap.
    pub fn http_busy(&self) {
        self.http_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Total transient accept-loop failures so far.
    pub fn http_accept_errors_total(&self) -> u64 {
        self.http_accept_errors.load(Ordering::Relaxed)
    }

    /// Total connections refused at the handler cap so far.
    pub fn http_busy_total(&self) -> u64 {
        self.http_busy.load(Ordering::Relaxed)
    }

    /// Render the Prometheus text exposition. `streams` is the
    /// membership table snapshot; `points_held`/`dirty` describe the
    /// fold (merged report points retained, points awaiting a refold);
    /// `http_inflight` is the number of handler threads currently
    /// running (the scraping handler counts itself).
    pub fn render(
        &self,
        streams: &BTreeMap<u64, StreamInfo>,
        points_held: usize,
        dirty: usize,
        http_inflight: usize,
    ) -> String {
        let mut out = String::with_capacity(2048);
        let now = Instant::now();
        let connected = streams.values().filter(|s| s.connected).count();
        let rate = self.rate.lock().expect("rate lock").rate(self.started.elapsed().as_secs());
        let (p50, p99, lat_count, lat_sum) = {
            let lat = self.latency.lock().expect("latency lock");
            let q = lat.quantiles(&[0.5, 0.99]);
            (q[0], q[1], lat.count, lat.sum)
        };

        let mut gauge = |name: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge("aggd_uptime_seconds", "Seconds since the daemon started.", fmt_f(self.uptime()));
        gauge("aggd_connected_shards", "Streams with a live connection.", connected.to_string());
        gauge("aggd_streams_total", "Logical streams ever admitted.", streams.len().to_string());
        gauge("aggd_frames_per_second", "Frames/s over the trailing 10 s window.", fmt_f(rate));
        gauge("aggd_points_held", "Merged report points retained.", points_held.to_string());
        gauge("aggd_points_dirty", "Report points awaiting a refold.", dirty.to_string());
        gauge(
            "aggd_http_inflight",
            "HTTP handler threads currently running.",
            http_inflight.to_string(),
        );

        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter("aggd_frames_total", "Frames delivered to the fold.", self.frames_total());
        counter("aggd_folds_total", "Refold passes completed.", self.folds.load(Ordering::Relaxed));
        counter(
            "aggd_refolded_points_total",
            "Report points recomputed across all refolds.",
            self.refolded_points.load(Ordering::Relaxed),
        );
        counter("aggd_joins_total", "Connections admitted.", self.joins.load(Ordering::Relaxed));
        counter("aggd_gaps_total", "Resume claims refused.", self.gaps.load(Ordering::Relaxed));
        counter(
            "aggd_fold_errors_total",
            "Refolds that failed on a bad frame.",
            self.fold_errors.load(Ordering::Relaxed),
        );
        counter(
            "aggd_http_requests_total",
            "HTTP requests admitted to a handler.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "aggd_http_accept_errors_total",
            "Transient HTTP accept failures retried with backoff.",
            self.http_accept_errors_total(),
        );
        counter(
            "aggd_http_busy_total",
            "HTTP connections refused at the in-flight handler cap.",
            self.http_busy_total(),
        );

        let _ = writeln!(out, "# HELP aggd_fold_duration_seconds Refold wall-clock latency.");
        let _ = writeln!(out, "# TYPE aggd_fold_duration_seconds summary");
        let _ = writeln!(out, "aggd_fold_duration_seconds{{quantile=\"0.5\"}} {}", fmt_f(p50));
        let _ = writeln!(out, "aggd_fold_duration_seconds{{quantile=\"0.99\"}} {}", fmt_f(p99));
        let _ = writeln!(out, "aggd_fold_duration_seconds_sum {}", fmt_f(lat_sum));
        let _ = writeln!(out, "aggd_fold_duration_seconds_count {lat_count}");

        let per_stream = [
            ("aggd_stream_delivered", "Frames delivered per stream.", "counter"),
            ("aggd_stream_connected", "1 if the stream has a live connection.", "gauge"),
            ("aggd_stream_connects_total", "Connections admitted per stream.", "counter"),
            ("aggd_stream_gaps_total", "Resume refusals per stream.", "counter"),
            ("aggd_stream_lag_seconds", "Seconds since the stream's last frame.", "gauge"),
        ];
        for (name, help, kind) in per_stream {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (id, s) in streams {
                let value = match name {
                    "aggd_stream_delivered" => s.delivered.to_string(),
                    "aggd_stream_connected" => u64::from(s.connected).to_string(),
                    "aggd_stream_connects_total" => s.connects.to_string(),
                    "aggd_stream_gaps_total" => s.gaps.to_string(),
                    _ => {
                        // Lag: since the last frame, or since startup if
                        // the stream never delivered one.
                        let since = match s.last_frame {
                            Some(t) => now.duration_since(t).as_secs_f64(),
                            None => self.uptime(),
                        };
                        fmt_f(since)
                    }
                };
                let _ = writeln!(
                    out,
                    "{name}{{stream=\"{id}\",label=\"{}\"}} {value}",
                    s.label.replace('"', "'")
                );
            }
        }
        out
    }
}

/// Fixed-point float rendering — Prometheus text wants plain decimals,
/// never scientific notation.
fn fmt_f(v: f64) -> String {
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_window_averages_complete_seconds_only() {
        let mut w = RateWindow::new();
        for sec in 0..5 {
            for _ in 0..10 {
                w.tick(sec);
            }
        }
        // At now=5, seconds 0..=4 are complete: 50 frames / 5 s.
        assert!((w.rate(5) - 10.0).abs() < 1e-9);
        // The current partial second is excluded.
        w.tick(5);
        assert!((w.rate(5) - 10.0).abs() < 1e-9);
        // Far in the future, the window is empty.
        assert_eq!(w.rate(1000), 0.0);
    }

    #[test]
    fn latency_ring_reports_quantiles_and_totals() {
        let mut r = LatencyRing::new();
        for i in 1..=100 {
            r.push(i as f64 / 1000.0);
        }
        let q = r.quantiles(&[0.5, 0.99]);
        assert!((q[0] - 0.050).abs() < 0.002, "p50 was {}", q[0]);
        assert!((q[1] - 0.099).abs() < 0.002, "p99 was {}", q[1]);
        assert_eq!(r.count, 100);
        assert!((r.sum - 5.050).abs() < 1e-9);
    }

    #[test]
    fn render_is_valid_prometheus_text_with_per_stream_lag() {
        let m = Metrics::new();
        m.frame();
        m.fold(0.001, 2);
        let mut streams = BTreeMap::new();
        streams.insert(
            3,
            StreamInfo {
                label: "exact/0of3".into(),
                connected: true,
                delivered: 7,
                connects: 2,
                gaps: 1,
                last_frame: Some(Instant::now()),
            },
        );
        m.http_request();
        m.http_accept_error();
        m.http_busy();
        let text = m.render(&streams, 4, 1, 2);
        for needle in [
            "aggd_frames_per_second ",
            "aggd_http_requests_total 1",
            "aggd_http_accept_errors_total 1",
            "aggd_http_busy_total 1",
            "aggd_http_inflight 2",
            "aggd_fold_duration_seconds{quantile=\"0.5\"}",
            "aggd_fold_duration_seconds{quantile=\"0.99\"}",
            "aggd_stream_lag_seconds{stream=\"3\",label=\"exact/0of3\"}",
            "aggd_stream_delivered{stream=\"3\",label=\"exact/0of3\"} 7",
            "aggd_connected_shards 1",
            "aggd_frames_total 1",
            "aggd_points_held 4",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every non-comment line is `name{labels} value` with a finite
        // plain-decimal value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            let v: f64 = value.parse().expect("plain decimal value");
            assert!(v.is_finite());
        }
    }
}
