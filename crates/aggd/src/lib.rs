//! # hhh-aggd
//!
//! The **long-running aggregation daemon** — the serving side of the
//! cross-process fold. Where `hhh-agg --listen` is a one-shot barrier
//! (wait for exactly K streams, fold, exit), `hhh-aggd` stays up
//! indefinitely:
//!
//! * shards join and leave at runtime over the [`hhh_window::FrameHub`]
//!   hello/ack protocol — no fixed `--expect K`;
//! * a killed shard **resumes exactly**: a spooled transport
//!   ([`hhh_window::TcpTransport::with_spool`]) replays from the hub's
//!   ack, a plain deterministic shard replays from zero and the hub's
//!   position dedupe drops the prefix — either way the fold is
//!   byte-identical to an uninterrupted run;
//! * the merged HHH sets are served live over hand-rolled HTTP/1.1
//!   (`GET /hhh`, `GET /healthz`) next to Prometheus-style text
//!   metrics (`GET /metrics`: frames/s, fold latency quantiles,
//!   per-stream lag/delivered, connected shards).
//!
//! The fold itself is [`hhh_agg::FoldState`] — the incremental face of
//! `fold_streams`, refolding dirty report points in canonical stream
//! order so the daemon's answers stay byte-identical to the batch
//! fold no matter the interleaving, restarts included.
//!
//! Two binaries ship with the crate: `hhh-aggd` (the daemon) and
//! `aggd-shard` (a deterministic scenario shard driver with `--spool`
//! and `--die-after`, used by the restart-resume integration test, the
//! CI smoke topology, and `docker-compose.yml`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod http;
pub mod metrics;
pub mod registry;
pub mod scenario;

pub use daemon::{spawn_daemon, DaemonConfig, DaemonHandle, MitigateConfig};
pub use metrics::Metrics;
pub use registry::{Registry, StreamInfo};
