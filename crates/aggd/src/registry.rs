//! The daemon's shared state: the incremental fold and the per-stream
//! membership table, both behind locks so the fold loop writes while
//! HTTP handlers read.

use hhh_agg::FoldState;
use hhh_hierarchy::Ipv4Hierarchy;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// What the daemon knows about one logical stream (identified by its
/// hello id for its whole lifetime, across any number of connections).
#[derive(Clone, Debug)]
pub struct StreamInfo {
    /// The writer's label from its hello (`exact/0of3` style).
    pub label: String,
    /// Is a connection for this stream currently admitted?
    pub connected: bool,
    /// Frames delivered to the fold so far (dedup survivors).
    pub delivered: u64,
    /// Connections admitted for the stream (1 = never restarted).
    pub connects: u64,
    /// Resume-claim refusals (writer claimed frames the hub never got).
    pub gaps: u64,
    /// When the stream's last frame arrived.
    pub last_frame: Option<Instant>,
}

/// The fold + membership registry one daemon owns.
pub struct Registry {
    /// The incremental fold the HTTP query endpoints render from.
    /// Lock order: never take [`Registry::streams`]'s lock while
    /// holding this one.
    pub fold: Mutex<FoldState<Ipv4Hierarchy>>,
    streams: Mutex<BTreeMap<u64, StreamInfo>>,
}

impl Registry {
    /// An empty registry; `retain` bounds the fold's per-kind report
    /// points (`None` = unbounded).
    pub fn new(retain: Option<usize>) -> Self {
        let fold = match retain {
            Some(points) => FoldState::new().with_retention(points),
            None => FoldState::new(),
        };
        Registry { fold: Mutex::new(fold), streams: Mutex::new(BTreeMap::new()) }
    }

    /// A connection for `id` completed its handshake.
    pub fn joined(&self, id: u64, label: &str, delivered: u64) {
        let mut streams = self.streams.lock().expect("streams lock");
        let info = streams.entry(id).or_insert_with(|| StreamInfo {
            label: label.to_string(),
            connected: false,
            delivered,
            connects: 0,
            gaps: 0,
            last_frame: None,
        });
        info.label = label.to_string();
        info.connected = true;
        info.connects += 1;
    }

    /// Frame at `pos` was delivered for stream `id`.
    pub fn note_frame(&self, id: u64, pos: u64) {
        let mut streams = self.streams.lock().expect("streams lock");
        if let Some(info) = streams.get_mut(&id) {
            info.delivered = info.delivered.max(pos + 1);
            info.last_frame = Some(Instant::now());
        }
    }

    /// The stream's connection ended (the stream itself stays open —
    /// a reconnect resumes it).
    pub fn left(&self, id: u64) {
        let mut streams = self.streams.lock().expect("streams lock");
        if let Some(info) = streams.get_mut(&id) {
            info.connected = false;
        }
    }

    /// A connection for `id` was refused for claiming a resume
    /// position ahead of what the hub holds.
    pub fn gap(&self, id: u64, claimed: u64, received: u64) {
        let mut streams = self.streams.lock().expect("streams lock");
        let info = streams.entry(id).or_insert_with(|| StreamInfo {
            label: String::new(),
            connected: false,
            delivered: received,
            connects: 0,
            gaps: 0,
            last_frame: None,
        });
        info.gaps += 1;
        let _ = claimed;
    }

    /// A point-in-time copy of the membership table.
    pub fn streams(&self) -> BTreeMap<u64, StreamInfo> {
        self.streams.lock().expect("streams lock").clone()
    }

    /// Streams with a live connection right now.
    pub fn connected(&self) -> usize {
        self.streams.lock().expect("streams lock").values().filter(|s| s.connected).count()
    }
}
