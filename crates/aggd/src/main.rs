//! `hhh-aggd` — the long-running aggregation daemon.
//!
//! ```text
//! hhh-aggd [--listen ADDR] [--http ADDR] [--hierarchy ipv4-bytes|ipv4-bits]
//!          [--threshold PCT]... [--retain POINTS|none] [--http-inflight N] [--quiet]
//! ```
//!
//! Shard pipelines connect their `TcpTransport`s to `--listen` and
//! stream v2 snapshot frames; queries and scrapes go to `--http`
//! (`GET /hhh`, `/healthz`, `/metrics`). The daemon runs until killed;
//! on startup it prints one parseable line to stdout:
//!
//! ```text
//! listening frames=127.0.0.1:4710 http=127.0.0.1:4711
//! ```
//!
//! so scripts (and the integration tests) can bind port 0 and discover
//! the real addresses.

use hhh_aggd::{spawn_daemon, DaemonConfig, MitigateConfig};
use hhh_core::Threshold;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_mitigate::PolicyConfig;
use hhh_nettypes::TimeSpan;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: hhh-aggd [--listen ADDR] [--http ADDR] \
                     [--hierarchy ipv4-bytes|ipv4-bits]\n\
                     \x20               [--threshold PCT]... [--retain POINTS|none]\n\
                     \x20               [--http-inflight N] [--quiet]\n\
                     \x20               [--mitigate KIND] [--mitigate-hysteresis M]\n\
                     \x20               [--mitigate-ttl SECONDS] [--mitigate-max-rules N]\n\
                     \x20               [--mitigate-truth PREFIX]...\n\
                     \n\
                     Long-running aggregation daemon: accepts shard snapshot streams (v2\n\
                     frames with hello/ack resume) on --listen, serves merged HHH queries\n\
                     (GET /hhh), health (GET /healthz) and Prometheus text metrics\n\
                     (GET /metrics) on --http. Shards may join, leave, crash, and resume\n\
                     at any time; restarted shards replay from their last acked frame.\n\
                     --mitigate KIND runs the hhh-mitigate policy engine over KIND's\n\
                     merged reports (a shard label like exact/0of2) and serves the rule\n\
                     table on GET /rules; --mitigate-truth attaches planted attack\n\
                     prefixes so /metrics classes matched bytes attack vs legit.\n\
                     Defaults: --listen 127.0.0.1:4710, --http 127.0.0.1:4711,\n\
                     --hierarchy ipv4-bytes, --threshold 1, --retain 720,\n\
                     --http-inflight 128.";

fn parse_args() -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig {
        frame_addr: "127.0.0.1:4710".into(),
        http_addr: "127.0.0.1:4711".into(),
        thresholds: Vec::new(),
        log: true,
        ..DaemonConfig::default()
    };
    let mut mitigate_kind: Option<String> = None;
    let mut policy = PolicyConfig::default();
    let mut truth: Vec<hhh_nettypes::Ipv4Prefix> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--listen" => config.frame_addr = argv.next().ok_or("--listen needs an address")?,
            "--http" => config.http_addr = argv.next().ok_or("--http needs an address")?,
            "--hierarchy" => {
                let v = argv.next().ok_or("--hierarchy needs a value")?;
                config.hierarchy = match v.as_str() {
                    "ipv4-bytes" => Ipv4Hierarchy::bytes(),
                    "ipv4-bits" => Ipv4Hierarchy::bits(),
                    other => return Err(format!("unknown hierarchy `{other}`")),
                };
            }
            "--threshold" => {
                let v = argv.next().ok_or("--threshold needs a value")?;
                let pct: f64 =
                    v.parse().map_err(|_| format!("--threshold `{v}` is not a number"))?;
                if !(pct > 0.0 && pct <= 100.0) {
                    return Err(format!("--threshold {pct} out of (0, 100]"));
                }
                config.thresholds.push(Threshold::percent(pct));
            }
            "--retain" => {
                let v = argv.next().ok_or("--retain needs a point count or `none`")?;
                config.retain = if v == "none" {
                    None
                } else {
                    let n: usize =
                        v.parse().map_err(|_| format!("--retain `{v}` is not a count"))?;
                    if n == 0 {
                        return Err("--retain must keep at least one point (or `none`)".into());
                    }
                    Some(n)
                };
            }
            "--http-inflight" => {
                let v = argv.next().ok_or("--http-inflight needs a thread count")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--http-inflight `{v}` is not a count"))?;
                if n == 0 {
                    return Err("--http-inflight must allow at least one handler".into());
                }
                config.http_max_inflight = n;
            }
            "--quiet" => config.log = false,
            "--mitigate" => {
                let kind = argv.next().ok_or("--mitigate needs a kind label")?;
                mitigate_kind = Some(kind);
            }
            "--mitigate-hysteresis" => {
                let v = argv.next().ok_or("--mitigate-hysteresis needs a window count")?;
                let m: u32 =
                    v.parse().map_err(|_| format!("--mitigate-hysteresis `{v}` is not a count"))?;
                if m == 0 {
                    return Err("--mitigate-hysteresis must be at least 1".into());
                }
                policy.hysteresis = m;
            }
            "--mitigate-ttl" => {
                let v = argv.next().ok_or("--mitigate-ttl needs whole seconds")?;
                let s: u64 =
                    v.parse().map_err(|_| format!("--mitigate-ttl `{v}` is not a number"))?;
                if s == 0 {
                    return Err("--mitigate-ttl must be at least 1 second".into());
                }
                policy.ttl = TimeSpan::from_secs(s);
            }
            "--mitigate-max-rules" => {
                let v = argv.next().ok_or("--mitigate-max-rules needs a rule count")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--mitigate-max-rules `{v}` is not a count"))?;
                if n == 0 {
                    return Err("--mitigate-max-rules must keep at least one rule".into());
                }
                policy.max_rules = n;
            }
            "--mitigate-truth" => {
                let v = argv.next().ok_or("--mitigate-truth needs an IPv4 prefix")?;
                let prefix =
                    v.parse().map_err(|e| format!("--mitigate-truth `{v}`: bad prefix: {e}"))?;
                truth.push(prefix);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.thresholds.is_empty() {
        config.thresholds.push(Threshold::percent(1.0));
    }
    match mitigate_kind {
        Some(kind) => config.mitigate = Some(MitigateConfig { kind, policy, truth }),
        None if !truth.is_empty() => {
            return Err("--mitigate-truth needs --mitigate KIND".into());
        }
        None => {}
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("hhh-aggd: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let handle = match spawn_daemon(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("hhh-aggd: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening frames={} http={}", handle.frame_addr, handle.http_addr);
    let _ = std::io::stdout().flush();
    // Serve until killed; all work happens on the daemon's threads.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
