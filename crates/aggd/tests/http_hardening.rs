//! Regression tests for the daemon's HTTP front door under hostile
//! load: a slow-loris swarm (half-open connections pinning the 5 s
//! read timeout) must not starve `/metrics` scrapes, the in-flight
//! handler cap must answer 503 instead of spawning past its bound, an
//! accept-churn storm must leave the server alive (the old accept loop
//! died on the first transient error), and query percent-escapes must
//! decode end-to-end.

use hhh_aggd::{spawn_daemon, DaemonConfig, DaemonHandle};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn daemon(http_max_inflight: usize) -> DaemonHandle {
    spawn_daemon(DaemonConfig { http_max_inflight, retain: None, ..DaemonConfig::default() })
        .expect("daemon spawns")
}

/// One full GET: returns `(status, body)`. Panics on transport errors
/// — in these tests a refused or torn connection *is* the regression.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").expect("request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Open `n` connections that never send a byte — each pins one handler
/// slot until the 5 s read timeout (or until dropped).
fn slow_loris(addr: &str, n: usize) -> Vec<TcpStream> {
    (0..n).map(|_| TcpStream::connect(addr).expect("loris connect")).collect()
}

#[test]
fn slow_loris_swarm_does_not_drop_metrics_scrapes() {
    let handle = daemon(128);
    let addr = handle.http_addr.to_string();
    let swarm = slow_loris(&addr, 100);
    // With 100 slots pinned (cap 128), every scrape must still land —
    // zero dropped scrapes is the acceptance bar.
    for i in 0..20 {
        let (status, body) = http_get(&addr, "/metrics");
        assert_eq!(status, 200, "scrape {i} dropped under slow-loris load");
        assert!(
            body.contains("aggd_http_accept_errors_total"),
            "accept-error counter missing from exposition"
        );
        assert!(body.contains("aggd_http_inflight"), "inflight gauge missing from exposition");
    }
    drop(swarm);
    handle.shutdown();
}

#[test]
fn handler_cap_answers_503_and_counts_busy() {
    let handle = daemon(2);
    let addr = handle.http_addr.to_string();
    let swarm = slow_loris(&addr, 2);
    // Both loris connections were accepted (and admitted) before any
    // later one, so a real request now meets a saturated cap. Allow a
    // few tries in case admission is still in flight.
    let deadline = Instant::now() + Duration::from_secs(4);
    let mut saw_503 = false;
    while Instant::now() < deadline {
        let (status, _) = http_get(&addr, "/healthz");
        if status == 503 {
            saw_503 = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(saw_503, "saturated cap must answer 503");
    assert!(handle.metrics.http_busy_total() >= 1, "busy counter must count the refusal");
    drop(swarm);
    // Slots free as the loris handlers notice the hang-up; the server
    // then serves normally again.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = http_get(&addr, "/healthz");
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered after the swarm left");
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}

#[test]
fn accept_churn_storm_leaves_the_server_alive() {
    // EMFILE-adjacent churn: open-and-abandon connections as fast as
    // the OS allows. Some accepts see already-reset peers; whatever
    // the accept loop hits, it must keep serving (the old loop broke
    // out of `serve` on the first non-WouldBlock error, permanently).
    let handle = daemon(8);
    let addr = handle.http_addr.to_string();
    for _ in 0..300 {
        let conn = TcpStream::connect(&addr).expect("churn connect");
        drop(conn);
    }
    // Right after the storm the backlog may still hold churn
    // connections (a 503 is a *live* server answering); the bar is
    // that scrapes come back, not that the storm was free.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http_get(&addr, "/metrics");
        if status == 200 {
            assert!(body.contains("aggd_http_accept_errors_total"));
            break;
        }
        assert_eq!(status, 503, "server died during churn");
        assert!(Instant::now() < deadline, "server never drained the churn backlog");
        std::thread::sleep(Duration::from_millis(50));
    }
    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    handle.shutdown();
}

#[test]
fn query_edge_cases_are_400_not_silently_ignored() {
    let handle = daemon(16);
    let addr = handle.http_addr.to_string();
    // `threshold=` with an empty value: not a number, must be refused.
    let (status, body) = http_get(&addr, "/hhh?threshold=");
    assert_eq!(status, 400, "empty threshold value must be a 400, got {body:?}");
    // Duplicate keys are ambiguous — last-wins would silently change
    // the answer, so the daemon refuses instead.
    let (status, body) = http_get(&addr, "/hhh?kind=exact&kind=rhhh");
    assert_eq!(status, 400, "duplicate keys must be a 400");
    assert!(body.contains("duplicate"), "error should name the problem, got {body:?}");
    let (status, _) = http_get(&addr, "/hhh?threshold=1&threshold=2");
    assert_eq!(status, 400, "duplicate thresholds must be a 400");
    // An over-long query string is a probe, not a query.
    let long = format!("/hhh?kind={}", "x".repeat(4096));
    let (status, body) = http_get(&addr, &long);
    assert_eq!(status, 400, "overlong query must be a 400");
    assert!(body.contains("longer than"), "error should say why, got {body:?}");
    // The legitimate forms still work.
    let (status, _) = http_get(&addr, "/hhh?kind=exact&all=1&threshold=2.5");
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn rules_endpoint_is_404_without_mitigation() {
    let handle = daemon(16);
    let addr = handle.http_addr.to_string();
    let (status, body) = http_get(&addr, "/rules");
    assert_eq!(status, 404, "no policy engine -> /rules must 404");
    assert!(body.contains("mitigation"), "the 404 should say why, got {body:?}");
    handle.shutdown();
}

#[test]
fn rules_endpoint_serves_json_and_text_when_enabled() {
    use hhh_aggd::MitigateConfig;
    let handle = spawn_daemon(DaemonConfig {
        retain: None,
        mitigate: Some(MitigateConfig {
            kind: "exact/0of1".into(),
            policy: hhh_mitigate::PolicyConfig::default(),
            truth: vec!["38.2.0.0/16".parse().expect("prefix")],
        }),
        ..DaemonConfig::default()
    })
    .expect("daemon spawns");
    let addr = handle.http_addr.to_string();
    // Empty table, but the document must be well-formed either way.
    let (status, body) = http_get(&addr, "/rules");
    assert_eq!(status, 200);
    assert!(body.contains("\"rules\":[]"), "empty table renders an empty list, got {body:?}");
    assert!(body.contains("\"cap\":"), "document carries the cap");
    let (status, body) = http_get(&addr, "/rules?text=1");
    assert_eq!(status, 200);
    assert!(body.contains("0 rule(s)"), "text render, got {body:?}");
    // /rules has its own allow-list: /hhh keys are foreign here.
    let (status, _) = http_get(&addr, "/rules?kind=exact");
    assert_eq!(status, 400);
    // Mitigation metrics appear in /metrics, classed because truth is
    // attached.
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("mitigate_rules_active 0"));
    assert!(body.contains("mitigate_rule_churn_total 0"));
    assert!(body.contains("mitigate_dropped_bytes_total{class=\"attack\"}"));
    assert!(body.contains("mitigate_dropped_bytes_total{class=\"legit\"}"));
    handle.shutdown();
}

#[test]
fn query_percent_escapes_decode_end_to_end() {
    let handle = daemon(16);
    let addr = handle.http_addr.to_string();
    // `threshold=2%2E5` is `threshold=2.5` — the doc contract's own
    // example. An empty fold still renders (zero report lines).
    let (status, _) = http_get(&addr, "/hhh?threshold=2%2E5");
    assert_eq!(status, 200, "escaped threshold must decode, not 400");
    let (status, _) = http_get(&addr, "/hhh?%6bind=exact");
    assert_eq!(status, 200, "escaped key must decode before key matching");
    // Malformed escapes are a 400, not a silent mismatch.
    for bad in ["/hhh?threshold=2%", "/hhh?threshold=2%zz", "/hhh?kind=%ff%fe"] {
        let (status, _) = http_get(&addr, bad);
        assert_eq!(status, 400, "{bad} must be rejected");
    }
    handle.shutdown();
}
